//! Tick-level trace of the protocol on a tiny network — watch the snakes.
//!
//! ```text
//! cargo run --release -p gtd --example trace_tiny
//! ```
//!
//! Runs GTD on a 3-ring and prints every transcript event with its tick,
//! plus a per-tick census of characters dwelling in each processor, so the
//! IG flood → OG conversion → ID/OD marking → KILL → loop token → UNMARK
//! choreography of §4.2.1 is visible with the naked eye.
//!
//! The engine is driven manually (rather than through `GtdSession`)
//! because the census inspects every processor's in-flight characters
//! between ticks — state the transcript alone does not carry.

use gtd::protocol::build_gtd_engine;
use gtd::{EngineMode, TranscriptEvent};

fn main() {
    let topo = gtd::generators::ring(3);
    println!("network: directed 3-ring n0 -> n1 -> n2 -> n0 (n0 is the root)\n");
    let mut engine = build_gtd_engine(&topo, EngineMode::Dense);
    let mut events = Vec::new();
    let mut last_census = String::new();
    for _ in 0..10_000 {
        events.clear();
        engine.tick(&mut events);
        let t = engine.tick_count();
        // census: characters dwelling per node (the "snake body" picture)
        let census: String = engine
            .nodes()
            .iter()
            .map(|n| {
                let c = n.chars_in_flight();
                if c == 0 {
                    '.'
                } else {
                    char::from_digit(c as u32 % 10, 10).unwrap()
                }
            })
            .collect();
        if census != last_census && census.chars().any(|c| c != '.') {
            println!("t={t:>4}  chars per node [{census}]");
            last_census = census;
        }
        for &(nid, ev) in &events {
            match ev {
                TranscriptEvent::Start => println!("t={t:>4}  ROOT: protocol initiated"),
                TranscriptEvent::IgHop(h) => {
                    println!(
                        "t={t:>4}  ROOT reads IG hop (out p{}, in p{:?}) — path A->root",
                        h.out_port.0,
                        h.in_port.map(|p| p.0)
                    )
                }
                TranscriptEvent::IgTail => {
                    println!("t={t:>4}  ROOT: IG tail — A->root path complete")
                }
                TranscriptEvent::IdHop(h) => {
                    println!(
                        "t={t:>4}  ROOT reads ID hop (out p{}, in p{:?}) — path root->A",
                        h.out_port.0,
                        h.in_port.map(|p| p.0)
                    )
                }
                TranscriptEvent::IdTail => {
                    println!("t={t:>4}  ROOT: ID tail — root->A path complete")
                }
                TranscriptEvent::LoopForward { out_port, in_port } => {
                    println!(
                        "t={t:>4}  ROOT sees FORWARD({},{}) loop token",
                        out_port.0, in_port.0
                    )
                }
                TranscriptEvent::LoopBack => println!("t={t:>4}  ROOT sees BACK loop token"),
                TranscriptEvent::LocalForward { out_port, in_port } => {
                    println!(
                        "t={t:>4}  ROOT: DFS token re-entered locally ({},{})",
                        out_port.0, in_port.0
                    )
                }
                TranscriptEvent::LocalBack => {
                    println!("t={t:>4}  ROOT: DFS token returned via BCA")
                }
                TranscriptEvent::Terminated => {
                    println!("t={t:>4}  ROOT: terminal state — map complete");
                }
                other => println!("t={t:>4}  {nid}: {other:?}"),
            }
        }
        if events
            .iter()
            .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
        {
            break;
        }
    }
    println!(
        "\nfinal: network pristine = {}",
        engine.nodes().iter().all(|n| n.snake_state_pristine())
    );
}
