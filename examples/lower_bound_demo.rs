//! The Ω(N log N) lower bound, end to end (paper §5).
//!
//! ```text
//! cargo run --release -p gtd --example lower_bound_demo
//! ```
//!
//! Walks through the three steps of Theorem 5.1 with real numbers:
//! Lemma 5.1's family (binary tree + permuted leaf loop) is *counted* —
//! exactly for tiny heights, by formula beyond — Lemma 5.2 bounds the
//! root's transcript capacity, and the pigeonhole yields a minimum tick
//! count that any correct mapper must pay. The measured GTD run sits above
//! the bound by roughly a diameter factor, matching the paper's
//! "asymptotically time-optimal for many large networks".

use gtd::baselines::{
    count_distinct_small, family_size_log2, min_ticks_lower_bound, signal_alphabet_log2,
    tree_loop_params,
};
use gtd::{generators, GtdSession, NodeId};

fn main() {
    println!("step 1 — Lemma 5.1: how many distinct topologies does the family hold?\n");
    for h in [1u32, 2] {
        let p = tree_loop_params(h);
        let exact = count_distinct_small(h);
        println!(
            "  h={h}: N={:>2}, {} leaf orderings -> {} distinguishable topologies (exact census)",
            p.n,
            (1..=p.leaves).product::<u64>(),
            exact
        );
    }
    println!("\n  beyond tiny h, the bound log2 G(N) >= log2((L-1)!) - (L-1):");
    for h in [6u32, 10, 14] {
        let p = tree_loop_params(h);
        println!(
            "  h={h:>2}: N={:>6}, log2 G(N) >= {:>9.0} bits",
            p.n,
            family_size_log2(h)
        );
    }

    println!("\nstep 2 — Lemma 5.2: the root reads at most δ characters per tick,");
    println!(
        "  log2|I| = {:.1} bits per character on our concrete wire alphabet (δ=3)",
        signal_alphabet_log2(3)
    );

    println!("\nstep 3 — Theorem 5.1: pigeonhole |I|^(δT) >= G(N):\n");
    println!(
        "  {:>3} {:>7} {:>12} {:>14}",
        "h", "N", "min ticks", "bits needed"
    );
    for h in [6u32, 8, 10, 12, 14] {
        let p = tree_loop_params(h);
        println!(
            "  {:>3} {:>7} {:>12.0} {:>14.0}",
            h,
            p.n,
            min_ticks_lower_bound(h),
            family_size_log2(h)
        );
    }
    println!("\n  ratio (min ticks)/(N) grows with N -> the bound is superlinear: Ω(N log N).");

    println!("\nmeasured — GTD on actual family members:\n");
    println!(
        "  {:>3} {:>6} {:>10} {:>12} {:>10}",
        "h", "N", "GTD ticks", "bound", "ratio"
    );
    for h in [2u32, 3, 4, 5] {
        let topo = generators::tree_loop_random(h, 1);
        let run = GtdSession::on(&topo).run().expect("terminates");
        run.map.verify_against(&topo, NodeId(0)).expect("exact");
        let bound = min_ticks_lower_bound(h).max(1.0);
        println!(
            "  {:>3} {:>6} {:>10} {:>12.1} {:>10.0}",
            h,
            topo.num_nodes(),
            run.ticks,
            bound,
            run.ticks as f64 / bound
        );
    }
    println!("\nthe family has D = O(log N), where GTD's O(ND) meets the Ω(N log N) bound");
    println!("up to constants — the protocol is asymptotically optimal there.");
}
