//! Campaign quickstart: declare an experiment grid and run it in
//! parallel.
//!
//! ```text
//! cargo run --release -p gtd --example campaign_grid
//! ```
//!
//! Reproduces the shape of every claim in the paper — "over family F at
//! size N, mapper M costs R rounds" — as one declared [`Campaign`]: a
//! grid of [`TopologySpec`]s × mappers × engine modes, executed across a
//! worker pool. Results are deterministic and independent of the worker
//! count, so the JSONL export is stable enough to diff across machines.

use gtd::{Campaign, EngineMode, TopologySpec};

fn main() {
    // Workloads as data: parse specs (or construct the enum directly).
    let specs: Vec<TopologySpec> = ["ring:32", "debruijn:2,5", "random-sc:n=48,delta=3,seed=7"]
        .iter()
        .map(|s| s.parse().expect("valid spec"))
        .collect();

    let report = Campaign::new()
        .specs(specs)
        .mappers(["gtd", "routed-dfs", "flood-echo"])
        .modes([EngineMode::Sparse, EngineMode::Parallel])
        .jobs(0) // one worker per CPU; results are identical for any value
        .run()
        .expect("grid is well-formed");

    println!(
        "{} cells, {} errors\n",
        report.records.len(),
        report.error_count()
    );
    println!("spec                              mapper      mode      median rounds");
    for g in report.aggregate() {
        println!(
            "{:<33} {:<11} {:<9} {}",
            g.spec,
            g.mapper,
            g.mode.name(),
            g.median_rounds.map_or("-".to_string(), |r| r.to_string())
        );
    }

    // Structured exports for downstream tooling:
    let jsonl = report.to_jsonl();
    println!(
        "\nfirst JSONL row:\n{}",
        jsonl.lines().next().expect("non-empty report")
    );
}
