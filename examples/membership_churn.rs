//! Dynamic membership: a processor joins the running network, a region
//! fault bursts another's out-wires, and a third leaves — one timeline.
//!
//! ```text
//! cargo run --release -p gtd --example membership_churn
//! ```
//!
//! The suffix grammar covers mutations that change N itself:
//! `node-join` splices a fresh processor into an existing wire mid-run,
//! `node-leave` removes one (re-stitching its wires so the network stays
//! strongly connected; the collector's host never leaves), and `burst`
//! drops a whole processor's out-wires at once — the paper's §1.2.2
//! region fault as a single scheduled event. The example also contrasts
//! the two remap policies: lazy lets a disturbed epoch run out, eager
//! power-cycles the moment monitoring sees the mutation.

use gtd::{DynamicSpec, GtdSession, RemapPolicy};

fn main() {
    let spec: DynamicSpec = "random-sc:n=24,delta=3,seed=7+node-join=2@t200+burst=5@t5000"
        .parse()
        .expect("valid dynamic spec");
    println!("scenario: {spec}\n");

    let base = spec.build();
    for policy in RemapPolicy::ALL {
        let out = GtdSession::on(&base)
            .policy(policy)
            .run_dynamic(&spec.schedule)
            .expect("timeline converges");

        println!("policy {policy}:");
        for (i, e) in out.epochs.iter().enumerate() {
            println!(
                "  epoch {i}: t{}..t{} ({} ticks, N = {}) — {:?}",
                e.start_tick,
                e.end_tick,
                e.ticks(),
                e.nodes,
                e.status,
            );
        }
        for m in &out.mutations {
            println!(
                "  {} -> applied as {} at t{}, remap latency {} ticks",
                m.scheduled,
                m.applied_as.expect("applied").name(),
                m.applied_at.expect("applied"),
                m.remap_latency.expect("remapped"),
            );
        }
        println!(
            "  final: N = {} (root {}), map verified = {}\n",
            out.final_topology.num_nodes(),
            out.final_root,
            out.final_verified(),
        );
    }

    // A leave below the collector shifts its id — the session tracks it.
    let spec: DynamicSpec = "ring:16+node-leave=3@t120".parse().expect("valid spec");
    let base = spec.build();
    let out = GtdSession::on(&base)
        .root(gtd::NodeId(9))
        .run_dynamic(&spec.schedule)
        .expect("timeline converges");
    println!(
        "{spec} with the master on n9: a lower-id processor left, the master is {} now,",
        out.final_root,
    );
    println!(
        "and the {}-node ring re-mapped in {} ticks.",
        out.final_topology.num_nodes(),
        out.mutations[0].remap_latency.expect("remapped"),
    );
}
