//! Quickstart: map an unknown directed network from a single root.
//!
//! ```text
//! cargo run --release -p gtd --example quickstart
//! ```
//!
//! Builds a random strongly-connected bounded-degree digraph, runs
//! Goldstein's Global Topology Determination protocol on a network of
//! identical finite-state automata through the [`GtdSession`] builder,
//! and verifies that the root's master computer reconstructed the
//! port-level topology exactly.

use gtd::{algo, generators, GtdSession, NodeId};

fn main() {
    // An "unknown" network: 40 processors, in/out-degree ≤ 3.
    let topo = generators::random_sc(40, 3, 2026);
    println!(
        "network: N = {}, E = {}, δ = {}, D = {}",
        topo.num_nodes(),
        topo.num_edges(),
        topo.delta(),
        algo::diameter(&topo)
    );

    // Run the protocol. Node 0 hosts the master computer; nobody else
    // knows anything. (Any root works: `.root(NodeId(k))`.)
    let run = GtdSession::on(&topo).run().expect("protocol terminates");

    println!("\nGTD finished in {} global clock ticks", run.ticks);
    println!(
        "transcript: {} FORWARD RCAs, {} BACK RCAs, {} root-local moves",
        run.stats.forwards,
        run.stats.backs,
        run.stats.local_forwards + run.stats.local_backs
    );
    println!(
        "phases: search {}t, echo {}t, mark {}t, report+cleanup {}t",
        run.phases.search, run.phases.echo, run.phases.mark, run.phases.report_cleanup
    );
    println!(
        "map: {} processors, {} wires discovered",
        run.map.num_nodes(),
        run.map.num_edges()
    );

    // The master computer names processors by their canonical shortest
    // path from the root (Definition 4.1). Print a few.
    for (name, path) in run.map.paths.iter().enumerate().take(5) {
        println!("  processor #{name} = root·{path}");
    }

    // Verify against ground truth: every name resolves, every wire matches.
    run.map
        .verify_against(&topo, NodeId(0))
        .expect("reconstructed map is exact");
    println!("\nverification: the reconstructed map matches the network EXACTLY");
    assert!(
        run.clean_at_end,
        "Lemma 4.2: the network is left undisturbed"
    );
    println!("cleanup: every processor back to factory snake-state (Lemma 4.2)");

    // The map is a real Topology a downstream user could route over.
    let rebuilt = run.map.to_topology().expect("map materializes");
    println!(
        "materialized topology: N = {}, E = {} (ready for routing)",
        rebuilt.num_nodes(),
        rebuilt.num_edges()
    );
}
