//! Dynamic topologies: the paper's §1 motivating scenario as one
//! timeline.
//!
//! ```text
//! cargo run --release -p gtd --example dynamic_remap
//! ```
//!
//! A spec string with mutation suffixes declares a network *and* how it
//! changes: `random-sc:n=32,delta=3,seed=7+drop-edge=2@t300+rewire=4@t6000`
//! drops a wire 300 ticks into the timeline (mid-run — the first mapping
//! is still in flight) and rewires another at t6000. The session runs
//! the protocol, lets the mutations hit the live engine, detects the
//! stale map, and re-maps — reporting a **remap latency** per mutation:
//! global ticks from the change to the next correct map.

use gtd::{DynamicSpec, GtdSession, NodeId};

fn main() {
    let spec: DynamicSpec = "random-sc:n=32,delta=3,seed=7+drop-edge=2@t300+rewire=4@t6000"
        .parse()
        .expect("valid dynamic spec");
    println!("scenario: {spec}\n");

    let base = spec.build();
    let out = GtdSession::on(&base)
        .run_dynamic(&spec.schedule)
        .expect("timeline converges");

    println!("mapping epochs:");
    for (i, e) in out.epochs.iter().enumerate() {
        println!(
            "  epoch {i}: t{}..t{} ({} ticks) — {:?}",
            e.start_tick,
            e.end_tick,
            e.ticks(),
            e.status,
        );
    }
    println!("\nmutations:");
    for m in &out.mutations {
        println!(
            "  {} (scheduled t{}): applied as {} at t{}, remap latency {} ticks",
            m.scheduled,
            m.scheduled.tick,
            m.applied_as.expect("applied").name(),
            m.applied_at.expect("applied"),
            m.remap_latency.expect("remapped"),
        );
    }

    // The same schedule through the idealized baselines, for comparison.
    println!("\nremap latency by mapper (same schedule):");
    for mapper in gtd::all_mappers() {
        let run = mapper
            .map_dynamic(&base, &spec.schedule, NodeId(0))
            .expect("mapper completes");
        let ls: Vec<String> = run
            .remap_latencies
            .iter()
            .map(|l| l.map_or("-".into(), |v| v.to_string()))
            .collect();
        println!(
            "  {:<11} initial {:>6} rounds, remaps [{}] {}",
            mapper.name(),
            run.initial_rounds,
            ls.join(", "),
            if run.verified {
                ""
            } else {
                "(final map WRONG)"
            },
        );
    }
    println!("\n(gtd pays the live-timeline price — wasted in-flight work plus the");
    println!("re-map — while the baselines re-run from scratch instantaneously.)");
}
