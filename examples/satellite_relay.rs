//! Mapping a one-way radio constellation (paper §1.2.2's motivation:
//! "GPS satellites, encrypted one-way radio military networks").
//!
//! ```text
//! cargo run --release -p gtd --example satellite_relay
//! ```
//!
//! The scenario: three orbital "shells" of relay satellites. Within a
//! shell, satellites form a directed ring (each transmits to the next —
//! antennas are fixed, links are strictly one-way). Between shells,
//! uplinks and downlinks exist only at a few gateway satellites, and they
//! are *not* symmetric: the uplink and downlink gateways differ. Ground
//! control is attached to one satellite (the root) and needs the full
//! connectivity picture using only the satellites' tiny, identical
//! communication processors. The cost comparison against the idealized
//! mappers runs through the common [`TopologyMapper`] interface.

use gtd::{algo, GtdSession, NodeId, TopologyBuilder};

/// Build the constellation: `shells` rings of `per_shell` satellites.
fn constellation(shells: usize, per_shell: usize) -> gtd::Topology {
    let n = shells * per_shell;
    let id = |s: usize, k: usize| NodeId((s * per_shell + k) as u32);
    let mut b = TopologyBuilder::new(n, 4);
    for s in 0..shells {
        // one-way ring within the shell
        for k in 0..per_shell {
            b.connect_auto(id(s, k), id(s, (k + 1) % per_shell))
                .expect("ring link");
        }
    }
    for s in 0..shells.saturating_sub(1) {
        // asymmetric gateways: uplink from satellite 0 of shell s to shell
        // s+1; downlink from satellite per_shell/2 of shell s+1 back to a
        // *different* satellite of shell s.
        b.connect_auto(id(s, 0), id(s + 1, 0)).expect("uplink");
        b.connect_auto(id(s + 1, per_shell / 2), id(s, per_shell / 3 + 1))
            .expect("downlink");
    }
    b.build().expect("constellation is a valid network")
}

fn main() {
    let topo = constellation(3, 8);
    assert!(
        algo::is_strongly_connected(&topo),
        "mission requires strong connectivity"
    );
    println!(
        "constellation: {} satellites, {} one-way links, D = {}",
        topo.num_nodes(),
        topo.num_edges(),
        algo::diameter(&topo)
    );

    let run = GtdSession::on(&topo).run().expect("protocol terminates");
    run.map.verify_against(&topo, NodeId(0)).expect("exact map");
    println!(
        "ground control mapped all {} links in {} ticks ({} RCAs, {} BCAs)",
        run.map.num_edges(),
        run.ticks,
        run.stats.rcas(),
        run.stats.bcas()
    );

    // Contrast with what the same constellation costs on the idealized
    // baselines (unbounded processor memory / message size), all driven
    // through the one mapper interface:
    println!("\nevery mapper through TopologyMapper::map_network:");
    for mapper in gtd::all_mappers() {
        let out = mapper
            .map_network(&topo, NodeId(0))
            .expect("mapper succeeds");
        assert!(out.verify_against(&topo));
        match out.messages {
            Some(msgs) => println!(
                "  {:<12}: {:>6} rounds, {:>8} messages",
                mapper.name(),
                out.rounds,
                msgs
            ),
            None => println!(
                "  {:<12}: {:>6} rounds (one constant-size char per wire per tick)",
                mapper.name(),
                out.rounds
            ),
        }
    }
}
