//! Mapping a bidirectional network with directional link failures
//! (paper §1.2.2: "bidirectional networks with in-port or out-port
//! shutdown failures at individual processors").
//!
//! ```text
//! cargo run --release -p gtd --example faulty_bidirectional
//! ```
//!
//! A healthy data-centre-style grid is fully bidirectional; after
//! failures, individual *directions* die independently, leaving a
//! genuinely directed network that ordinary bidirectional discovery cannot
//! map. GTD maps it anyway — and this example shows the failure sweep:
//! the same grid at increasing fault rates, with the surviving edge count
//! and mapping cost.

use gtd::{algo, generators, GtdSession, NodeId};

fn main() {
    let (w, h) = (5usize, 4usize);
    println!("grid {w}x{h}: sweeping directional fault probability\n");
    println!(
        "{:>6} {:>7} {:>7} {:>5} {:>9} {:>9} {:>11}",
        "p", "links", "lost", "D", "ticks", "RCAs", "map"
    );
    let full = 2 * (w * (h - 1) + h * (w - 1));
    for p in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let topo = generators::bidi_grid_faulty(w, h, p, 42);
        let d = algo::diameter(&topo);
        let run = GtdSession::on(&topo).run().expect("terminates");
        let exact = run.map.verify_against(&topo, NodeId(0)).is_ok();
        println!(
            "{:>6.2} {:>7} {:>7} {:>5} {:>9} {:>9} {:>11}",
            p,
            topo.num_edges(),
            full - topo.num_edges(),
            d,
            run.ticks,
            run.stats.rcas(),
            if exact { "exact" } else { "WRONG" }
        );
        assert!(exact);
        assert!(run.clean_at_end);
    }
    println!("\nevery surviving one-way link was discovered with its exact port pair —");
    println!("the DFS token crosses each edge forward once and returns via the BCA,");
    println!("so asymmetry costs time but never correctness.");
}
