//! The experiment harness: regenerates every row of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p gtd-bench --bin harness [-- e1 e2 …] [--scale K] [--json FILE]`
//!
//! With no arguments all experiments run at scale 1. Each experiment
//! corresponds to one formal claim of the paper (the paper has no empirical
//! tables/figures — see DESIGN.md §2 for the mapping). All protocol runs go
//! through [`GtdSession`]; the mapper comparison (E7) runs every mapper
//! through the [`TopologyMapper`] trait.

use gtd_baselines::{family_size_log2, min_ticks_lower_bound, tree_loop_params};
use gtd_bench::{core_families, json, json_line, Table, Workload};
use gtd_core::{run_single_bca, run_single_rca, GtdSession, TranscriptEvent};
use gtd_netsim::{algo, generators, EngineMode, NodeId, Port};
use std::io::Write;
use std::time::Instant;

struct Out {
    json: Option<std::fs::File>,
}

impl Out {
    fn section(&mut self, title: &str) {
        println!("\n=== {title} ===");
    }
    fn table(&mut self, t: &Table) {
        print!("{}", t.render());
    }
    fn json(&mut self, line: String) {
        if let Some(f) = &mut self.json {
            writeln!(f, "{line}").expect("write json row");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1usize;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().expect("--scale K").parse().expect("scale int"),
            "--json" => json_path = Some(it.next().expect("--json FILE")),
            other => wanted.push(other.to_lowercase()),
        }
    }
    let run_all = wanted.is_empty();
    let want = |k: &str, wanted: &[String]| run_all || wanted.iter().any(|w| w == k);
    let mut out = Out {
        json: json_path.map(|p| std::fs::File::create(p).expect("create json file")),
    };

    if want("e1", &wanted) {
        e1_correctness(&mut out, scale);
    }
    if want("e2", &wanted) {
        e2_scaling(&mut out, scale);
    }
    if want("e3", &wanted) {
        e3_rca(&mut out, scale);
    }
    if want("e4", &wanted) {
        e4_bca(&mut out, scale);
    }
    if want("e5", &wanted) {
        e5_cleanup(&mut out, scale);
    }
    if want("e6", &wanted) {
        e6_lower_bound(&mut out, scale);
    }
    if want("e7", &wanted) {
        e7_baselines(&mut out, scale);
    }
    if want("e8", &wanted) {
        e8_engine(&mut out, scale);
    }
}

/// E1 (Theorem 4.1): exact port-level map on every family × seed.
fn e1_correctness(out: &mut Out, scale: usize) {
    out.section("E1 — Theorem 4.1: the root maps the network exactly");
    let mut t = Table::new(&["workload", "N", "E", "D", "ticks", "map", "clean (L4.2)"]);
    let mut workloads = core_families(scale);
    for seed in 0..4u64 {
        workloads.push(Workload::new(
            format!("random_sc(n={}, d=4, seed={seed})", 48 * scale),
            generators::random_sc(48 * scale, 4, seed),
        ));
    }
    for w in &workloads {
        let d = algo::diameter(&w.topo);
        let run = GtdSession::on(&w.topo).run().expect("protocol terminates");
        let ok = run.map.verify_against(&w.topo, NodeId(0)).is_ok();
        t.row(vec![
            w.name.clone(),
            w.topo.num_nodes().to_string(),
            w.topo.num_edges().to_string(),
            d.to_string(),
            run.ticks.to_string(),
            if ok { "exact".into() } else { "WRONG".into() },
            if run.clean_at_end {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
        out.json(json_line(
            "E1",
            json!({
                "workload": w.name, "n": w.topo.num_nodes(), "e": w.topo.num_edges(),
                "d": d, "ticks": run.ticks, "exact": ok, "clean": run.clean_at_end,
            }),
        ));
    }
    out.table(&t);
}

/// E2 (Lemma 4.4): total ticks scale as O(E·D).
fn e2_scaling(out: &mut Out, scale: usize) {
    out.section("E2 — Lemma 4.4: GTD terminates in O(N·D) (measured against E·D)");
    let mut t = Table::new(&[
        "workload",
        "N",
        "E",
        "D",
        "ticks",
        "ticks/(E*D)",
        "ticks/(N*D)",
    ]);
    let mut rows: Vec<Workload> = Vec::new();
    for k in 1..=3usize {
        let n = 16 * k * scale;
        rows.push(Workload::new(format!("ring(n={n})"), generators::ring(n)));
    }
    for k in 1..=3usize {
        let n = 48 * k * scale;
        rows.push(Workload::new(
            format!("random_sc(n={n}, d=3)"),
            generators::random_sc(n, 3, 5),
        ));
    }
    for m in 4..=6usize {
        rows.push(Workload::new(
            format!("debruijn(2,{m})"),
            generators::debruijn(2, m),
        ));
    }
    for w in &rows {
        let d = algo::diameter(&w.topo) as f64;
        let e = w.topo.num_edges() as f64;
        let n = w.topo.num_nodes() as f64;
        let run = GtdSession::on(&w.topo).run().expect("terminates");
        run.map.verify_against(&w.topo, NodeId(0)).expect("exact");
        t.row(vec![
            w.name.clone(),
            n.to_string(),
            e.to_string(),
            d.to_string(),
            run.ticks.to_string(),
            format!("{:.1}", run.ticks as f64 / (e * d)),
            format!("{:.1}", run.ticks as f64 / (n * d)),
        ]);
        out.json(json_line(
            "E2",
            json!({
                "workload": w.name, "n": n, "e": e, "d": d, "ticks": run.ticks,
            }),
        ));
    }
    out.table(&t);
    println!("shape check: ticks/(E*D) should stay in a narrow constant band.");

    // E2b — the anatomy of the constant: where do the ~33 ticks per
    // edge-diameter go? Phase shares straight off the session's breakdown.
    let mut t = Table::new(&[
        "workload",
        "RCAs",
        "search %",
        "echo %",
        "mark %",
        "report+cleanup %",
    ]);
    for (name, topo) in [
        (
            format!("ring(n={})", 24 * scale.min(4)),
            generators::ring(24 * scale.min(4)),
        ),
        (
            format!("random_sc(n={}, d=3)", 48 * scale),
            generators::random_sc(48 * scale, 3, 5),
        ),
        ("debruijn(2,5)".to_string(), generators::debruijn(2, 5)),
    ] {
        let pb = GtdSession::on(&topo).run().expect("terminates").phases;
        let tot = pb.total().max(1) as f64;
        t.row(vec![
            name.clone(),
            pb.rcas.to_string(),
            format!("{:.0}", pb.search as f64 / tot * 100.0),
            format!("{:.0}", pb.echo as f64 / tot * 100.0),
            format!("{:.0}", pb.mark as f64 / tot * 100.0),
            format!("{:.0}", pb.report_cleanup as f64 / tot * 100.0),
        ]);
        out.json(json_line(
            "E2b",
            json!({
                "workload": name, "rcas": pb.rcas, "search": pb.search,
                "echo": pb.echo, "mark": pb.mark, "cleanup": pb.report_cleanup,
            }),
        ));
    }
    out.table(&t);
    println!("echo = OG+ID round trip; mark = conversions; report+cleanup = OD");
    println!("marking + loop token + KILL + UNMARK circuits (plus the next RCA's");
    println!("IG transit when RCAs are back-to-back; search = remaining idle gaps).");
}

/// E3 (Lemma 4.3): one RCA costs O(D) — linear in the marked-loop length.
fn e3_rca(out: &mut Out, scale: usize) {
    out.section("E3 — Lemma 4.3: a single RCA is linear in d(A,root)+d(root,A)");
    let mut t = Table::new(&["workload", "loop len L", "ticks", "ticks/L"]);
    for k in 1..=6usize {
        let n = 8 * k * scale;
        let topo = generators::ring(n);
        let probe = run_single_rca(&topo, NodeId(n as u32 / 2), EngineMode::Sparse).unwrap();
        let l = (probe.dist_to_root + probe.dist_from_root) as f64;
        t.row(vec![
            format!("ring(n={n}), A at n/2"),
            format!("{l}"),
            probe.ticks.to_string(),
            format!("{:.2}", probe.ticks as f64 / l),
        ]);
        out.json(json_line(
            "E3",
            json!({"workload": format!("ring({n})"), "loop": l, "ticks": probe.ticks}),
        ));
    }
    for k in 1..=6usize {
        let n = 8 * k * scale;
        let topo = generators::line_bidi(n);
        let a = NodeId(n as u32 - 1);
        let probe = run_single_rca(&topo, a, EngineMode::Sparse).unwrap();
        let l = (probe.dist_to_root + probe.dist_from_root) as f64;
        t.row(vec![
            format!("line_bidi(n={n}), A at end"),
            format!("{l}"),
            probe.ticks.to_string(),
            format!("{:.2}", probe.ticks as f64 / l),
        ]);
        out.json(json_line(
            "E3",
            json!({"workload": format!("line({n})"), "loop": l, "ticks": probe.ticks}),
        ));
    }
    out.table(&t);
    println!("shape check: ticks/L converges to a constant (speed-1 + token circuits).");
}

/// E4 (BCA contract): one BCA costs O(D).
fn e4_bca(out: &mut Out, scale: usize) {
    out.section("E4 — BCA contract: one backwards send is linear in the loop length");
    let mut t = Table::new(&["workload", "loop len", "B done", "delivered", "ticks/loop"]);
    for k in 1..=6usize {
        let n = 8 * k * scale;
        let topo = generators::ring(n);
        // node 1 sends backwards to node 0 through its only in-port: the
        // marked loop is the whole ring.
        let probe = run_single_bca(&topo, NodeId(1), Port(0), EngineMode::Sparse).unwrap();
        t.row(vec![
            format!("ring(n={n}), B=n1"),
            probe.loop_len.to_string(),
            probe.ticks_initiator.to_string(),
            probe.ticks_delivered.to_string(),
            format!(
                "{:.2}",
                probe.ticks_delivered as f64 / probe.loop_len as f64
            ),
        ]);
        out.json(json_line(
            "E4",
            json!({
                "workload": format!("ring({n})"), "loop": probe.loop_len,
                "initiator": probe.ticks_initiator, "delivered": probe.ticks_delivered,
            }),
        ));
    }
    out.table(&t);
    println!("shape check: delivered/loop converges to a constant.");
}

/// E5 (Lemma 4.2): the network is left undisturbed.
fn e5_cleanup(out: &mut Out, scale: usize) {
    out.section("E5 — Lemma 4.2: every RCA/BCA leaves the network undisturbed");
    let mut t = Table::new(&[
        "workload",
        "RCAs",
        "BCAs",
        "kills accepted",
        "max chars/node",
        "pristine at end",
    ]);
    for w in core_families(scale) {
        let mut engine = gtd_core::build_gtd_engine(&w.topo, EngineMode::Sparse);
        let mut events = Vec::new();
        let mut terminated = false;
        for _ in 0..200_000_000u64 {
            events.clear();
            engine.tick(&mut events);
            if events
                .iter()
                .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
            {
                terminated = true;
                break;
            }
        }
        assert!(terminated, "{} wedged", w.name);
        engine.tick(&mut events);
        let rcas: u64 = engine.nodes().iter().map(|n| n.stat_rcas_started).sum();
        let bcas: u64 = engine.nodes().iter().map(|n| n.stat_bcas_started).sum();
        let kills: u64 = engine.nodes().iter().map(|n| n.stat_kills_accepted).sum();
        let maxc: usize = engine
            .nodes()
            .iter()
            .map(|n| n.stat_max_chars)
            .max()
            .unwrap_or(0);
        let pristine = engine.nodes().iter().all(|n| n.snake_state_pristine())
            && engine.signals_in_flight() == 0;
        t.row(vec![
            w.name.clone(),
            rcas.to_string(),
            bcas.to_string(),
            kills.to_string(),
            maxc.to_string(),
            if pristine { "yes".into() } else { "NO".into() },
        ]);
        out.json(json_line(
            "E5",
            json!({
                "workload": w.name, "rcas": rcas, "bcas": bcas, "kills": kills,
                "max_chars": maxc, "pristine": pristine,
            }),
        ));
    }
    out.table(&t);
    println!("max chars/node bounds the finite-state claim (constant, not O(N)).");
}

/// E6 (Lemmas 5.1, 5.2 + Theorem 5.1): the counting lower bound vs GTD.
fn e6_lower_bound(out: &mut Out, scale: usize) {
    out.section("E6 — Theorem 5.1: Ω(N log N) lower bound vs measured GTD on the tree-loop family");
    let mut t = Table::new(&[
        "h",
        "N",
        "D",
        "log2 G(N)",
        "min ticks (T5.1)",
        "GTD ticks",
        "GTD/bound",
    ]);
    let hmax = 5 + scale.ilog2();
    for h in 2..=16u32 {
        let p = tree_loop_params(h);
        let run_protocol = h <= hmax;
        let (d, ticks) = if run_protocol {
            let topo = generators::tree_loop_random(h, 3);
            let d = algo::diameter(&topo);
            let run = GtdSession::on(&topo).run().expect("terminates");
            run.map.verify_against(&topo, NodeId(0)).expect("exact");
            (d.to_string(), Some(run.ticks))
        } else {
            // bound-only rows: the counting argument needs no simulation
            (format!("<={}", p.diameter_bound), None)
        };
        let bound = min_ticks_lower_bound(h);
        t.row(vec![
            h.to_string(),
            p.n.to_string(),
            d.clone(),
            format!("{:.0}", family_size_log2(h)),
            format!("{:.1}", bound),
            ticks.map_or("-".into(), |t| t.to_string()),
            ticks.map_or("-".into(), |t| format!("{:.1}", t as f64 / bound.max(1.0))),
        ]);
        out.json(json_line(
            "E6",
            json!({
                "h": h, "n": p.n, "d": d, "log2_g": family_size_log2(h),
                "min_ticks": bound, "gtd_ticks": ticks,
            }),
        ));
        if h >= 12 && !run_protocol {
            break;
        }
    }
    out.table(&t);
    println!("shape check: GTD/bound grows ~ like D (= O(log N) here), i.e. GTD is");
    println!("within an O(D) factor of optimal — the paper's asymptotic-optimality claim.");
}

/// E7: every mapper through the common [`TopologyMapper`] interface.
fn e7_baselines(out: &mut Out, scale: usize) {
    out.section("E7 — what finite-stateness costs: all mappers through TopologyMapper");
    let mappers = gtd::all_mappers();
    // Ratio columns are derived from mapper names so reordering or
    // extending all_mappers() cannot silently mislabel them.
    let idx_of = |name: &str| mappers.iter().position(|m| m.name() == name);
    let gtd_idx = idx_of("gtd");
    let ratio_pairs: Vec<(String, usize, usize)> = ["routed-dfs", "flood-echo"]
        .iter()
        .filter_map(|base| {
            let (g, b) = (gtd_idx?, idx_of(base)?);
            Some((format!("gtd/{base}"), g, b))
        })
        .collect();
    let mut headers: Vec<String> = vec!["workload".into(), "N".into()];
    for m in &mappers {
        headers.push(format!("{} rounds", m.name()));
    }
    for (label, _, _) in &ratio_pairs {
        headers.push(label.clone());
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for w in core_families(scale) {
        let mut rounds = Vec::new();
        for m in &mappers {
            let run = m.map_network(&w.topo, NodeId(0)).expect("mapper succeeds");
            assert!(
                run.verify_against(&w.topo),
                "{} disagrees on {}",
                m.name(),
                w.name
            );
            out.json(json_line(
                "E7",
                json!({
                    "workload": w.name, "n": w.topo.num_nodes(), "mapper": m.name(),
                    "rounds": run.rounds, "messages": run.messages,
                }),
            ));
            rounds.push(run.rounds);
        }
        let mut row = vec![w.name.clone(), w.topo.num_nodes().to_string()];
        row.extend(rounds.iter().map(|r| r.to_string()));
        for &(_, g, b) in &ratio_pairs {
            row.push(format!("{:.1}", rounds[g] as f64 / rounds[b] as f64));
        }
        t.row(row);
    }
    out.table(&t);
    println!("expected shape: flood-echo wins by ~N x (unbounded bandwidth), routed-dfs");
    println!("by a constant factor (same O(E*D) walk without snake machinery).");
}

/// E8: engine strategy ablation.
fn e8_engine(out: &mut Out, scale: usize) {
    out.section("E8 — engine ablation: dense vs sparse vs thread-parallel");
    let mut t = Table::new(&["workload", "mode", "ticks", "wall ms", "Mnode-ticks/s"]);
    let n = 64 * scale;
    let topo = generators::random_sc(n, 3, 2);
    for (name, mode) in [
        ("dense", EngineMode::Dense),
        ("sparse", EngineMode::Sparse),
        ("parallel", EngineMode::Parallel),
    ] {
        let t0 = Instant::now();
        let run = GtdSession::on(&topo).mode(mode).run().expect("terminates");
        let wall = t0.elapsed();
        run.map.verify_against(&topo, NodeId(0)).expect("exact");
        let node_ticks = run.ticks as f64 * n as f64;
        t.row(vec![
            format!("random_sc(n={n}, d=3)"),
            name.into(),
            run.ticks.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", node_ticks / wall.as_secs_f64() / 1e6),
        ]);
        out.json(json_line(
            "E8",
            json!({
                "workload": format!("random_sc({n})"), "mode": name,
                "ticks": run.ticks, "wall_ms": wall.as_secs_f64() * 1e3,
            }),
        ));
    }
    out.table(&t);
    println!("all modes simulate identical tick sequences; only wall time differs.");
    println!("(a full GTD run is latency-bound: ticks are tiny units of work, so");
    println!("thread dispatch dominates the parallel mode at these sizes)");

    // Saturated-flood throughput: step a large network through the flood
    // phase of one RCA, where every node is active every tick — the regime
    // the parallel engine exists for.
    let mut t = Table::new(&["workload", "mode", "ticks", "wall ms", "Mnode-ticks/s"]);
    let n = 16384 * scale;
    let topo = generators::random_sc(n, 3, 9);
    for (name, mode) in [
        ("dense", EngineMode::Dense),
        ("sparse", EngineMode::Sparse),
        ("parallel", EngineMode::Parallel),
    ] {
        let mut engine = gtd_netsim::Engine::new(&topo, mode, |meta| {
            let start = if meta.id == NodeId(1) {
                gtd_core::StartBehavior::SingleRca
            } else {
                gtd_core::StartBehavior::Passive
            };
            gtd_core::ProtocolNode::new(&meta, start)
        });
        let steps = 300u64;
        let t0 = Instant::now();
        let mut events = Vec::new();
        for _ in 0..steps {
            engine.tick(&mut events);
        }
        let wall = t0.elapsed();
        let node_ticks = steps as f64 * n as f64;
        t.row(vec![
            format!("random_sc(n={n}) flood"),
            name.into(),
            steps.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", node_ticks / wall.as_secs_f64() / 1e6),
        ]);
        out.json(json_line(
            "E8b",
            json!({
                "workload": format!("flood({n})"), "mode": name,
                "wall_ms": wall.as_secs_f64() * 1e3,
            }),
        ));
    }
    out.table(&t);
    println!("during flood saturation every node is active; the thread fan-out amortizes.");
}
