//! Minimal JSON writer/parser for the experiment row dumps.
//!
//! The harness writes one JSON object per experiment row so EXPERIMENTS.md
//! numbers stay regenerable. The workspace builds offline (no serde), and
//! the rows are flat objects of strings/numbers/bools, so this module
//! implements exactly that subset: the [`json!`](crate::json!) object
//! macro, [`JsonValue::render`], and a small recursive-descent
//! [`JsonValue::parse`] used by tests to round-trip rows.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value (subset: no exponent-form numbers are produced).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (sorted keys: rows render deterministically).
    Obj(BTreeMap<String, JsonValue>),
}

/// Conversion into [`JsonValue`] by reference (so the [`json!`] macro
/// never moves its operands).
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> JsonValue;
}

macro_rules! to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Num(*self as f64)
            }
        }
    )*};
}

to_json_num!(u8, u16, u32, u64, usize, i32, i64, f64);

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

/// Helper: the string member `key` of an object row, if present.
pub fn str_field(row: &JsonValue, key: &str) -> Option<String> {
    match row.get(key) {
        Some(JsonValue::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Helper: the numeric member `key` of an object row as `u64`, if present.
pub fn num_field(row: &JsonValue, key: &str) -> Option<u64> {
    match row.get(key) {
        Some(&JsonValue::Num(n)) => Some(n as u64),
        _ => None,
    }
}

/// Helper: the boolean member `key` of an object row, if present.
pub fn bool_field(row: &JsonValue, key: &str) -> Option<bool> {
    match row.get(key) {
        Some(&JsonValue::Bool(b)) => Some(b),
        _ => None,
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Build an object from key/value pairs (last write wins per key).
    pub fn obj(pairs: impl IntoIterator<Item = (String, JsonValue)>) -> Self {
        JsonValue::Obj(pairs.into_iter().collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            JsonValue::Str(s) => escape(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for round-tripping the rows
    /// this module writes).
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|_| format!("bad number {text:?} at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // advance one UTF-8 scalar
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

/// Build a [`JsonValue`] object literal: `json!({ "k": expr, ... })`.
/// Operands are taken by reference via [`ToJson`].
#[macro_export]
macro_rules! json {
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::json::JsonValue::obj([
            $(($key.to_string(), $crate::json::ToJson::to_json(&$val)),)*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_objects_without_moving() {
        let name = String::from("ring(n=4)");
        let ticks: Option<u64> = None;
        let row = json!({ "workload": name, "n": 4usize, "ok": true, "ticks": ticks });
        // `name` still usable: the macro borrowed it
        assert_eq!(name.len(), 9);
        assert_eq!(
            row.render(),
            r#"{"n":4,"ok":true,"ticks":null,"workload":"ring(n=4)"}"#
        );
    }

    #[test]
    fn roundtrip_through_parser() {
        let row = json!({
            "s": "quote \" backslash \\ tab \t",
            "f": 1.5f64,
            "i": 42u64,
            "b": false,
        });
        let back = JsonValue::parse(&row.render()).unwrap();
        assert_eq!(back, row);
        assert_eq!(back.get("i"), Some(&JsonValue::Num(42.0)));
    }

    #[test]
    fn parser_handles_nesting_and_ws() {
        let v = JsonValue::parse(r#" { "a": [1, 2, {"b": null}], "c": "x" } "#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::obj([("b".to_string(), JsonValue::Null)]),
            ]))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse(r#"{"a": }"#).is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
    }
}
