//! # gtd-bench
//!
//! The experiment layer: declarative, spec-backed workloads
//! ([`Workload`], [`core_family_specs`]), the [`Campaign`] grid runner
//! (topology specs × mappers × engine modes × roots × repetitions over a
//! worker pool), a plain-text table writer, and JSON row dumps so
//! experiment numbers stay regenerable.
//!
//! Protocol runs go through the unified
//! [`GtdSession`](gtd_core::GtdSession) API; mapper comparisons go
//! through [`gtd_baselines::TopologyMapper`]; grids go through
//! [`Campaign`].

pub mod campaign;
pub mod json;

use gtd_netsim::{Topology, TopologySpec};

pub use campaign::{
    parse_jsonl, CacheKey, Campaign, CampaignError, CampaignReport, CellError, CellOutcome,
    CellSpec, GroupStat, RemapSummary, RunRecord,
};
pub use gtd_core::{phase_breakdown, PhaseBreakdown};

use crate::json::JsonValue;

/// A named workload instance: a [`TopologySpec`] plus the topology it
/// built. The display name *is* the canonical spec string, so names and
/// parameters can never drift apart.
pub struct Workload {
    /// The declarative description.
    pub spec: TopologySpec,
    /// The network it builds.
    pub topo: Topology,
}

impl Workload {
    /// Build the workload a spec describes.
    pub fn from_spec(spec: TopologySpec) -> Self {
        let topo = spec.build();
        Workload { spec, topo }
    }

    /// Parse a spec string and build it.
    pub fn parse(s: &str) -> Result<Self, gtd_netsim::ParseSpecError> {
        s.parse().map(Workload::from_spec)
    }

    /// Canonical display name (the spec string).
    pub fn name(&self) -> String {
        self.spec.to_string()
    }
}

/// The structured families used across experiments, as specs (kept small
/// enough that every experiment finishes on a laptop; the harness accepts
/// a scale knob).
pub fn core_family_specs(scale: usize) -> Vec<TopologySpec> {
    let s = scale.max(1);
    vec![
        TopologySpec::Ring { n: 16 * s },
        TopologySpec::LineBidi { n: 16 * s },
        TopologySpec::Torus { w: 4 * s, h: 4 },
        TopologySpec::Debruijn {
            k: 2,
            m: 4 + s.ilog2() as usize,
        },
        TopologySpec::TreeLoop {
            h: 3 + s.ilog2(),
            seed: 7,
        },
        TopologySpec::RandomSc {
            n: 32 * s,
            delta: 3,
            seed: 1,
        },
        TopologySpec::BidiGridFaulty {
            w: 4 * s,
            h: 4,
            p: 0.2,
            seed: 11,
        },
    ]
}

/// [`core_family_specs`], built.
pub fn core_families(scale: usize) -> Vec<Workload> {
    core_family_specs(scale)
        .into_iter()
        .map(Workload::from_spec)
        .collect()
}

/// Simple fixed-width table printer (markdown-flavoured).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(c);
                out.push_str(&" ".repeat(w - c.len() + 1));
                out.push('|');
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// Serialize one experiment row as a JSON line:
/// `{"experiment": "E2", "data": {...}}`.
pub fn json_line(experiment: &str, data: JsonValue) -> String {
    crate::json!({ "experiment": experiment, "data": data }).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_core::GtdSession;
    use gtd_netsim::generators;

    #[test]
    fn families_are_valid_networks() {
        for w in core_families(1) {
            w.topo.validate().unwrap();
            assert!(
                gtd_netsim::algo::is_strongly_connected(&w.topo),
                "{}",
                w.name()
            );
        }
    }

    #[test]
    fn families_scale() {
        let small: usize = core_families(1).iter().map(|w| w.topo.num_nodes()).sum();
        let big: usize = core_families(4).iter().map(|w| w.topo.num_nodes()).sum();
        assert!(big > small);
    }

    #[test]
    fn family_names_round_trip_as_specs() {
        for w in core_families(2) {
            let reparsed: TopologySpec = w.name().parse().unwrap();
            assert_eq!(reparsed, w.spec, "{} must round-trip", w.name());
            assert_eq!(reparsed.build(), w.topo);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn phase_breakdown_accounts_for_most_ticks() {
        let topo = generators::ring(8);
        let run = GtdSession::on(&topo).run().expect("protocol terminates");
        let pb = phase_breakdown(&run.events);
        assert_eq!(pb.rcas, 14, "2E minus the root-local moves on an 8-ring");
        let total_run = run.events.last().unwrap().0;
        assert!(pb.total() <= total_run);
        assert!(
            pb.total() * 10 >= total_run * 8,
            "breakdown should cover >= 80% of the run: {} vs {}",
            pb.total(),
            total_run
        );
    }

    #[test]
    fn json_rows_parse_back() {
        let line = json_line("E1", crate::json!({"n": 4u32}));
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("experiment"), Some(&JsonValue::Str("E1".into())));
        assert_eq!(
            v.get("data").and_then(|d| d.get("n")),
            Some(&JsonValue::Num(4.0))
        );
    }
}
