//! # gtd-bench
//!
//! Shared machinery for the experiment harness (`harness` binary) and the
//! criterion benches: the workload families of DESIGN.md §8, a plain-text
//! table writer, and JSON row dumps so EXPERIMENTS.md numbers stay
//! regenerable.
//!
//! Every experiment drives the protocol through the unified
//! [`GtdSession`](gtd_core::GtdSession) API; the mapper comparisons (E7)
//! go through [`gtd::TopologyMapper`].

pub mod json;

use gtd_core::{GtdSession, TranscriptEvent};
use gtd_netsim::{generators, EngineMode, Topology};

pub use gtd_core::{phase_breakdown, PhaseBreakdown};

use crate::json::JsonValue;

/// A named workload instance.
pub struct Workload {
    /// Family + parameters, e.g. `random_sc(n=256, δ=3, seed=1)`.
    pub name: String,
    /// The network.
    pub topo: Topology,
}

impl Workload {
    /// Construct with a formatted name.
    pub fn new(name: impl Into<String>, topo: Topology) -> Self {
        Workload {
            name: name.into(),
            topo,
        }
    }
}

/// The structured families used across experiments (kept small enough that
/// every experiment finishes on a laptop; the harness accepts a scale knob).
pub fn core_families(scale: usize) -> Vec<Workload> {
    let s = scale.max(1);
    vec![
        Workload::new(format!("ring(n={})", 16 * s), generators::ring(16 * s)),
        Workload::new(
            format!("line_bidi(n={})", 16 * s),
            generators::line_bidi(16 * s),
        ),
        Workload::new(
            format!("torus({}x{})", 4 * s, 4),
            generators::torus(4 * s, 4),
        ),
        Workload::new(
            format!("debruijn(2,{})", 4 + s.ilog2() as usize),
            generators::debruijn(2, 4 + s.ilog2() as usize),
        ),
        Workload::new(
            format!("tree_loop(h={})", 3 + s.ilog2()),
            generators::tree_loop_random(3 + s.ilog2(), 7),
        ),
        Workload::new(
            format!("random_sc(n={}, d=3, seed=1)", 32 * s),
            generators::random_sc(32 * s, 3, 1),
        ),
        Workload::new(
            format!("grid_faulty({}x{}, p=0.2)", 4 * s, 4),
            generators::bidi_grid_faulty(4 * s, 4, 0.2, 11),
        ),
    ]
}

/// Run GTD collecting tick-stamped root events — a thin compatibility
/// wrapper over the session's transcript capture. New code should read
/// `RunOutcome::events` (and `RunOutcome::phases`) directly.
pub fn run_gtd_timestamped(topo: &Topology, mode: EngineMode) -> Vec<(u64, TranscriptEvent)> {
    GtdSession::on(topo)
        .mode(mode)
        .run()
        .expect("protocol terminates")
        .events
}

/// Simple fixed-width table printer (markdown-flavoured).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(c);
                out.push_str(&" ".repeat(w - c.len() + 1));
                out.push('|');
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// Serialize one experiment row as a JSON line:
/// `{"experiment": "E2", "data": {...}}`.
pub fn json_line(experiment: &str, data: JsonValue) -> String {
    crate::json!({ "experiment": experiment, "data": data }).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_valid_networks() {
        for w in core_families(1) {
            w.topo.validate().unwrap();
            assert!(
                gtd_netsim::algo::is_strongly_connected(&w.topo),
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn families_scale() {
        let small: usize = core_families(1).iter().map(|w| w.topo.num_nodes()).sum();
        let big: usize = core_families(4).iter().map(|w| w.topo.num_nodes()).sum();
        assert!(big > small);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn phase_breakdown_accounts_for_most_ticks() {
        let topo = generators::ring(8);
        let trace = run_gtd_timestamped(&topo, EngineMode::Sparse);
        let pb = phase_breakdown(&trace);
        assert_eq!(pb.rcas, 14, "2E minus the root-local moves on an 8-ring");
        let total_run = trace.last().unwrap().0;
        assert!(pb.total() <= total_run);
        assert!(
            pb.total() * 10 >= total_run * 8,
            "breakdown should cover >= 80% of the run: {} vs {}",
            pb.total(),
            total_run
        );
    }

    #[test]
    fn json_rows_parse_back() {
        let line = json_line("E1", crate::json!({"n": 4u32}));
        let v = JsonValue::parse(&line).unwrap();
        assert_eq!(v.get("experiment"), Some(&JsonValue::Str("E1".into())));
        assert_eq!(
            v.get("data").and_then(|d| d.get("n")),
            Some(&JsonValue::Num(4.0))
        );
    }
}
