//! # gtd-bench
//!
//! Shared machinery for the experiment harness (`harness` binary) and the
//! criterion benches: the workload families of DESIGN.md §8, a plain-text
//! table writer, and JSON row dumps so EXPERIMENTS.md numbers stay
//! regenerable.

use gtd_core::TranscriptEvent;
use gtd_netsim::{generators, EngineMode, Topology};
use serde::Serialize;

/// A named workload instance.
pub struct Workload {
    /// Family + parameters, e.g. `random_sc(n=256, δ=3, seed=1)`.
    pub name: String,
    /// The network.
    pub topo: Topology,
}

impl Workload {
    /// Construct with a formatted name.
    pub fn new(name: impl Into<String>, topo: Topology) -> Self {
        Workload { name: name.into(), topo }
    }
}

/// The structured families used across experiments (kept small enough that
/// every experiment finishes on a laptop; the harness accepts a scale knob).
pub fn core_families(scale: usize) -> Vec<Workload> {
    let s = scale.max(1);
    vec![
        Workload::new(format!("ring(n={})", 16 * s), generators::ring(16 * s)),
        Workload::new(format!("line_bidi(n={})", 16 * s), generators::line_bidi(16 * s)),
        Workload::new(
            format!("torus({}x{})", 4 * s, 4),
            generators::torus(4 * s, 4),
        ),
        Workload::new(
            format!("debruijn(2,{})", 4 + s.ilog2() as usize),
            generators::debruijn(2, 4 + s.ilog2() as usize),
        ),
        Workload::new(
            format!("tree_loop(h={})", 3 + s.ilog2()),
            generators::tree_loop_random(3 + s.ilog2(), 7),
        ),
        Workload::new(
            format!("random_sc(n={}, d=3, seed=1)", 32 * s),
            generators::random_sc(32 * s, 3, 1),
        ),
        Workload::new(
            format!("grid_faulty({}x{}, p=0.2)", 4 * s, 4),
            generators::bidi_grid_faulty(4 * s, 4, 0.2, 11),
        ),
    ]
}

/// Where a GTD run's ticks go, aggregated over all network RCAs — the
/// anatomy of the ~33·E·D constant (experiment E2's ablation table).
///
/// Phase boundaries are read off the tick-stamped root transcript:
/// * **search** — gap before the first IgHop of an RCA: the IG flood
///   travelling A→root (speed-1) plus any DFS/BCA transit;
/// * **echo** — IgTail→first IdHop: the OG snake growing back out to A and
///   the ID snake returning (two more speed-1 diameters);
/// * **mark** — IdHop→IdTail: the ID→OD conversion streaming through;
/// * **report+cleanup** — IdTail→the next RCA's start (or termination):
///   OD marking finishing, the FORWARD/BACK token circling, KILL dying
///   out, UNMARK circling.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize)]
pub struct PhaseBreakdown {
    /// Ticks in the search phase (IG floods).
    pub search: u64,
    /// Ticks in the echo phase (OG out + ID back).
    pub echo: u64,
    /// Ticks streaming conversions at the root.
    pub mark: u64,
    /// Ticks reporting and cleaning up (loop token, KILL, UNMARK).
    pub report_cleanup: u64,
    /// Network RCAs observed.
    pub rcas: usize,
}

impl PhaseBreakdown {
    /// Total accounted ticks.
    pub fn total(&self) -> u64 {
        self.search + self.echo + self.mark + self.report_cleanup
    }
}

/// Compute the phase breakdown from a tick-stamped root transcript.
pub fn phase_breakdown(events: &[(u64, TranscriptEvent)]) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::default();
    let mut prev_end = events.first().map_or(0, |&(t, _)| t);
    let mut i = 0;
    while i < events.len() {
        // find the start of the next RCA block (first IgHop)
        let Some(start) = events[i..]
            .iter()
            .position(|&(_, e)| matches!(e, TranscriptEvent::IgHop(_)))
            .map(|k| i + k)
        else {
            break;
        };
        let t_start = events[start].0;
        let find = |from: usize, pred: &dyn Fn(TranscriptEvent) -> bool| {
            events[from..].iter().position(|&(_, e)| pred(e)).map(|k| from + k)
        };
        let Some(ig_tail) = find(start, &|e| e == TranscriptEvent::IgTail) else { break };
        let Some(id_first) = find(ig_tail, &|e| matches!(e, TranscriptEvent::IdHop(_))) else {
            break;
        };
        let Some(id_tail) = find(id_first, &|e| e == TranscriptEvent::IdTail) else { break };
        // next block start (or final event) bounds report+cleanup
        let next = find(id_tail, &|e| {
            matches!(
                e,
                TranscriptEvent::IgHop(_)
                    | TranscriptEvent::LocalForward { .. }
                    | TranscriptEvent::LocalBack
                    | TranscriptEvent::Terminated
            )
        })
        .unwrap_or(events.len() - 1);
        out.search += t_start.saturating_sub(prev_end);
        out.echo += events[id_first].0 - events[ig_tail].0;
        out.mark += (events[ig_tail].0 - t_start) + (events[id_tail].0 - events[id_first].0);
        out.report_cleanup += events[next].0 - events[id_tail].0;
        out.rcas += 1;
        prev_end = events[next].0;
        i = id_tail + 1;
    }
    out
}

/// Run GTD collecting tick-stamped root events (for [`phase_breakdown`]).
pub fn run_gtd_timestamped(
    topo: &Topology,
    mode: EngineMode,
) -> Vec<(u64, TranscriptEvent)> {
    let mut engine = gtd_core::runner::build_gtd_engine(topo, mode);
    let mut out = Vec::new();
    let mut events = Vec::new();
    loop {
        events.clear();
        engine.tick(&mut events);
        for &(_, ev) in &events {
            out.push((engine.tick_count(), ev));
        }
        if matches!(out.last(), Some((_, TranscriptEvent::Terminated))) {
            return out;
        }
        assert!(engine.tick_count() < 500_000_000, "wedged");
    }
}

/// Simple fixed-width table printer (markdown-flavoured).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                out.push(' ');
                out.push_str(c);
                out.push_str(&" ".repeat(w - c.len() + 1));
                out.push('|');
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// One machine-readable experiment row (written as JSON lines next to the
/// printed tables).
#[derive(Serialize)]
pub struct JsonRow<'a, T: Serialize> {
    /// Experiment id, e.g. "E2".
    pub experiment: &'a str,
    /// Row payload.
    pub data: T,
}

/// Serialize one row as a JSON line.
pub fn json_line<T: Serialize>(experiment: &str, data: T) -> String {
    serde_json::to_string(&JsonRow { experiment, data }).expect("row serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_valid_networks() {
        for w in core_families(1) {
            w.topo.validate().unwrap();
            assert!(gtd_netsim::algo::is_strongly_connected(&w.topo), "{}", w.name);
        }
    }

    #[test]
    fn families_scale() {
        let small: usize = core_families(1).iter().map(|w| w.topo.num_nodes()).sum();
        let big: usize = core_families(4).iter().map(|w| w.topo.num_nodes()).sum();
        assert!(big > small);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn phase_breakdown_accounts_for_most_ticks() {
        let topo = generators::ring(8);
        let trace = run_gtd_timestamped(&topo, EngineMode::Sparse);
        let pb = phase_breakdown(&trace);
        assert_eq!(pb.rcas, 14, "2E minus the root-local moves on an 8-ring");
        let total_run = trace.last().unwrap().0;
        assert!(pb.total() <= total_run);
        assert!(
            pb.total() * 10 >= total_run * 8,
            "breakdown should cover >= 80% of the run: {} vs {}",
            pb.total(),
            total_run
        );
    }

    #[test]
    fn phase_breakdown_empty_transcript() {
        assert_eq!(phase_breakdown(&[]).rcas, 0);
        assert_eq!(phase_breakdown(&[(0, TranscriptEvent::Start)]).total(), 0);
    }

    #[test]
    fn json_rows_parse_back() {
        let line = json_line("E1", serde_json::json!({"n": 4}));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["experiment"], "E1");
        assert_eq!(v["data"]["n"], 4);
    }
}
