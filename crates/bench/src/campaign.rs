//! Declarative experiment grids.
//!
//! A [`Campaign`] is the paper-claim shape — "over family F at size N,
//! mapper M costs R rounds" — as a first-class value: a grid of
//! [`TopologySpec`]s × mapper names × [`EngineMode`]s × [`RemapPolicy`]s
//! × roots × repetitions. [`Campaign::run`] executes every cell across a
//! scoped worker-thread pool and returns a [`CampaignReport`] of
//! structured [`RunRecord`]s.
//!
//! Four properties make campaigns fit for batch execution:
//!
//! * **Determinism** — records are returned in grid order and contain
//!   only logical quantities (rounds, counters, phase ticks — never wall
//!   time), so the JSONL/CSV exports are byte-identical regardless of
//!   [`Campaign::jobs`].
//! * **Fault tolerance** — a cell that fails (tick budget exhausted,
//!   precondition violated) is captured as a [`CellError`] in its record;
//!   the rest of the grid still completes.
//! * **Aggregation** — [`CampaignReport::aggregate`] groups cells by
//!   (spec, mapper, mode, policy) and reports min/median/max rounds per
//!   group.
//! * **Incrementality** — every cell is a pure function of its
//!   (spec, mapper, mode, policy, root, rep) key, so
//!   [`Campaign::resume_from`] can seed completed cells from a previous
//!   export ([`parse_jsonl`]) and execute only the rest, byte-identically
//!   to a fresh run.
//!
//! ```
//! use gtd_bench::Campaign;
//!
//! let report = Campaign::new()
//!     .parse_specs(["ring:16", "debruijn:2,4"]).unwrap()
//!     .mappers(["gtd", "flood-echo"])
//!     .jobs(4)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.records.len(), 4);
//! assert_eq!(report.error_count(), 0);
//! for line in report.to_jsonl().lines() {
//!     gtd_bench::json::JsonValue::parse(line).expect("rows are valid JSON");
//! }
//! ```

use crate::json::{bool_field, num_field, str_field, JsonValue};
use gtd_baselines::{mapper_by_name, MapperConfig, MapperError};
use gtd_core::{GtdError, PhaseBreakdown, RemapPolicy};
use gtd_netsim::{DynamicSpec, EngineMode, NodeId, ParseSpecError, Topology};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// A campaign could not be configured or started. Per-cell failures are
/// *not* errors at this level — they land in [`RunRecord::result`].
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignError {
    /// A grid axis that must be non-empty was empty.
    EmptyAxis(&'static str),
    /// A mapper name did not resolve
    /// (see [`gtd_baselines::mapper_names`]).
    UnknownMapper(String),
    /// A spec failed to parse or validate.
    Spec(ParseSpecError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyAxis(axis) => write!(f, "campaign has no {axis}"),
            CampaignError::UnknownMapper(name) => {
                write!(
                    f,
                    "unknown mapper {name:?} (known: {})",
                    gtd_baselines::mapper_names().join(", ")
                )
            }
            CampaignError::Spec(e) => write!(f, "bad topology spec: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ParseSpecError> for CampaignError {
    fn from(e: ParseSpecError) -> Self {
        CampaignError::Spec(e)
    }
}

/// One grid cell's inputs — everything a cell's result is a pure
/// function of, as a standalone value. [`Campaign::run`] executes these
/// on its in-process worker pool; the campaign service
/// (`gtd-serve`) ships them to worker *processes* and executes them with
/// the exact same code path, which is what keeps service output
/// byte-identical to in-process output.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Topology spec (static or dynamic).
    pub spec: DynamicSpec,
    /// Mapper name (see [`gtd_baselines::mapper_names`]).
    pub mapper: String,
    /// Engine mode.
    pub mode: EngineMode,
    /// Remap policy.
    pub policy: RemapPolicy,
    /// Root processor.
    pub root: NodeId,
    /// Repetition index (0-based).
    pub rep: usize,
    /// Tick budget (`None` = the spec-derived default).
    pub budget: Option<u64>,
}

impl CellSpec {
    /// Execute this cell against its own freshly built base topology.
    pub fn execute_built(&self) -> RunRecord {
        self.execute(&self.spec.build())
    }

    /// Execute this cell against a pre-built base topology (callers that
    /// share one spec across many cells build it once). An unknown mapper
    /// name is captured as a `precondition` [`CellError`], mirroring how
    /// out-of-range roots are handled — a cell failure, never a panic.
    pub fn execute(&self, topo: &Topology) -> RunRecord {
        let cfg = MapperConfig {
            mode: self.mode,
            tick_budget: self.budget,
            capture_phases: true,
            policy: self.policy,
            fault: self.spec.fault,
            ..MapperConfig::default()
        };
        // Fault counters are only rendered for cells whose spec carries an
        // active plane, so reliable-wire rows stay byte-identical to
        // exports from before the fault plane existed.
        let faulted = self.spec.fault.is_active();
        let result = match mapper_by_name(&self.mapper, &cfg) {
            None => Err(CellError {
                kind: "precondition",
                message: format!(
                    "unknown mapper {:?} (known: {})",
                    self.mapper,
                    gtd_baselines::mapper_names().join(", ")
                ),
            }),
            Some(mapper) if self.spec.is_static() => match mapper.map_network(topo, self.root) {
                Ok(run) => Ok(CellOutcome {
                    rounds: run.rounds,
                    messages: run.messages,
                    verified: run.verify_against(topo),
                    rcas: run.stats.map(|s| s.rcas()),
                    bcas: run.stats.map(|s| s.bcas()),
                    dropped: run.stats.map(|s| s.dropped),
                    clean: run.clean,
                    phases: run.phases,
                    remap: None,
                    fault_dropped: run.stats.filter(|_| faulted).map(|s| s.fault_dropped),
                    fault_delayed: run.stats.filter(|_| faulted).map(|s| s.fault_delayed),
                    retries: run.stats.filter(|_| faulted).map(|s| s.retries),
                }),
                Err(e) => Err(CellError::from(e)),
            },
            Some(mapper) => match mapper.map_dynamic(topo, &self.spec.schedule, self.root) {
                Ok(run) => Ok(CellOutcome {
                    rounds: run.total_rounds,
                    messages: None,
                    verified: run.verified,
                    rcas: None,
                    bcas: None,
                    dropped: None,
                    clean: None,
                    phases: None,
                    remap: Some(RemapSummary {
                        epochs: run.epochs,
                        initial_rounds: run.initial_rounds,
                        latencies: run.remap_latencies,
                        epoch_nodes: run.epoch_nodes,
                    }),
                    fault_dropped: faulted.then_some(run.fault_dropped),
                    fault_delayed: faulted.then_some(run.fault_delayed),
                    retries: None,
                }),
                Err(e) => Err(CellError::from(e)),
            },
        };
        RunRecord {
            spec: self.spec.to_string(),
            mapper: self.mapper.clone(),
            mode: self.mode,
            policy: self.policy,
            root: self.root,
            rep: self.rep,
            nodes: topo.num_nodes(),
            edges: topo.num_edges(),
            budget: self.budget,
            result,
        }
    }

    /// [`CellSpec::execute`] bounded by a wall-clock timeout. The cell
    /// runs on a freshly spawned thread; if it has not finished within
    /// `timeout` the record is a `cell-timeout` [`CellError`] and the
    /// runaway thread is detached (it cannot be cancelled, but it can no
    /// longer stall the grid). `timeout = None` executes inline.
    ///
    /// A timed-out record is a function of the host's wall clock, not of
    /// the cell's inputs, so it is never admitted to the incremental
    /// cache (see [`Campaign::resume_from`]).
    pub fn execute_with_timeout(&self, topo: &Topology, timeout: Option<Duration>) -> RunRecord {
        let Some(limit) = timeout else {
            return self.execute(topo);
        };
        let (tx, rx) = mpsc::channel();
        let cell = self.clone();
        let owned = topo.clone();
        std::thread::spawn(move || {
            // the receiver may have given up: a send error is fine
            let _ = tx.send(cell.execute(&owned));
        });
        match rx.recv_timeout(limit) {
            Ok(record) => record,
            Err(_) => RunRecord {
                spec: self.spec.to_string(),
                mapper: self.mapper.clone(),
                mode: self.mode,
                policy: self.policy,
                root: self.root,
                rep: self.rep,
                nodes: topo.num_nodes(),
                edges: topo.num_edges(),
                budget: self.budget,
                result: Err(CellError {
                    kind: "cell-timeout",
                    message: format!(
                        "cell exceeded the {} ms wall-clock timeout",
                        limit.as_millis()
                    ),
                }),
            },
        }
    }
}

/// Builder for an experiment grid. Construct with [`Campaign::new`], add
/// axes, then [`Campaign::run`].
#[derive(Clone, Debug)]
pub struct Campaign {
    specs: Vec<DynamicSpec>,
    mappers: Vec<String>,
    modes: Vec<EngineMode>,
    policies: Vec<RemapPolicy>,
    roots: Vec<NodeId>,
    reps: usize,
    jobs: usize,
    tick_budget: Option<u64>,
    cell_timeout: Option<Duration>,
    cache: Vec<RunRecord>,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

impl Campaign {
    /// An empty grid with default axes: sparse engine, root `n0`, one
    /// repetition, one worker. Specs and mappers must be added before
    /// [`Campaign::run`].
    pub fn new() -> Self {
        Campaign {
            specs: Vec::new(),
            mappers: Vec::new(),
            modes: vec![EngineMode::Sparse],
            policies: vec![RemapPolicy::Lazy],
            roots: vec![NodeId(0)],
            reps: 1,
            jobs: 1,
            tick_budget: None,
            cell_timeout: None,
            cache: Vec::new(),
        }
    }

    /// Add one topology spec to the grid — static
    /// ([`TopologySpec`](gtd_netsim::TopologySpec)) or dynamic
    /// ([`DynamicSpec`], with a mutation schedule).
    pub fn spec(mut self, spec: impl Into<DynamicSpec>) -> Self {
        self.specs.push(spec.into());
        self
    }

    /// Add several topology specs (static or dynamic).
    pub fn specs<S: Into<DynamicSpec>>(mut self, specs: impl IntoIterator<Item = S>) -> Self {
        self.specs.extend(specs.into_iter().map(Into::into));
        self
    }

    /// Parse and add spec strings (`"ring:64"`,
    /// `"ring:64+drop-edge=3@t500"`, …). Fails fast on the first
    /// malformed spec.
    pub fn parse_specs<S: AsRef<str>>(
        mut self,
        specs: impl IntoIterator<Item = S>,
    ) -> Result<Self, CampaignError> {
        for s in specs {
            self.specs.push(s.as_ref().parse::<DynamicSpec>()?);
        }
        Ok(self)
    }

    /// Replace the mapper axis with the given stable names (validated at
    /// [`Campaign::run`]).
    pub fn mappers<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.mappers = names.into_iter().map(Into::into).collect();
        self
    }

    /// Replace the engine-mode axis (default: sparse only).
    pub fn modes(mut self, modes: impl IntoIterator<Item = EngineMode>) -> Self {
        self.modes = modes.into_iter().collect();
        self
    }

    /// Replace the remap-policy axis (default: lazy only). The policy
    /// only changes GTD's dynamic timelines; static cells and the
    /// analytic baselines run identically under either value, so widening
    /// this axis is mainly useful on dynamic GTD grids.
    pub fn policies(mut self, policies: impl IntoIterator<Item = RemapPolicy>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Replace the root axis (default: `n0` only). Roots out of range for
    /// a particular spec become per-cell precondition errors, not grid
    /// failures.
    pub fn roots(mut self, roots: impl IntoIterator<Item = NodeId>) -> Self {
        self.roots = roots.into_iter().collect();
        self
    }

    /// Repetitions per cell (default 1). Runs are deterministic, so
    /// repetitions mainly stress re-execution and fill out aggregates.
    pub fn reps(mut self, reps: usize) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// Worker threads executing cells (default 1; `0` = one per available
    /// CPU). Results are independent of this knob by construction.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Tick budget applied to every protocol cell. A cell that exhausts
    /// it reports [`CellError`] with kind `budget-exhausted` while the
    /// rest of the grid completes.
    pub fn tick_budget(mut self, budget: u64) -> Self {
        self.tick_budget = Some(budget);
        self
    }

    /// Wall-clock timeout per cell. A cell that exceeds it reports
    /// [`CellError`] with kind `cell-timeout` while the rest of the grid
    /// completes, so a wedged cell can never stall a grid. Timed-out
    /// cells run on detached threads (they cannot be cancelled, only
    /// abandoned), and their records are wall-clock-dependent, so they
    /// are never admitted to the incremental cache and the timeout is
    /// *not* part of a cell's [`CacheKey`] — a record that completed is
    /// the same record under any timeout.
    pub fn cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Seed the incremental cell cache with previously computed records:
    /// a grid cell whose identity — (spec, mapper, mode, policy, root,
    /// rep, tick budget), all the inputs a cell's result is a pure
    /// function of — matches a seeded record is **not executed**; the
    /// record lands in its grid slot verbatim. Reusing a record is
    /// therefore exact, and re-running a completed grid against its own
    /// export executes zero live cells while producing byte-identical
    /// JSONL/CSV output. Records that match no cell of this grid
    /// (including records produced under a different tick budget) are
    /// ignored.
    pub fn resume_from(mut self, records: impl IntoIterator<Item = RunRecord>) -> Self {
        self.cache.extend(records);
        self
    }

    /// [`Campaign::resume_from`] over a `harness grid --json` /
    /// [`CampaignReport::to_jsonl`] export ([`parse_jsonl`]). Lines that
    /// are not grid records (e.g. `harness run` experiment rows, or
    /// `harness bench` perf rows — grid-shaped for `compare`, but not
    /// campaign cells) are skipped; lines that are not JSON at all are
    /// an error.
    pub fn resume_from_jsonl(self, text: &str) -> Result<Self, String> {
        Ok(self.resume_from(parse_jsonl(text)?))
    }

    /// Validate the grid's axes and expand its cells in grid order (spec
    /// → mapper → mode → policy → root → rep) — the shared prologue of
    /// [`Campaign::run`] and the campaign service coordinator, which
    /// ships the same cells to worker processes instead of threads.
    pub fn plan(&self) -> Result<Vec<CellSpec>, CampaignError> {
        if self.specs.is_empty() {
            return Err(CampaignError::EmptyAxis("topology specs"));
        }
        if self.mappers.is_empty() {
            return Err(CampaignError::EmptyAxis("mappers"));
        }
        if self.modes.is_empty() {
            return Err(CampaignError::EmptyAxis("engine modes"));
        }
        if self.policies.is_empty() {
            return Err(CampaignError::EmptyAxis("remap policies"));
        }
        if self.roots.is_empty() {
            return Err(CampaignError::EmptyAxis("roots"));
        }
        for spec in &self.specs {
            spec.validate()?;
        }
        for name in &self.mappers {
            if mapper_by_name(name, &MapperConfig::default()).is_none() {
                return Err(CampaignError::UnknownMapper(name.clone()));
            }
        }
        let mut cells = Vec::new();
        for spec in &self.specs {
            for mapper in &self.mappers {
                for &mode in &self.modes {
                    for &policy in &self.policies {
                        for &root in &self.roots {
                            for rep in 0..self.reps.max(1) {
                                cells.push(CellSpec {
                                    spec: spec.clone(),
                                    mapper: mapper.clone(),
                                    mode,
                                    policy,
                                    root,
                                    rep,
                                    budget: self.tick_budget,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Grid cells per spec — the stride between consecutive specs in the
    /// grid order [`Campaign::plan`] produces.
    pub fn cells_per_spec(&self) -> usize {
        self.mappers.len()
            * self.modes.len()
            * self.policies.len()
            * self.roots.len()
            * self.reps.max(1)
    }

    /// Execute every cell of the grid and collect the report.
    ///
    /// Cells are distributed over [`Campaign::jobs`] scoped worker
    /// threads; each record lands in its grid-order slot, so the report
    /// (and its JSONL/CSV exports) is identical for any job count.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let cells = self.plan()?;

        // Build every base topology once; cells share them read-only.
        let topos: Vec<Topology> = self.specs.iter().map(DynamicSpec::build).collect();
        let spec_of = |cell_idx: usize| cell_idx / self.cells_per_spec();

        // Incremental cache: pre-fill grid slots whose (spec, mapper,
        // mode, policy, root, rep, budget) key was seeded via
        // [`Campaign::resume_from`]; only the remaining cells run live.
        // Wall-clock-dependent records (`cell-timeout`, `worker-lost`)
        // are not pure functions of the key and are never reused.
        let mut cache: HashMap<CacheKey, RunRecord> = self
            .cache
            .iter()
            .filter(|r| r.is_cacheable())
            .map(|r| (r.cache_key(), r.clone()))
            .collect();
        let slots: Vec<Option<RunRecord>> = cells.iter().map(|c| cache.remove(&c.key())).collect();
        let cached = slots.iter().filter(|s| s.is_some()).count();
        let pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i)
            .collect();

        let workers = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.jobs
        }
        .min(pending.len().max(1));

        let run_cell = |idx: usize| -> RunRecord {
            cells[idx].execute_with_timeout(&topos[spec_of(idx)], self.cell_timeout)
        };

        let slots: Mutex<Vec<Option<RunRecord>>> = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= pending.len() {
                        break;
                    }
                    let slot = pending[i];
                    let record = run_cell(slot);
                    slots.lock().expect("no worker panicked")[slot] = Some(record);
                });
            }
        });

        let records = slots
            .into_inner()
            .expect("workers joined")
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();
        Ok(CampaignReport { records, cached })
    }
}

/// A per-cell failure, captured instead of aborting the grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellError {
    /// Stable machine-readable kind: `budget-exhausted`, `precondition`,
    /// `decode` or `unresolvable`.
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl CellError {
    /// Every kind a cell failure can carry — the single source of truth
    /// shared by the producer ([`From<MapperError>`], which must map into
    /// this set) and the export parser ([`RunRecord::from_json`], which
    /// accepts exactly this set). Extend here first when adding a kind.
    ///
    /// The first five are *logical* failures — pure functions of the
    /// cell's inputs, reproducible and therefore cacheable. The last two
    /// are *operational*: `cell-timeout` (the cell exceeded a wall-clock
    /// limit; [`Campaign::cell_timeout`] or a service worker's bound) and
    /// `worker-lost` (the campaign service gave up on a cell after its
    /// retry budget). Operational records are never admitted to the
    /// incremental cache (see [`RunRecord::is_cacheable`]).
    pub const KINDS: [&'static str; 8] = [
        "budget-exhausted",
        "precondition",
        "decode",
        "remap-diverged",
        "unresolvable",
        "fault-degraded",
        "cell-timeout",
        "worker-lost",
    ];

    /// Is this kind a pure function of the cell's inputs (reproducible on
    /// any host), as opposed to an operational artifact of one execution?
    pub fn kind_is_deterministic(kind: &str) -> bool {
        !matches!(kind, "cell-timeout" | "worker-lost")
    }

    /// Resolve a serialized kind back to its static string, `None` for
    /// kinds this build does not know.
    pub fn kind_from_str(s: &str) -> Option<&'static str> {
        Self::KINDS.into_iter().find(|k| *k == s)
    }
}

impl From<MapperError> for CellError {
    fn from(e: MapperError) -> Self {
        let kind = match &e {
            MapperError::Gtd(GtdError::BudgetExhausted { .. }) => "budget-exhausted",
            MapperError::Gtd(GtdError::Precondition(_)) => "precondition",
            MapperError::Gtd(GtdError::Decode(_)) => "decode",
            MapperError::Gtd(GtdError::RemapDiverged { .. }) => "remap-diverged",
            MapperError::Unresolvable(_) => "unresolvable",
            // Deterministic (DetRng-seeded plane), so degraded cells are
            // cacheable like any other logical outcome.
            MapperError::Degraded { .. } => "fault-degraded",
        };
        debug_assert!(
            CellError::kind_from_str(kind).is_some(),
            "{kind} missing from CellError::KINDS — exports would not parse back"
        );
        CellError {
            kind,
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

/// Lower median (the `(len-1)/2`-th order statistic) — the single
/// definition every aggregate, summary and report in this crate uses.
/// Sorts `samples` in place; `None` when empty.
pub fn lower_median(samples: &mut [u64]) -> Option<u64> {
    samples.sort_unstable();
    if samples.is_empty() {
        None
    } else {
        Some(samples[(samples.len() - 1) / 2])
    }
}

/// Dynamic-cell extras: what the remapping timeline of a mutated spec
/// measured.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemapSummary {
    /// Mapping epochs executed over the timeline.
    pub epochs: usize,
    /// Rounds until the first correct map (see
    /// [`DynamicRun::initial_rounds`](gtd_baselines::DynamicRun)).
    pub initial_rounds: u64,
    /// Remap latency per scheduled mutation, in schedule order.
    pub latencies: Vec<Option<u64>>,
    /// Processors at the end of each epoch, in timeline order
    /// (membership mutations change N mid-run).
    pub epoch_nodes: Vec<usize>,
}

impl RemapSummary {
    /// Median remap latency over the mutations that were remapped (lower
    /// middle for even counts).
    pub fn median_latency(&self) -> Option<u64> {
        let mut ls: Vec<u64> = self.latencies.iter().flatten().copied().collect();
        lower_median(&mut ls)
    }
}

/// What a successful cell measured. Only logical quantities — never wall
/// time — so reports are reproducible byte-for-byte.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOutcome {
    /// Synchronous rounds until the collector had the map (for dynamic
    /// cells: total rounds over the whole remapping timeline).
    pub rounds: u64,
    /// Messages, for mappers that count them.
    pub messages: Option<u64>,
    /// Did the discovered edge set match ground truth exactly (for
    /// dynamic cells: did the final map match the final topology)?
    pub verified: bool,
    /// RCAs run (static GTD cells only).
    pub rcas: Option<usize>,
    /// BCAs run (static GTD cells only).
    pub bcas: Option<usize>,
    /// Snake characters refused by the bounded dwell queues (static GTD
    /// cells only; 0 on clean runs).
    pub dropped: Option<u64>,
    /// Lemma 4.2 cleanliness (static GTD cells only).
    pub clean: Option<bool>,
    /// Phase breakdown of the run's ticks (static GTD cells only).
    pub phases: Option<PhaseBreakdown>,
    /// Remapping timeline results (dynamic cells only).
    pub remap: Option<RemapSummary>,
    /// Characters the wire fault plane destroyed (GTD cells whose spec
    /// carries an active plane; `None` on reliable wires so legacy rows
    /// re-render byte-identically).
    pub fault_dropped: Option<u64>,
    /// Characters the wire fault plane delivered late (as above).
    pub fault_delayed: Option<u64>,
    /// Retries the faulted static run spent before verifying (as above;
    /// dynamic timelines account retries per epoch instead).
    pub retries: Option<u32>,
}

/// One grid cell's identity and result.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Canonical spec string, mutation suffixes included (round-trips
    /// through [`DynamicSpec`]'s `FromStr`).
    pub spec: String,
    /// Mapper name.
    pub mapper: String,
    /// Engine mode the cell ran under.
    pub mode: EngineMode,
    /// Remap policy the cell ran under (meaningful for dynamic GTD
    /// cells; recorded for every cell so the axis is always visible).
    pub policy: RemapPolicy,
    /// Root processor.
    pub root: NodeId,
    /// Repetition index (0-based).
    pub rep: usize,
    /// Processors in the built topology.
    pub nodes: usize,
    /// Wires in the built topology.
    pub edges: usize,
    /// The campaign tick budget the cell ran under (`None` = the
    /// default, spec-derived budget). Part of the cell's identity: the
    /// same cell can succeed under one budget and exhaust another.
    pub budget: Option<u64>,
    /// Measurement or captured failure.
    pub result: Result<CellOutcome, CellError>,
}

/// A grid cell's identity — every input a cell's result is a pure
/// function of: (spec, mapper, mode name, policy name, root, rep, tick
/// budget).
pub type CacheKey = (
    String,
    String,
    &'static str,
    &'static str,
    u32,
    usize,
    Option<u64>,
);

/// Parse a JSONL export ([`CampaignReport::to_jsonl`] / `harness grid
/// --json`) back into records. The inverse of [`RunRecord::to_json`] up
/// to fields the export does not carry (phase RCA counts), so re-rendering
/// a parsed record reproduces its row byte-for-byte — the property the
/// incremental cache ([`Campaign::resume_from`]) relies on. Rows that are
/// not grid records are skipped — `harness run` experiment rows, and
/// `harness bench` perf rows (grid-shaped for `harness compare`, but
/// marked with a `"bench"` member precisely so they can never satisfy a
/// campaign cell). Lines that fail to parse as JSON are an error naming
/// the line.
pub fn parse_jsonl(text: &str) -> Result<Vec<RunRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if row.get("bench").is_some() {
            continue;
        }
        if let Some(rec) = RunRecord::from_json(&row) {
            out.push(rec);
        }
    }
    Ok(out)
}

impl CellSpec {
    /// This cell's deterministic identity — matches
    /// [`RunRecord::cache_key`] of the record executing it produces.
    pub fn key(&self) -> CacheKey {
        (
            self.spec.to_string(),
            self.mapper.clone(),
            self.mode.name(),
            self.policy.name(),
            self.root.0,
            self.rep,
            self.budget,
        )
    }
}

impl RunRecord {
    /// This cell's deterministic identity (see [`Campaign::resume_from`]).
    pub fn cache_key(&self) -> CacheKey {
        (
            self.spec.clone(),
            self.mapper.clone(),
            self.mode.name(),
            self.policy.name(),
            self.root.0,
            self.rep,
            self.budget,
        )
    }

    /// May this record be reused for a cell with the same
    /// [`RunRecord::cache_key`]? True for successful cells and logical
    /// failures; false for operational failures (`cell-timeout`,
    /// `worker-lost`), which depend on the wall clock and the worker
    /// fleet rather than on the cell's inputs.
    pub fn is_cacheable(&self) -> bool {
        match &self.result {
            Ok(_) => true,
            Err(e) => CellError::kind_is_deterministic(e.kind),
        }
    }

    /// Parse one JSONL row back into a record — `None` when the object is
    /// not a grid record. Rows predating the policy axis default to
    /// `lazy` (its historical value). Inverse of [`RunRecord::to_json`];
    /// see [`parse_jsonl`].
    pub fn from_json(row: &JsonValue) -> Option<RunRecord> {
        let spec = str_field(row, "spec")?;
        let mapper = str_field(row, "mapper")?;
        let mode: EngineMode = str_field(row, "mode")?.parse().ok()?;
        let policy: RemapPolicy = match row.get("policy") {
            Some(JsonValue::Str(s)) => s.parse().ok()?,
            None => RemapPolicy::Lazy,
            _ => return None,
        };
        let root = NodeId(num_field(row, "root")? as u32);
        let rep = num_field(row, "rep")? as usize;
        let nodes = num_field(row, "n")? as usize;
        let edges = num_field(row, "e")? as usize;
        let result = if bool_field(row, "ok")? {
            let remap = match row.get("remap_latencies") {
                Some(JsonValue::Arr(ls)) => Some(RemapSummary {
                    epochs: num_field(row, "epochs")? as usize,
                    initial_rounds: num_field(row, "initial_rounds")?,
                    latencies: ls
                        .iter()
                        .map(|l| match l {
                            JsonValue::Num(n) => Some(*n as u64),
                            _ => None,
                        })
                        .collect(),
                    epoch_nodes: match row.get("epoch_n") {
                        Some(JsonValue::Arr(ns)) => ns
                            .iter()
                            .map(|n| match n {
                                JsonValue::Num(n) => *n as usize,
                                _ => 0,
                            })
                            .collect(),
                        _ => Vec::new(),
                    },
                }),
                _ => None,
            };
            // The export carries the four phase tick counters but not the
            // breakdown's RCA count, which is left zero — to_json never
            // renders it, so round-trips stay byte-identical.
            let phases = row.get("phases").map(|p| PhaseBreakdown {
                search: num_field(p, "search").unwrap_or(0),
                echo: num_field(p, "echo").unwrap_or(0),
                mark: num_field(p, "mark").unwrap_or(0),
                report_cleanup: num_field(p, "report_cleanup").unwrap_or(0),
                rcas: 0,
            });
            Ok(CellOutcome {
                rounds: num_field(row, "rounds")?,
                messages: num_field(row, "messages"),
                verified: bool_field(row, "verified")?,
                rcas: num_field(row, "rcas").map(|r| r as usize),
                bcas: num_field(row, "bcas").map(|b| b as usize),
                dropped: num_field(row, "dropped"),
                clean: bool_field(row, "clean"),
                phases,
                remap,
                fault_dropped: num_field(row, "fault_dropped"),
                fault_delayed: num_field(row, "fault_delayed"),
                retries: num_field(row, "retries").map(|r| r as u32),
            })
        } else {
            let kind = CellError::kind_from_str(&str_field(row, "error_kind")?)?;
            Err(CellError {
                kind,
                message: str_field(row, "error")?,
            })
        };
        Some(RunRecord {
            spec,
            mapper,
            mode,
            policy,
            root,
            rep,
            nodes,
            edges,
            budget: num_field(row, "budget"),
            result,
        })
    }

    /// Render as one flat JSON object (one JSONL row).
    pub fn to_json(&self) -> JsonValue {
        let mut row = crate::json!({
            "spec": self.spec,
            "mapper": self.mapper,
            "mode": self.mode.name(),
            "policy": self.policy.name(),
            "root": self.root.0,
            "rep": self.rep,
            "n": self.nodes,
            "e": self.edges,
            "ok": self.result.is_ok(),
        });
        let JsonValue::Obj(map) = &mut row else {
            unreachable!("json! builds an object")
        };
        if let Some(budget) = self.budget {
            map.insert("budget".into(), JsonValue::Num(budget as f64));
        }
        // The spec string is canonical, so its fault segments (between the
        // base and the first mutation suffix) ARE the plane's seed and
        // parameters; echo them in a dedicated member so fault schedules
        // are greppable without re-parsing specs. Derived from `spec`, so
        // parse → re-render stays byte-identical.
        if let Some(start) = self.spec.find('~') {
            let end = self.spec.find('+').unwrap_or(self.spec.len());
            map.insert("fault".into(), JsonValue::Str(self.spec[start..end].into()));
        }
        match &self.result {
            Ok(out) => {
                map.insert("rounds".into(), JsonValue::Num(out.rounds as f64));
                map.insert(
                    "messages".into(),
                    out.messages
                        .map_or(JsonValue::Null, |m| JsonValue::Num(m as f64)),
                );
                map.insert("verified".into(), JsonValue::Bool(out.verified));
                if let Some(rcas) = out.rcas {
                    map.insert("rcas".into(), JsonValue::Num(rcas as f64));
                }
                if let Some(bcas) = out.bcas {
                    map.insert("bcas".into(), JsonValue::Num(bcas as f64));
                }
                if let Some(dropped) = out.dropped {
                    map.insert("dropped".into(), JsonValue::Num(dropped as f64));
                }
                if let Some(clean) = out.clean {
                    map.insert("clean".into(), JsonValue::Bool(clean));
                }
                if let Some(p) = &out.phases {
                    map.insert(
                        "phases".into(),
                        crate::json!({
                            "search": p.search,
                            "echo": p.echo,
                            "mark": p.mark,
                            "report_cleanup": p.report_cleanup,
                        }),
                    );
                }
                if let Some(r) = &out.remap {
                    map.insert("epochs".into(), JsonValue::Num(r.epochs as f64));
                    map.insert(
                        "initial_rounds".into(),
                        JsonValue::Num(r.initial_rounds as f64),
                    );
                    map.insert(
                        "remap_latencies".into(),
                        JsonValue::Arr(
                            r.latencies
                                .iter()
                                .map(|l| l.map_or(JsonValue::Null, |v| JsonValue::Num(v as f64)))
                                .collect(),
                        ),
                    );
                    map.insert(
                        "epoch_n".into(),
                        JsonValue::Arr(
                            r.epoch_nodes
                                .iter()
                                .map(|&n| JsonValue::Num(n as f64))
                                .collect(),
                        ),
                    );
                }
                if let Some(fd) = out.fault_dropped {
                    map.insert("fault_dropped".into(), JsonValue::Num(fd as f64));
                }
                if let Some(fd) = out.fault_delayed {
                    map.insert("fault_delayed".into(), JsonValue::Num(fd as f64));
                }
                if let Some(r) = out.retries {
                    map.insert("retries".into(), JsonValue::Num(r as f64));
                }
            }
            Err(err) => {
                map.insert("error_kind".into(), JsonValue::Str(err.kind.into()));
                map.insert("error".into(), JsonValue::Str(err.message.clone()));
            }
        }
        row
    }
}

/// Aggregated rounds over one (spec, mapper, mode, policy) group.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupStat {
    /// Canonical spec string.
    pub spec: String,
    /// Mapper name.
    pub mapper: String,
    /// Engine mode.
    pub mode: EngineMode,
    /// Remap policy.
    pub policy: RemapPolicy,
    /// Cells in the group (roots × reps).
    pub runs: usize,
    /// Cells that failed.
    pub errors: usize,
    /// Minimum rounds over successful cells.
    pub min_rounds: Option<u64>,
    /// Median rounds over successful cells (lower middle for even
    /// counts).
    pub median_rounds: Option<u64>,
    /// Maximum rounds over successful cells.
    pub max_rounds: Option<u64>,
    /// Minimum remap latency over the group's dynamic cells.
    pub min_remap: Option<u64>,
    /// Median remap latency over the group's dynamic cells.
    pub median_remap: Option<u64>,
    /// Maximum remap latency over the group's dynamic cells.
    pub max_remap: Option<u64>,
}

/// The outcome of [`Campaign::run`]: every cell's record, in grid order.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// One record per grid cell, ordered spec → mapper → mode → root →
    /// rep regardless of worker count.
    pub records: Vec<RunRecord>,
    /// How many of those records were satisfied from the incremental
    /// cache ([`Campaign::resume_from`]) instead of executing live.
    pub cached: usize,
}

impl CampaignReport {
    /// Number of cells whose result is an error.
    pub fn error_count(&self) -> usize {
        self.records.iter().filter(|r| r.result.is_err()).count()
    }

    /// Group consecutive records by (spec, mapper, mode, policy) — the
    /// grid order keeps groups contiguous — and aggregate rounds.
    pub fn aggregate(&self) -> Vec<GroupStat> {
        let mut out: Vec<GroupStat> = Vec::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut remap_samples: Vec<u64> = Vec::new();
        let finish = |g: &mut GroupStat, samples: &mut Vec<u64>, remap: &mut Vec<u64>| {
            g.median_rounds = lower_median(samples);
            g.min_rounds = samples.first().copied();
            g.max_rounds = samples.last().copied();
            samples.clear();
            g.median_remap = lower_median(remap);
            g.min_remap = remap.first().copied();
            g.max_remap = remap.last().copied();
            remap.clear();
        };
        for rec in &self.records {
            let fresh = match out.last() {
                Some(g) => {
                    g.spec != rec.spec
                        || g.mapper != rec.mapper
                        || g.mode != rec.mode
                        || g.policy != rec.policy
                }
                None => true,
            };
            if fresh {
                if let Some(g) = out.last_mut() {
                    finish(g, &mut samples, &mut remap_samples);
                }
                out.push(GroupStat {
                    spec: rec.spec.clone(),
                    mapper: rec.mapper.clone(),
                    mode: rec.mode,
                    policy: rec.policy,
                    runs: 0,
                    errors: 0,
                    min_rounds: None,
                    median_rounds: None,
                    max_rounds: None,
                    min_remap: None,
                    median_remap: None,
                    max_remap: None,
                });
            }
            let g = out.last_mut().expect("pushed above");
            g.runs += 1;
            match &rec.result {
                Ok(o) => {
                    samples.push(o.rounds);
                    if let Some(r) = &o.remap {
                        remap_samples.extend(r.latencies.iter().flatten());
                    }
                }
                Err(_) => g.errors += 1,
            }
        }
        if let Some(g) = out.last_mut() {
            finish(g, &mut samples, &mut remap_samples);
        }
        out
    }

    /// Serialize all records as JSON lines (one object per cell, ending
    /// with a trailing newline). Byte-identical for any
    /// [`Campaign::jobs`] value.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(&rec.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Serialize all records as CSV (header + one row per cell). Fields
    /// containing commas or quotes are quoted per RFC 4180.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "spec,mapper,mode,policy,root,rep,n,e,ok,rounds,messages,verified,clean,epochs,epoch_n,remap_median,fault_dropped,fault_delayed,retries,error_kind,error\n",
        );
        for rec in &self.records {
            let blank = String::new;
            let opt = |v: Option<String>| v.unwrap_or_default();
            let (
                rounds,
                messages,
                verified,
                clean,
                epochs,
                epoch_n,
                remap_median,
                fault_dropped,
                fault_delayed,
                retries,
                kind,
                error,
            ) = match &rec.result {
                Ok(o) => (
                    o.rounds.to_string(),
                    o.messages.map_or(String::new(), |m| m.to_string()),
                    o.verified.to_string(),
                    o.clean.map_or(String::new(), |c| c.to_string()),
                    o.remap
                        .as_ref()
                        .map_or(String::new(), |r| r.epochs.to_string()),
                    // per-epoch processor counts, ';'-joined (one CSV
                    // field, no quoting needed)
                    o.remap.as_ref().map_or(String::new(), |r| {
                        r.epoch_nodes
                            .iter()
                            .map(usize::to_string)
                            .collect::<Vec<_>>()
                            .join(";")
                    }),
                    o.remap
                        .as_ref()
                        .and_then(RemapSummary::median_latency)
                        .map_or(String::new(), |l| l.to_string()),
                    opt(o.fault_dropped.map(|v| v.to_string())),
                    opt(o.fault_delayed.map(|v| v.to_string())),
                    opt(o.retries.map(|v| v.to_string())),
                    String::new(),
                    String::new(),
                ),
                Err(e) => (
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    blank(),
                    e.kind.to_string(),
                    e.message.clone(),
                ),
            };
            let fields = [
                rec.spec.clone(),
                rec.mapper.clone(),
                rec.mode.name().to_string(),
                rec.policy.name().to_string(),
                rec.root.0.to_string(),
                rec.rep.to_string(),
                rec.nodes.to_string(),
                rec.edges.to_string(),
                rec.result.is_ok().to_string(),
                rounds,
                messages,
                verified,
                clean,
                epochs,
                epoch_n,
                remap_median,
                fault_dropped,
                fault_delayed,
                retries,
                kind,
                error,
            ];
            let row: Vec<String> = fields.iter().map(|f| csv_escape(f)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Campaign {
        Campaign::new()
            .parse_specs(["ring:8", "debruijn:2,3"])
            .unwrap()
            .mappers(["gtd", "routed-dfs", "flood-echo"])
            .modes([EngineMode::Dense, EngineMode::Sparse])
    }

    #[test]
    fn grid_order_is_spec_mapper_mode_root_rep() {
        let report = tiny_grid().run().unwrap();
        assert_eq!(report.records.len(), 2 * 3 * 2);
        assert_eq!(report.records[0].spec, "ring:8");
        assert_eq!(report.records[0].mapper, "gtd");
        assert_eq!(report.records[0].mode, EngineMode::Dense);
        assert_eq!(report.records[1].mode, EngineMode::Sparse);
        assert_eq!(report.records[2].mapper, "routed-dfs");
        assert_eq!(report.records[6].spec, "debruijn:2,3");
        assert!(report.records.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn empty_axes_and_unknown_mappers_fail_fast() {
        assert_eq!(
            Campaign::new().run().unwrap_err(),
            CampaignError::EmptyAxis("topology specs")
        );
        assert_eq!(
            Campaign::new()
                .parse_specs(["ring:8"])
                .unwrap()
                .run()
                .unwrap_err(),
            CampaignError::EmptyAxis("mappers")
        );
        assert_eq!(
            Campaign::new()
                .parse_specs(["ring:8"])
                .unwrap()
                .mappers(["oracle"])
                .run()
                .unwrap_err(),
            CampaignError::UnknownMapper("oracle".into())
        );
        assert!(matches!(
            Campaign::new().parse_specs(["ring:one"]).unwrap_err(),
            CampaignError::Spec(_)
        ));
    }

    #[test]
    fn out_of_range_root_is_a_cell_error_not_a_grid_failure() {
        let report = Campaign::new()
            .parse_specs(["ring:4", "ring:16"])
            .unwrap()
            .mappers(["gtd"])
            .roots([NodeId(9)])
            .run()
            .unwrap();
        assert_eq!(report.records.len(), 2);
        // n9 exists in ring:16 but not in ring:4
        let err = report.records[0].result.as_ref().unwrap_err();
        assert_eq!(err.kind, "precondition");
        assert!(report.records[1].result.is_ok());
        assert_eq!(report.error_count(), 1);
    }

    #[test]
    fn aggregate_groups_by_spec_mapper_mode() {
        let report = Campaign::new()
            .parse_specs(["ring:8"])
            .unwrap()
            .mappers(["gtd"])
            .roots([NodeId(0), NodeId(3), NodeId(5)])
            .run()
            .unwrap();
        let agg = report.aggregate();
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].runs, 3);
        assert_eq!(agg[0].errors, 0);
        let (min, med, max) = (
            agg[0].min_rounds.unwrap(),
            agg[0].median_rounds.unwrap(),
            agg[0].max_rounds.unwrap(),
        );
        assert!(min <= med && med <= max);
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let report = Campaign::new()
            .parse_specs(["debruijn:2,3"])
            .unwrap()
            .mappers(["flood-echo"])
            .run()
            .unwrap();
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("spec,mapper,"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("\"debruijn:2,3\",flood-echo,"), "{row}");
    }

    #[test]
    fn fault_schedules_are_part_of_the_cache_key() {
        // The canonical spec string embeds the fault suffixes (loss,
        // delay, seed), and the spec string is the first component of the
        // cache key — so a record produced under one fault schedule can
        // never satisfy a cell under another, and `--resume-from` is safe
        // across fault-plane changes by construction.
        let mk = |s: &str| CellSpec {
            spec: s.parse().unwrap(),
            mapper: "gtd".into(),
            mode: EngineMode::Sparse,
            policy: RemapPolicy::Lazy,
            root: NodeId(0),
            rep: 0,
            budget: None,
        };
        let reliable = mk("ring:8");
        let lossy = mk("ring:8~loss=0.01~fault-seed=7");
        let reseeded = mk("ring:8~loss=0.01~fault-seed=8");
        let delayed = mk("ring:8~delay=1..2~fault-seed=7");
        let keys = [reliable.key(), lossy.key(), reseeded.key(), delayed.key()];
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "fault schedules collided in the cache key");
            }
        }
        // An all-zero plane parses back to the unfaulted spec, so it
        // shares the unfaulted cell's key (and may reuse its cached row).
        assert_eq!(mk("ring:8~loss=0").key(), reliable.key());
        // And the executed record's key matches its cell's key, so the
        // resume cache actually admits faulted rows.
        let rec = lossy.execute_built();
        assert_eq!(rec.cache_key(), lossy.key());
        assert!(rec.is_cacheable());
    }

    #[test]
    fn resume_never_crosses_fault_schedules() {
        let first = Campaign::new()
            .parse_specs(["ring:6~loss=0.001~fault-seed=8"])
            .unwrap()
            .mappers(["gtd"])
            .run()
            .unwrap();
        assert_eq!(first.cached, 0);
        // Same grid resumed from its own export: fully cached.
        let again = Campaign::new()
            .parse_specs(["ring:6~loss=0.001~fault-seed=8"])
            .unwrap()
            .mappers(["gtd"])
            .resume_from(first.records.clone())
            .run()
            .unwrap();
        assert_eq!(again.cached, 1);
        assert_eq!(again.records, first.records);
        // A different fault seed is a different cell: nothing reused.
        let reseeded = Campaign::new()
            .parse_specs(["ring:6~loss=0.001~fault-seed=9"])
            .unwrap()
            .mappers(["gtd"])
            .resume_from(first.records.clone())
            .run()
            .unwrap();
        assert_eq!(reseeded.cached, 0);
    }

    #[test]
    fn faulted_rows_carry_fault_fields_and_round_trip() {
        let report = Campaign::new()
            .parse_specs(["ring:6~loss=0.001~fault-seed=8", "ring:6"])
            .unwrap()
            .mappers(["gtd"])
            .run()
            .unwrap();
        let jsonl = report.to_jsonl();
        let (faulted_row, reliable_row) = {
            let mut lines = jsonl.lines();
            (lines.next().unwrap(), lines.next().unwrap())
        };
        // The faulted row records the schedule (seed included) and the
        // counters; the reliable row is schema-identical to a pre-fault
        // export.
        assert!(faulted_row.contains("\"fault\":\"~loss=0.001~fault-seed=8\""));
        assert!(faulted_row.contains("\"fault_dropped\""));
        assert!(faulted_row.contains("\"retries\""));
        for key in ["fault", "fault_dropped", "fault_delayed", "retries"] {
            assert!(!reliable_row.contains(&format!("\"{key}\"")), "{key}");
        }
        // Byte-identical round-trip, fault fields included. (Full record
        // equality is not asserted: the export intentionally drops the
        // phase breakdown's RCA count — see `from_json`.)
        let parsed = parse_jsonl(&jsonl).unwrap();
        let rerendered: String = parsed.iter().map(|r| r.to_json().render() + "\n").collect();
        assert_eq!(rerendered, jsonl);
    }

    #[test]
    fn hopeless_fault_schedules_degrade_to_a_structured_cell_error() {
        let report = Campaign::new()
            .parse_specs(["ring:6~loss=1~fault-seed=1"])
            .unwrap()
            .mappers(["gtd", "flood-echo"])
            .run()
            .unwrap();
        let err = report.records[0].result.as_ref().unwrap_err();
        assert_eq!(err.kind, "fault-degraded");
        assert!(err.message.contains("Exhausted"), "{}", err.message);
        // Degraded cells are deterministic, so the cache may reuse them.
        assert!(report.records[0].is_cacheable());
        // The analytic baseline never touches a wire: same spec, still ok.
        assert!(report.records[1].result.is_ok());
    }
}
