//! Campaign integration suite: determinism across worker counts, per-cell
//! fault capture, and export round-trips through the JSON parser.

use gtd_bench::json::JsonValue;
use gtd_bench::Campaign;
use gtd_netsim::{EngineMode, NodeId};

fn reference_grid() -> Campaign {
    Campaign::new()
        .parse_specs(["ring:16", "debruijn:2,4", "random-sc:n=24,delta=3,seed=3"])
        .unwrap()
        .mappers(["gtd", "routed-dfs", "flood-echo"])
        .modes([EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel])
        .roots([NodeId(0), NodeId(5)])
        .reps(2)
}

#[test]
fn jsonl_is_byte_identical_for_any_job_count() {
    let serial = reference_grid().jobs(1).run().unwrap().to_jsonl();
    let parallel = reference_grid().jobs(8).run().unwrap().to_jsonl();
    assert_eq!(serial, parallel, "jobs must not affect results");
    assert_eq!(serial.lines().count(), 3 * 3 * 3 * 2 * 2);

    let auto = reference_grid().jobs(0).run().unwrap().to_csv();
    assert_eq!(auto, reference_grid().jobs(3).run().unwrap().to_csv());
}

#[test]
fn every_jsonl_row_parses_with_the_bench_json_parser() {
    let report = reference_grid().jobs(4).run().unwrap();
    let jsonl = report.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let row = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(row.get("spec").is_some());
        assert!(row.get("mapper").is_some());
        assert_eq!(row.get("ok"), Some(&JsonValue::Bool(true)));
        assert!(row.get("rounds").is_some());
    }
}

#[test]
fn budget_exhausted_cell_is_captured_while_the_rest_completes() {
    // ring:4 finishes well under 3000 ticks; ring:32 needs far more.
    let report = Campaign::new()
        .parse_specs(["ring:4", "ring:32"])
        .unwrap()
        .mappers(["gtd", "flood-echo"])
        .tick_budget(3_000)
        .jobs(2)
        .run()
        .unwrap();
    assert_eq!(report.records.len(), 4);
    assert_eq!(report.error_count(), 1);

    let small_gtd = &report.records[0];
    assert_eq!(
        (small_gtd.spec.as_str(), small_gtd.mapper.as_str()),
        ("ring:4", "gtd")
    );
    assert!(small_gtd.result.is_ok(), "small run fits the budget");

    let big_gtd = report
        .records
        .iter()
        .find(|r| r.spec == "ring:32" && r.mapper == "gtd")
        .unwrap();
    let err = big_gtd.result.as_ref().unwrap_err();
    assert_eq!(err.kind, "budget-exhausted");
    assert!(err.message.contains("3000"), "{}", err.message);

    // the budget only binds the protocol cells; baselines are unaffected
    assert!(report
        .records
        .iter()
        .filter(|r| r.mapper == "flood-echo")
        .all(|r| r.result.is_ok()));

    // failed cells render as ok=false rows that still parse
    let jsonl = report.to_jsonl();
    let err_line = jsonl
        .lines()
        .find(|l| l.contains("error_kind"))
        .expect("error row present");
    let row = JsonValue::parse(err_line).unwrap();
    assert_eq!(row.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        row.get("error_kind"),
        Some(&JsonValue::Str("budget-exhausted".into()))
    );
}

#[test]
fn dynamic_grid_jsonl_is_byte_identical_for_any_job_count() {
    let grid = || {
        Campaign::new()
            .parse_specs([
                "ring:16+drop-edge=1@t100",
                "random-sc:n=20,delta=3,seed=3+rewire=2@t50+add-edge=1@t4000",
            ])
            .unwrap()
            .mappers(["gtd", "routed-dfs", "flood-echo"])
            .modes([EngineMode::Dense, EngineMode::Sparse])
            .reps(2)
    };
    let serial = grid().jobs(1).run().unwrap().to_jsonl();
    let parallel = grid().jobs(8).run().unwrap().to_jsonl();
    assert_eq!(serial, parallel, "jobs must not affect dynamic results");
    assert_eq!(serial.lines().count(), 2 * 3 * 2 * 2);

    // every dynamic row carries a populated remap story
    for line in serial.lines() {
        let row = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(row.get("ok"), Some(&JsonValue::Bool(true)), "{line}");
        assert_eq!(row.get("verified"), Some(&JsonValue::Bool(true)), "{line}");
        assert!(row.get("epochs").is_some(), "{line}");
        assert!(row.get("initial_rounds").is_some(), "{line}");
        let Some(JsonValue::Arr(latencies)) = row.get("remap_latencies") else {
            panic!("remap_latencies missing: {line}");
        };
        let spec = match row.get("spec") {
            Some(JsonValue::Str(s)) => s.clone(),
            other => panic!("bad spec field {other:?}"),
        };
        assert_eq!(
            latencies.len(),
            spec.matches('+').count(),
            "one latency per mutation: {line}"
        );
        assert!(
            latencies.iter().all(|l| matches!(l, JsonValue::Num(_))),
            "latency populated for every mutation: {line}"
        );
    }

    // the spec strings round-trip through the dynamic grammar
    use gtd_netsim::DynamicSpec;
    for line in serial.lines() {
        let row = JsonValue::parse(line).unwrap();
        if let Some(JsonValue::Str(s)) = row.get("spec") {
            let spec: DynamicSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(&spec.to_string(), s, "canonical rendering");
        }
    }

    // CSV gains the remap columns
    let csv = grid().jobs(0).run().unwrap().to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("epochs,remap_median"), "{header}");
    assert_eq!(csv, grid().jobs(3).run().unwrap().to_csv());
}

#[test]
fn aggregate_carries_remap_latency_columns() {
    let report = Campaign::new()
        .parse_specs(["ring:12+swap=1@t40", "ring:12"])
        .unwrap()
        .mappers(["gtd"])
        .run()
        .unwrap();
    let agg = report.aggregate();
    assert_eq!(agg.len(), 2);
    let dynamic = agg.iter().find(|g| g.spec.contains('+')).unwrap();
    assert!(dynamic.median_remap.is_some());
    assert!(dynamic.min_remap <= dynamic.median_remap);
    assert!(dynamic.median_remap <= dynamic.max_remap);
    let fixed = agg.iter().find(|g| !g.spec.contains('+')).unwrap();
    assert_eq!(fixed.median_remap, None);
}

#[test]
fn repetitions_of_a_deterministic_grid_agree() {
    let report = Campaign::new()
        .parse_specs(["tree-loop:h=3,seed=7"])
        .unwrap()
        .mappers(["gtd"])
        .reps(3)
        .jobs(3)
        .run()
        .unwrap();
    assert_eq!(report.records.len(), 3);
    let rounds: Vec<u64> = report
        .records
        .iter()
        .map(|r| r.result.as_ref().unwrap().rounds)
        .collect();
    assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
    let agg = report.aggregate();
    assert_eq!(agg.len(), 1);
    assert_eq!(agg[0].runs, 3);
    assert_eq!(agg[0].min_rounds, agg[0].max_rounds);
}
