//! Campaign integration suite: determinism across worker counts, per-cell
//! fault capture, and export round-trips through the JSON parser.

use gtd_bench::json::JsonValue;
use gtd_bench::Campaign;
use gtd_core::RemapPolicy;
use gtd_netsim::{EngineMode, NodeId};

fn reference_grid() -> Campaign {
    Campaign::new()
        .parse_specs(["ring:16", "debruijn:2,4", "random-sc:n=24,delta=3,seed=3"])
        .unwrap()
        .mappers(["gtd", "routed-dfs", "flood-echo"])
        .modes([EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel])
        .roots([NodeId(0), NodeId(5)])
        .reps(2)
}

#[test]
fn jsonl_is_byte_identical_for_any_job_count() {
    let serial = reference_grid().jobs(1).run().unwrap().to_jsonl();
    let parallel = reference_grid().jobs(8).run().unwrap().to_jsonl();
    assert_eq!(serial, parallel, "jobs must not affect results");
    assert_eq!(serial.lines().count(), 3 * 3 * 3 * 2 * 2);

    let auto = reference_grid().jobs(0).run().unwrap().to_csv();
    assert_eq!(auto, reference_grid().jobs(3).run().unwrap().to_csv());
}

#[test]
fn every_jsonl_row_parses_with_the_bench_json_parser() {
    let report = reference_grid().jobs(4).run().unwrap();
    let jsonl = report.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let row = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(row.get("spec").is_some());
        assert!(row.get("mapper").is_some());
        assert_eq!(row.get("ok"), Some(&JsonValue::Bool(true)));
        assert!(row.get("rounds").is_some());
    }
}

#[test]
fn budget_exhausted_cell_is_captured_while_the_rest_completes() {
    // ring:4 finishes well under 3000 ticks; ring:32 needs far more.
    let report = Campaign::new()
        .parse_specs(["ring:4", "ring:32"])
        .unwrap()
        .mappers(["gtd", "flood-echo"])
        .tick_budget(3_000)
        .jobs(2)
        .run()
        .unwrap();
    assert_eq!(report.records.len(), 4);
    assert_eq!(report.error_count(), 1);

    let small_gtd = &report.records[0];
    assert_eq!(
        (small_gtd.spec.as_str(), small_gtd.mapper.as_str()),
        ("ring:4", "gtd")
    );
    assert!(small_gtd.result.is_ok(), "small run fits the budget");

    let big_gtd = report
        .records
        .iter()
        .find(|r| r.spec == "ring:32" && r.mapper == "gtd")
        .unwrap();
    let err = big_gtd.result.as_ref().unwrap_err();
    assert_eq!(err.kind, "budget-exhausted");
    assert!(err.message.contains("3000"), "{}", err.message);

    // the budget only binds the protocol cells; baselines are unaffected
    assert!(report
        .records
        .iter()
        .filter(|r| r.mapper == "flood-echo")
        .all(|r| r.result.is_ok()));

    // failed cells render as ok=false rows that still parse
    let jsonl = report.to_jsonl();
    let err_line = jsonl
        .lines()
        .find(|l| l.contains("error_kind"))
        .expect("error row present");
    let row = JsonValue::parse(err_line).unwrap();
    assert_eq!(row.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(
        row.get("error_kind"),
        Some(&JsonValue::Str("budget-exhausted".into()))
    );
}

#[test]
fn dynamic_grid_jsonl_is_byte_identical_for_any_job_count() {
    let grid = || {
        Campaign::new()
            .parse_specs([
                "ring:16+drop-edge=1@t100",
                "random-sc:n=20,delta=3,seed=3+rewire=2@t50+add-edge=1@t4000",
            ])
            .unwrap()
            .mappers(["gtd", "routed-dfs", "flood-echo"])
            .modes([EngineMode::Dense, EngineMode::Sparse])
            .reps(2)
    };
    let serial = grid().jobs(1).run().unwrap().to_jsonl();
    let parallel = grid().jobs(8).run().unwrap().to_jsonl();
    assert_eq!(serial, parallel, "jobs must not affect dynamic results");
    assert_eq!(serial.lines().count(), 2 * 3 * 2 * 2);

    // every dynamic row carries a populated remap story
    for line in serial.lines() {
        let row = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(row.get("ok"), Some(&JsonValue::Bool(true)), "{line}");
        assert_eq!(row.get("verified"), Some(&JsonValue::Bool(true)), "{line}");
        assert!(row.get("epochs").is_some(), "{line}");
        assert!(row.get("initial_rounds").is_some(), "{line}");
        let Some(JsonValue::Arr(latencies)) = row.get("remap_latencies") else {
            panic!("remap_latencies missing: {line}");
        };
        let spec = match row.get("spec") {
            Some(JsonValue::Str(s)) => s.clone(),
            other => panic!("bad spec field {other:?}"),
        };
        assert_eq!(
            latencies.len(),
            spec.matches('+').count(),
            "one latency per mutation: {line}"
        );
        assert!(
            latencies.iter().all(|l| matches!(l, JsonValue::Num(_))),
            "latency populated for every mutation: {line}"
        );
    }

    // the spec strings round-trip through the dynamic grammar
    use gtd_netsim::DynamicSpec;
    for line in serial.lines() {
        let row = JsonValue::parse(line).unwrap();
        if let Some(JsonValue::Str(s)) = row.get("spec") {
            let spec: DynamicSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(&spec.to_string(), s, "canonical rendering");
        }
    }

    // CSV gains the remap columns (policy and per-epoch n included)
    let csv = grid().jobs(0).run().unwrap().to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("mode,policy,root"), "{header}");
    assert!(header.contains("epochs,epoch_n,remap_median"), "{header}");
    assert_eq!(csv, grid().jobs(3).run().unwrap().to_csv());
}

/// The membership reference grid: N-changing specs × mappers × both
/// remap policies. Shared by the jobs-independence and golden-file tests
/// (and regenerable with the equivalent `harness grid` invocation — see
/// `golden/README.md`).
fn membership_grid() -> Campaign {
    Campaign::new()
        .parse_specs([
            "ring:12+node-join=2@t60",
            "ring:12+node-leave=1@t60",
            "random-sc:n=16,delta=3,seed=5+burst=3@t80",
        ])
        .unwrap()
        .mappers(["gtd", "flood-echo"])
        .policies([RemapPolicy::Lazy, RemapPolicy::Eager])
}

#[test]
fn membership_grid_jsonl_is_byte_identical_for_any_job_count() {
    let serial = membership_grid().jobs(1).run().unwrap().to_jsonl();
    let parallel = membership_grid().jobs(8).run().unwrap().to_jsonl();
    assert_eq!(serial, parallel, "jobs must not affect membership grids");
    assert_eq!(serial.lines().count(), 3 * 2 * 2);

    for line in serial.lines() {
        let row = JsonValue::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(row.get("ok"), Some(&JsonValue::Bool(true)), "{line}");
        assert_eq!(row.get("verified"), Some(&JsonValue::Bool(true)), "{line}");
        // the policy axis is recorded on every row
        let Some(JsonValue::Str(policy)) = row.get("policy") else {
            panic!("policy missing: {line}");
        };
        assert!(policy == "lazy" || policy == "eager", "{line}");
        // dynamic rows carry per-epoch node counts, one per epoch
        let Some(JsonValue::Arr(epoch_n)) = row.get("epoch_n") else {
            panic!("epoch_n missing: {line}");
        };
        let Some(&JsonValue::Num(epochs)) = row.get("epochs") else {
            panic!("epochs missing: {line}");
        };
        assert_eq!(epoch_n.len(), epochs as usize, "{line}");
        // membership specs end on the mutated node count
        let spec = match row.get("spec") {
            Some(JsonValue::Str(s)) => s.clone(),
            other => panic!("bad spec field {other:?}"),
        };
        let expect_last = if spec.contains("node-join") {
            13.0
        } else if spec.contains("node-leave") {
            11.0
        } else {
            16.0
        };
        assert_eq!(epoch_n.last(), Some(&JsonValue::Num(expect_last)), "{line}");
    }
}

#[test]
fn membership_grid_exports_match_the_golden_files() {
    // Golden-file pin on the JSONL/CSV schemas: any drift in field
    // names, ordering, or the deterministic values themselves fails
    // here. Regenerate via the command in golden/README.md after an
    // intentional schema change.
    let report = membership_grid().jobs(2).run().unwrap();
    assert_eq!(
        report.to_jsonl(),
        include_str!("golden/membership_grid.jsonl"),
        "JSONL export drifted from the golden file"
    );
    assert_eq!(
        report.to_csv(),
        include_str!("golden/membership_grid.csv"),
        "CSV export drifted from the golden file"
    );
}

#[test]
fn aggregate_carries_remap_latency_columns() {
    let report = Campaign::new()
        .parse_specs(["ring:12+swap=1@t40", "ring:12"])
        .unwrap()
        .mappers(["gtd"])
        .run()
        .unwrap();
    let agg = report.aggregate();
    assert_eq!(agg.len(), 2);
    let dynamic = agg.iter().find(|g| g.spec.contains('+')).unwrap();
    assert!(dynamic.median_remap.is_some());
    assert!(dynamic.min_remap <= dynamic.median_remap);
    assert!(dynamic.median_remap <= dynamic.max_remap);
    let fixed = agg.iter().find(|g| !g.spec.contains('+')).unwrap();
    assert_eq!(fixed.median_remap, None);
}

#[test]
fn resume_from_own_export_executes_zero_live_cells_byte_identically() {
    // ISSUE 5 acceptance: re-running a completed grid with --resume-from
    // its own JSONL executes zero live cells and produces byte-identical
    // output. Includes dynamic + membership cells and both policies.
    let grid = || {
        Campaign::new()
            .parse_specs(["ring:12", "ring:12+node-join=2@t60", "debruijn:2,3"])
            .unwrap()
            .mappers(["gtd", "flood-echo"])
            .modes([EngineMode::Dense, EngineMode::Sparse])
            .policies([RemapPolicy::Lazy, RemapPolicy::Eager])
            .jobs(2)
    };
    let first = grid().run().unwrap();
    assert_eq!(first.cached, 0);
    let jsonl = first.to_jsonl();
    let resumed = grid().resume_from_jsonl(&jsonl).unwrap().run().unwrap();
    assert_eq!(resumed.cached, resumed.records.len(), "zero live cells");
    assert_eq!(resumed.to_jsonl(), jsonl, "JSONL byte-identical");
    assert_eq!(resumed.to_csv(), first.to_csv(), "CSV byte-identical");
    assert_eq!(resumed.aggregate(), first.aggregate());
}

#[test]
fn resume_covers_only_matching_cells_and_runs_the_rest_live() {
    let base = Campaign::new()
        .parse_specs(["ring:8"])
        .unwrap()
        .mappers(["gtd"])
        .run()
        .unwrap();
    // widen the grid: the cached cell is reused, the new cells run live
    let wide = Campaign::new()
        .parse_specs(["ring:8", "ring:16"])
        .unwrap()
        .mappers(["gtd", "flood-echo"])
        .resume_from(base.records.clone())
        .run()
        .unwrap();
    assert_eq!(wide.records.len(), 4);
    assert_eq!(wide.cached, 1);
    assert_eq!(wide.records[0], base.records[0], "cached slot verbatim");
    // a fresh run of the wide grid agrees cell-for-cell with the mix
    let fresh = Campaign::new()
        .parse_specs(["ring:8", "ring:16"])
        .unwrap()
        .mappers(["gtd", "flood-echo"])
        .run()
        .unwrap();
    assert_eq!(wide.to_jsonl(), fresh.to_jsonl());
    // records keyed on another axis value are ignored, not misapplied
    let other_mode = Campaign::new()
        .parse_specs(["ring:8"])
        .unwrap()
        .mappers(["gtd"])
        .modes([EngineMode::Dense])
        .resume_from(base.records.clone()) // sparse-mode records
        .run()
        .unwrap();
    assert_eq!(other_mode.cached, 0);
}

#[test]
fn cached_error_cells_are_reused_without_re_running() {
    let grid = || {
        Campaign::new()
            .parse_specs(["ring:32"])
            .unwrap()
            .mappers(["gtd"])
            .tick_budget(3_000)
    };
    let first = grid().run().unwrap();
    assert_eq!(first.error_count(), 1);
    let resumed = grid()
        .resume_from_jsonl(&first.to_jsonl())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(resumed.cached, 1);
    assert_eq!(resumed.to_jsonl(), first.to_jsonl());
}

#[test]
fn cache_never_crosses_tick_budgets_or_accepts_bench_rows() {
    // A cell's result depends on the tick budget, so the budget is part
    // of the cache key: records computed under one budget must not
    // satisfy a grid running under another.
    let tight = Campaign::new()
        .parse_specs(["ring:32"])
        .unwrap()
        .mappers(["gtd"])
        .tick_budget(3_000)
        .run()
        .unwrap();
    assert_eq!(tight.error_count(), 1, "3k ticks is not enough for ring:32");
    let unbudgeted = Campaign::new()
        .parse_specs(["ring:32"])
        .unwrap()
        .mappers(["gtd"])
        .resume_from_jsonl(&tight.to_jsonl())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(unbudgeted.cached, 0, "different budget must re-run");
    assert_eq!(unbudgeted.error_count(), 0, "default budget succeeds");
    // `harness bench` perf rows are grid-shaped (for compare) but carry
    // a "bench" marker; resume must never let one satisfy a real cell.
    let bench_row = r#"{"bench":"engine","e":64,"mapper":"gtd","mode":"sparse","n":64,"ok":true,"policy":"lazy","rep":0,"root":0,"rounds":1,"spec":"ring:64","verified":true,"wall_ms":1.0}"#;
    let poisoned = Campaign::new()
        .parse_specs(["ring:64"])
        .unwrap()
        .mappers(["gtd"])
        .resume_from_jsonl(bench_row)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(poisoned.cached, 0, "bench rows are not campaign cells");
    let rounds = poisoned.records[0].result.as_ref().unwrap().rounds;
    assert!(rounds > 1, "the cell ran live, not from the perf row");
}

#[test]
fn every_record_round_trips_through_from_json_byte_identically() {
    use gtd_bench::campaign::parse_jsonl;
    use gtd_bench::RunRecord;
    // success, dynamic, membership and error cells all round-trip
    let mut records = membership_grid().jobs(2).run().unwrap().records;
    records.extend(
        Campaign::new()
            .parse_specs(["ring:32", "ring:8"])
            .unwrap()
            .mappers(["gtd"])
            .tick_budget(3_000)
            .run()
            .unwrap()
            .records,
    );
    for rec in &records {
        let row = rec.to_json();
        let back = RunRecord::from_json(&row).expect("grid row parses back");
        assert_eq!(back.to_json().render(), row.render(), "{}", rec.spec);
        assert_eq!(back.cache_key(), rec.cache_key());
    }
    // parse_jsonl skips non-grid rows instead of failing
    let mut text = String::from("{\"experiment\":\"E1\",\"data\":{\"n\":4}}\n");
    text.push_str(&records[0].to_json().render());
    text.push('\n');
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].cache_key(), records[0].cache_key());
    // non-JSON lines are an error naming the line
    assert!(parse_jsonl("not json\n").unwrap_err().contains("line 1"));
}

#[test]
fn repetitions_of_a_deterministic_grid_agree() {
    let report = Campaign::new()
        .parse_specs(["tree-loop:h=3,seed=7"])
        .unwrap()
        .mappers(["gtd"])
        .reps(3)
        .jobs(3)
        .run()
        .unwrap();
    assert_eq!(report.records.len(), 3);
    let rounds: Vec<u64> = report
        .records
        .iter()
        .map(|r| r.result.as_ref().unwrap().rounds)
        .collect();
    assert!(rounds.windows(2).all(|w| w[0] == w[1]), "{rounds:?}");
    let agg = report.aggregate();
    assert_eq!(agg.len(), 1);
    assert_eq!(agg[0].runs, 3);
    assert_eq!(agg[0].min_rounds, agg[0].max_rounds);
}

#[test]
fn cell_timeout_lands_as_a_structured_error_and_the_grid_completes() {
    use std::time::Duration;
    let report = Campaign::new()
        .parse_specs(["ring:128"])
        .unwrap()
        .mappers(["gtd"])
        .cell_timeout(Duration::from_millis(1))
        .run()
        .unwrap();
    assert_eq!(report.records.len(), 1);
    let err = report.records[0]
        .result
        .as_ref()
        .expect_err("a 1ms budget cannot map ring:128");
    assert_eq!(err.kind, "cell-timeout");
    assert!(err.message.contains("1 ms"), "{}", err.message);
    // the record exports and parses back like any other failure
    let parsed = gtd_bench::parse_jsonl(&report.to_jsonl()).unwrap();
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0], report.records[0]);
}

#[test]
fn timed_out_records_are_never_reused_from_the_cache() {
    use std::time::Duration;
    let grid = || {
        Campaign::new()
            .parse_specs(["ring:64"])
            .unwrap()
            .mappers(["gtd"])
    };
    let timed_out = grid().cell_timeout(Duration::from_millis(1)).run().unwrap();
    assert_eq!(timed_out.error_count(), 1);
    assert!(!timed_out.records[0].is_cacheable());
    // resuming from the timed-out export must re-execute the cell (an
    // operational failure says nothing about the cell's true result) —
    // and without the timeout it now succeeds
    let resumed = grid()
        .resume_from_jsonl(&timed_out.to_jsonl())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        resumed.cached, 0,
        "cell-timeout records must not satisfy cells"
    );
    assert!(resumed.records[0].result.is_ok());
    // whereas a logical failure (budget exhaustion) is reused as before
    let exhausted = grid().tick_budget(10).run().unwrap();
    assert_eq!(
        exhausted.records[0].result.as_ref().unwrap_err().kind,
        "budget-exhausted"
    );
    assert!(exhausted.records[0].is_cacheable());
    let resumed = grid()
        .tick_budget(10)
        .resume_from_jsonl(&exhausted.to_jsonl())
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(resumed.cached, 1);
}
