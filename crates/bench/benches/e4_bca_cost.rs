//! E4 — the Backwards Communication Algorithm probe, swept over the
//! backwards-loop length (one message crossing one edge backwards).
//!
//! Bench ids are the rings' canonical spec strings (`ring:16`, …), so
//! they line up with campaign rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtd_bench::Workload;
use gtd_core::run_single_bca;
use gtd_netsim::{EngineMode, NodeId, Port, TopologySpec};
use std::hint::black_box;

fn bench_e4(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_bca_ring");
    for n in [8usize, 16, 32, 48] {
        let w = Workload::from_spec(TopologySpec::Ring { n });
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &w.topo, |b, topo| {
            b.iter(|| {
                let probe = run_single_bca(black_box(topo), NodeId(1), Port(0), EngineMode::Sparse)
                    .unwrap();
                assert!(probe.clean_at_end);
                black_box(probe.ticks_delivered)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
