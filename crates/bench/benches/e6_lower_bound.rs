//! E6 — the §5 counting machinery itself: cost of computing the Lemma 5.1
//! family bound and of the exact tiny-instance census, plus a full GTD run
//! on a tree-loop member (the measured side of Theorem 5.1's comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtd_baselines::{count_distinct_small, family_size_log2, min_ticks_lower_bound};
use gtd_bench::Workload;
use gtd_core::GtdSession;
use gtd_netsim::TopologySpec;
use std::hint::black_box;

fn bench_e6(c: &mut Criterion) {
    c.bench_function("e6_bound_h20", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for h in 2..=20u32 {
                acc += black_box(family_size_log2(h)) + black_box(min_ticks_lower_bound(h));
            }
            black_box(acc)
        })
    });

    c.bench_function("e6_exact_census_h2", |b| {
        b.iter(|| black_box(count_distinct_small(black_box(2))))
    });

    let mut g = c.benchmark_group("e6_gtd_on_tree_loop");
    g.sample_size(10);
    for h in [3u32, 4] {
        // bench ids are the canonical spec strings (`tree-loop:h=3,seed=3`)
        let w = Workload::from_spec(TopologySpec::TreeLoop { h, seed: 3 });
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &w.topo, |b, topo| {
            b.iter(|| black_box(GtdSession::on(black_box(topo)).run().unwrap().ticks))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
