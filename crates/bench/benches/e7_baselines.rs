//! E7 — every mapper through the common [`TopologyMapper`] interface on
//! the same workload: the wall-clock side of the "what does
//! finite-stateness cost" comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtd_baselines::all_mappers;
use gtd_netsim::{generators, NodeId};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let topo = generators::random_sc(48, 3, 1);
    let mut g = c.benchmark_group("e7_mappers_random48");
    g.sample_size(10);
    for mapper in all_mappers() {
        g.bench_with_input(
            BenchmarkId::from_parameter(mapper.name()),
            &topo,
            |b, topo| {
                b.iter(|| {
                    let run = mapper
                        .map_network(black_box(topo), NodeId(0))
                        .expect("maps");
                    black_box(run.rounds)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
