//! E7 — every mapper through the common [`TopologyMapper`] interface on
//! the same workload: the wall-clock side of the "what does
//! finite-stateness cost" comparison.
//!
//! The group id carries the workload's canonical spec string, so bench
//! rows line up with `harness grid --spec random-sc:n=48,delta=3,seed=1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtd_baselines::all_mappers;
use gtd_bench::Workload;
use gtd_netsim::{NodeId, TopologySpec};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let w = Workload::from_spec(TopologySpec::RandomSc {
        n: 48,
        delta: 3,
        seed: 1,
    });
    let mut g = c.benchmark_group(&format!("e7_mappers/{}", w.name()));
    g.sample_size(10);
    for mapper in all_mappers() {
        g.bench_with_input(
            BenchmarkId::from_parameter(mapper.name()),
            &w.topo,
            |b, topo| {
                b.iter(|| {
                    let run = mapper
                        .map_network(black_box(topo), NodeId(0))
                        .expect("maps");
                    black_box(run.rounds)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
