//! E7 — GTD vs the idealized mappers on the same workload: the wall-clock
//! side of the "what does finite-stateness cost" comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtd_baselines::{flood_echo, source_routed_dfs};
use gtd_core::run_gtd;
use gtd_netsim::{generators, EngineMode, NodeId};
use std::hint::black_box;

fn bench_e7(c: &mut Criterion) {
    let topo = generators::random_sc(48, 3, 1);
    let mut g = c.benchmark_group("e7_mappers_random48");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::from_parameter("gtd"), &topo, |b, topo| {
        b.iter(|| black_box(run_gtd(black_box(topo), EngineMode::Sparse).unwrap().ticks))
    });
    g.bench_with_input(BenchmarkId::from_parameter("b2_routed_dfs"), &topo, |b, topo| {
        b.iter(|| black_box(source_routed_dfs(black_box(topo), NodeId(0)).rounds))
    });
    g.bench_with_input(BenchmarkId::from_parameter("b1_flood_echo"), &topo, |b, topo| {
        b.iter(|| black_box(flood_echo(black_box(topo), NodeId(0)).rounds))
    });
    g.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
