//! E8 — engine-strategy ablation: stepping cost of the three execution
//! modes on (a) an idle network, (b) a flood-saturated network. This is
//! the hpc-parallel heart of the simulator: dense = O(N) per tick no
//! matter what, sparse = O(active), parallel = dense fanned out on rayon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtd_core::{ProtocolNode, StartBehavior};
use gtd_netsim::{generators, Engine, EngineMode, NodeId};
use std::hint::black_box;

fn engine_with_flood(
    topo: &gtd_netsim::Topology,
    mode: EngineMode,
    flood: bool,
) -> Engine<ProtocolNode> {
    let mut engine = Engine::new(topo, mode, |meta| {
        let start = if flood && meta.id == NodeId(1) {
            StartBehavior::SingleRca
        } else {
            StartBehavior::Passive
        };
        ProtocolNode::new(&meta, start)
    });
    if flood {
        // Let the IG flood saturate a good part of the network first.
        let mut events = Vec::new();
        for _ in 0..60 {
            engine.tick(&mut events);
        }
    }
    engine
}

fn bench_modes(c: &mut Criterion, label: &str, n: usize, flood: bool) {
    let topo = generators::random_sc(n, 3, 9);
    let mut g = c.benchmark_group(label);
    g.throughput(Throughput::Elements(n as u64));
    for (name, mode) in [
        ("dense", EngineMode::Dense),
        ("sparse", EngineMode::Sparse),
        ("parallel", EngineMode::Parallel),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut engine = engine_with_flood(&topo, mode, flood);
            let mut events = Vec::new();
            b.iter(|| {
                engine.tick(&mut events);
                black_box(engine.tick_count())
            });
        });
    }
    g.finish();
}

fn bench_e8(c: &mut Criterion) {
    bench_modes(c, "e8_idle_n4096", 4096, false);
    bench_modes(c, "e8_flood_n4096", 4096, true);
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
