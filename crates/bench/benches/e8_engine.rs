//! E8 — engine-strategy ablation: stepping cost of the three execution
//! modes on (a) an idle network, (b) a flood-saturated network, (c) a
//! quiet-heavy mid-protocol network (`ring:1024`), the regime the
//! event-driven frontier exists for. This is the hpc-parallel heart of
//! the simulator: dense = O(N) per tick no matter what, sparse =
//! O(active frontier), parallel = dense fanned out over scoped threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtd_bench::Workload;
use gtd_core::{build_gtd_engine, ProtocolNode, StartBehavior};
use gtd_netsim::{generators, Engine, EngineMode, NodeId, TopologySpec};
use std::hint::black_box;

fn engine_with_flood(
    topo: &gtd_netsim::Topology,
    mode: EngineMode,
    flood: bool,
) -> Engine<ProtocolNode> {
    let mut engine = Engine::new(topo, mode, |meta| {
        let start = if flood && meta.id == NodeId(1) {
            StartBehavior::SingleRca
        } else {
            StartBehavior::Passive
        };
        ProtocolNode::new(&meta, start)
    });
    if flood {
        // Let the IG flood saturate a good part of the network first.
        let mut events = Vec::new();
        for _ in 0..60 {
            engine.tick(&mut events);
        }
    }
    engine
}

fn bench_modes(c: &mut Criterion, label: &str, n: usize, flood: bool) {
    // group ids carry the workload's canonical spec string so rows line
    // up with campaign cells (mode names match EngineMode::name()).
    let w = Workload::from_spec(TopologySpec::RandomSc {
        n,
        delta: 3,
        seed: 9,
    });
    let mut g = c.benchmark_group(&format!("{label}/{}", w.name()));
    g.throughput(Throughput::Elements(n as u64));
    for mode in EngineMode::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |b, &mode| {
                let mut engine = engine_with_flood(&w.topo, mode, flood);
                let mut events = Vec::new();
                b.iter(|| {
                    engine.tick(&mut events);
                    black_box(engine.tick_count())
                });
            },
        );
    }
    g.finish();
}

/// Quiet-heavy regime: a full GTD run on a big ring keeps a handful of
/// snakes crawling while a thousand processors idle — the workload the
/// active-frontier scheduler targets (ISSUE 5 acceptance: ≥5× dense →
/// sparse in release mode). Warmed past the power-on tick so the bench
/// window sits mid-protocol.
fn bench_quiet(c: &mut Criterion, n: usize) {
    let topo = generators::ring(n);
    let mut g = c.benchmark_group(&format!("e8_quiet/ring:{n}"));
    g.throughput(Throughput::Elements(n as u64));
    for mode in EngineMode::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(mode.name()),
            &mode,
            |b, &mode| {
                let mut engine = build_gtd_engine(&topo, mode);
                let mut events = Vec::new();
                for _ in 0..100 {
                    engine.tick(&mut events); // mid-protocol warm-up
                }
                events.clear();
                b.iter(|| {
                    engine.tick(&mut events);
                    events.clear();
                    black_box(engine.tick_count())
                });
            },
        );
    }
    g.finish();
}

fn bench_e8(c: &mut Criterion) {
    bench_modes(c, "e8_idle", 4096, false);
    bench_modes(c, "e8_flood", 4096, true);
    bench_quiet(c, 1024);
}

criterion_group!(benches, bench_e8);
criterion_main!(benches);
