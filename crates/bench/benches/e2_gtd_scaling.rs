//! E2 — Lemma 4.4 scaling: GTD cost as N grows, on a constant-degree
//! random family (D = O(log N)) and on the ring (D = N − 1). The reported
//! criterion throughput is per simulated edge·diameter unit, so flat
//! numbers across sizes confirm the O(E·D) shape in wall-clock terms too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtd_core::GtdSession;
use gtd_netsim::{algo, generators};
use std::hint::black_box;

fn bench_e2(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_scaling_random");
    g.sample_size(10);
    for n in [32usize, 64, 96] {
        let topo = generators::random_sc(n, 3, 5);
        let ed = topo.num_edges() as u64 * algo::diameter(&topo) as u64;
        g.throughput(Throughput::Elements(ed));
        g.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| black_box(GtdSession::on(black_box(topo)).run().unwrap().ticks))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e2_scaling_ring");
    g.sample_size(10);
    for n in [16usize, 32, 48] {
        let topo = generators::ring(n);
        let ed = (n * (n - 1)) as u64;
        g.throughput(Throughput::Elements(ed));
        g.bench_with_input(BenchmarkId::from_parameter(n), &topo, |b, topo| {
            b.iter(|| black_box(GtdSession::on(black_box(topo)).run().unwrap().ticks))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
