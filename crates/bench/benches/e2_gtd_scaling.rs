//! E2 — Lemma 4.4 scaling: GTD cost as N grows, on a constant-degree
//! random family (D = O(log N)) and on the ring (D = N − 1). The reported
//! criterion throughput is per simulated edge·diameter unit, so flat
//! numbers across sizes confirm the O(E·D) shape in wall-clock terms too.
//!
//! Workloads are named by their canonical spec strings, so bench ids line
//! up with campaign rows (`harness grid --spec ...`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtd_bench::Workload;
use gtd_core::GtdSession;
use gtd_netsim::{algo, TopologySpec};
use std::hint::black_box;

fn bench_specs(c: &mut Criterion, group: &str, specs: Vec<TopologySpec>) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for w in specs.into_iter().map(Workload::from_spec) {
        let ed = w.topo.num_edges() as u64 * algo::diameter(&w.topo) as u64;
        g.throughput(Throughput::Elements(ed));
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &w.topo, |b, topo| {
            b.iter(|| black_box(GtdSession::on(black_box(topo)).run().unwrap().ticks))
        });
    }
    g.finish();
}

fn bench_e2(c: &mut Criterion) {
    bench_specs(
        c,
        "e2_scaling_random",
        (1..=3usize)
            .map(|k| TopologySpec::RandomSc {
                n: 32 * k,
                delta: 3,
                seed: 5,
            })
            .collect(),
    );
    bench_specs(
        c,
        "e2_scaling_ring",
        [16usize, 32, 48]
            .into_iter()
            .map(|n| TopologySpec::Ring { n })
            .collect(),
    );
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
