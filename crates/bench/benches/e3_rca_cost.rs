//! E3 — Lemma 4.3: a single Root Communication Algorithm probe, swept over
//! the marked-loop length (ring distance). Throughput is per loop hop, so
//! flat wall-clock numbers mirror the linear-tick result of the harness.
//!
//! Bench ids are the rings' canonical spec strings (`ring:16`, …), so
//! they line up with campaign rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gtd_bench::Workload;
use gtd_core::run_single_rca;
use gtd_netsim::{EngineMode, NodeId, TopologySpec};
use std::hint::black_box;

fn bench_e3(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_rca_ring");
    for n in [8usize, 16, 32, 48] {
        let w = Workload::from_spec(TopologySpec::Ring { n });
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &w.topo, |b, topo| {
            b.iter(|| {
                let probe =
                    run_single_rca(black_box(topo), NodeId(n as u32 / 2), EngineMode::Sparse)
                        .unwrap();
                assert!(probe.clean_at_end);
                black_box(probe.ticks)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
