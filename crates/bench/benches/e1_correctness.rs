//! E1 — wall-clock cost of a verified full GTD run per family (Theorem 4.1
//! exercised end-to-end, including map verification against ground truth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gtd_bench::core_families;
use gtd_core::GtdSession;
use gtd_netsim::NodeId;
use std::hint::black_box;

fn bench_e1(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_gtd_verified");
    g.sample_size(10);
    for w in core_families(1) {
        g.bench_with_input(BenchmarkId::from_parameter(w.name()), &w.topo, |b, topo| {
            b.iter(|| {
                let run = GtdSession::on(black_box(topo)).run().expect("terminates");
                run.map.verify_against(topo, NodeId(0)).expect("exact");
                black_box(run.ticks)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
