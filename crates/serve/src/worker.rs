//! The campaign-service worker: a loop that leases cells from a
//! coordinator and executes them with the same code path as an
//! in-process [`Campaign`](gtd_bench::Campaign) — which is what keeps
//! service results byte-identical to local runs.

use crate::protocol::{read_message, write_message, Message, ProtocolError};
use gtd_bench::CellSpec;
use gtd_netsim::rng::DetRng;
use gtd_netsim::Topology;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Take the writer lock even if another holder panicked mid-write: a
/// poisoned line at worst garbles one message, which the coordinator
/// already answers with a structured error. Panicking here instead
/// would take down the whole worker over a recoverable hiccup.
fn lock_writer(writer: &Mutex<TcpStream>) -> MutexGuard<'_, TcpStream> {
    writer
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Environment variable naming a spec substring the worker stalls on
/// (sleeps forever *before* executing a matching cell, heartbeats still
/// flowing). A test-only fault hook: it simulates a wedged worker so the
/// coordinator's lease-expiry path can be exercised deterministically.
pub const STALL_ENV: &str = "GTD_SERVE_STALL_SPEC";

/// Run a worker against `addr` until the coordinator shuts it down or
/// the connection drops. Returns the number of cells executed.
pub fn run_worker(addr: &str) -> std::io::Result<u64> {
    run_worker_on(TcpStream::connect(addr)?)
}

/// [`run_worker`], but tolerate a coordinator that is not up yet: retry
/// the initial connection up to `connect_retries` times with capped
/// exponential backoff. Attempt `k` sleeps `backoff_ms << k` (capped at
/// 10 s) plus a deterministic jitter in `[0, sleep/2]` drawn from a
/// [`DetRng`] seeded by the address — so a fleet of workers pointed at
/// the same coordinator fans out over distinct wake times per worker
/// process start order, yet a single worker's retry schedule is
/// reproducible. Only the connection is retried; once the lease loop is
/// running, a dropped coordinator ends the worker as before.
pub fn run_worker_with_retry(
    addr: &str,
    connect_retries: u32,
    backoff_ms: u64,
) -> std::io::Result<u64> {
    const CAP: Duration = Duration::from_secs(10);
    // FNV-1a over the address: same target, same jitter stream.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in addr.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = DetRng::seed_from_u64(seed);
    let mut attempt = 0u32;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if attempt >= connect_retries => return Err(e),
            Err(_) => {
                let base =
                    Duration::from_millis(backoff_ms.max(1).saturating_mul(1 << attempt.min(16)))
                        .min(CAP);
                let jitter =
                    base.mul_f64((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 / 2.0);
                std::thread::sleep(base + jitter);
                attempt += 1;
            }
        }
    };
    run_worker_on(stream)
}

fn run_worker_on(stream: TcpStream) -> std::io::Result<u64> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    write_message(&mut *lock_writer(&writer), &Message::Hello)?;

    // Registration: the coordinator answers hello with welcome.
    let heartbeat_ms = match read_message(&mut reader)? {
        Some(Ok(Message::Welcome { heartbeat_ms, .. })) => heartbeat_ms,
        Some(Ok(Message::Error { message })) => {
            return Err(std::io::Error::other(format!(
                "coordinator rejected: {message}"
            )));
        }
        other => {
            return Err(std::io::Error::other(format!(
                "expected welcome, got {other:?}"
            )));
        }
    };

    // Heartbeats flow from their own thread even while a cell executes;
    // the shared writer mutex keeps lines whole. The thread exits when
    // its writes start failing (connection gone).
    {
        let writer = Arc::clone(&writer);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(heartbeat_ms));
            let mut w = lock_writer(&writer);
            if write_message(&mut *w, &Message::Heartbeat).is_err() {
                break;
            }
        });
    }

    let stall_pattern = std::env::var(STALL_ENV).ok().filter(|p| !p.is_empty());
    // Base topologies are pure functions of the spec string: build each
    // once and reuse it across this worker's cells.
    let mut topos: HashMap<String, Topology> = HashMap::new();
    let mut executed = 0u64;
    loop {
        let msg = match read_message(&mut reader)? {
            None => return Ok(executed), // coordinator gone
            Some(Ok(msg)) => msg,
            Some(Err(ProtocolError(e))) => {
                // Malformed coordinator line: report and keep serving.
                let mut w = lock_writer(&writer);
                write_message(&mut *w, &Message::Error { message: e })?;
                continue;
            }
        };
        match msg {
            Message::Cell {
                cell,
                spec,
                cell_timeout_ms,
            } => {
                if let Some(pat) = &stall_pattern {
                    if spec.spec.to_string().contains(pat.as_str()) {
                        // Wedge on purpose (test hook): never answer this
                        // lease, keep heartbeating.
                        loop {
                            std::thread::sleep(Duration::from_secs(3600));
                        }
                    }
                }
                let (record, wall_ms) = execute(&mut topos, &spec, cell_timeout_ms);
                executed += 1;
                let mut w = lock_writer(&writer);
                let result = Message::Result {
                    cell,
                    wall_ms,
                    record: Box::new(record),
                };
                write_message(&mut *w, &result)?;
            }
            Message::Shutdown => return Ok(executed),
            // Anything else from the coordinator is unexpected but
            // harmless; ignore and keep the lease loop alive.
            _ => {}
        }
    }
}

fn execute(
    topos: &mut HashMap<String, Topology>,
    spec: &CellSpec,
    cell_timeout_ms: Option<u64>,
) -> (gtd_bench::RunRecord, f64) {
    let topo = topos
        .entry(spec.spec.to_string())
        .or_insert_with(|| spec.spec.build());
    let t0 = Instant::now();
    let record = spec.execute_with_timeout(topo, cell_timeout_ms.map(Duration::from_millis));
    (record, t0.elapsed().as_secs_f64() * 1e3)
}
