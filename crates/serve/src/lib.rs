//! # gtd-serve — the crash-tolerant campaign service
//!
//! A coordinator/worker subsystem that runs
//! [`Campaign`](gtd_bench::Campaign) grids as a long-lived network
//! service: `harness serve` starts a coordinator, `harness work`
//! connects workers (or the coordinator spawns them itself), and
//! `harness grid --via ADDR` becomes a thin client whose JSONL/CSV
//! output is byte-identical to the in-process path for any worker
//! count — including runs where workers crash or stall mid-grid.
//!
//! The pieces:
//!
//! * [`protocol`] — the line-delimited JSON wire format (message
//!   grammar in the module docs), built on `gtd_bench::json` and the
//!   same [`RunRecord`](gtd_bench::RunRecord) serialization the
//!   exports use.
//! * [`coordinator`] — [`serve`]: leases, heartbeats, bounded
//!   re-issue, grid-order streaming, and the persistent cell cache
//!   that lets a restarted service re-serve finished grids with zero
//!   live cells.
//! * [`worker`] — [`run_worker`]: the lease-execute-answer loop,
//!   running cells through the exact code path the in-process runner
//!   uses.
//! * [`client`] — [`run_grid`]: submit a request, collect the stream
//!   back into a [`CampaignReport`](gtd_bench::CampaignReport).
//!
//! Everything here is std-only: the service speaks plain TCP and the
//! crate adds no dependencies beyond the workspace's own.
//!
//! Wire-facing code must not panic on peer input, so the whole crate
//! warns on `unwrap`/`expect`; `gtd-lint` enforces the same rule
//! token-level on the wire-path files.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use client::{connect_with_retry, run_grid, ServeError, ServedGrid};
pub use coordinator::{serve, ServeOptions, ServerHandle};
pub use protocol::{GridRequest, Message, ProtocolError};
pub use worker::{run_worker, run_worker_with_retry};
