//! The campaign-service client: submit a grid request to a coordinator
//! and collect the streamed rows back into a
//! [`CampaignReport`](gtd_bench::CampaignReport) — the same type the
//! in-process runner produces, which is what lets `harness grid --via`
//! reuse every export path unchanged.

use crate::protocol::{read_message, write_message, GridRequest, Message};
use gtd_bench::{CampaignReport, RunRecord};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Why a grid submission failed.
#[derive(Debug)]
pub enum ServeError {
    /// Connection-level failure (refused, reset, timed out connecting).
    Io(std::io::Error),
    /// The coordinator rejected the request or answered out of protocol.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "campaign service unreachable: {e}"),
            ServeError::Protocol(e) => write!(f, "campaign service error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A grid executed by the service, with the delivery metadata the
/// envelope carries beside each row.
#[derive(Debug)]
pub struct ServedGrid {
    /// The grid's records in deterministic grid order — identical, byte
    /// for byte once exported, to an in-process run of the same request.
    pub report: CampaignReport,
    /// Cells the service answered from its cache (no worker ran them).
    pub cached: usize,
    /// Rows that captured a failure.
    pub errors: usize,
    /// Lease re-issues the service performed (crashed, stalled, or
    /// otherwise lost workers).
    pub retries: u64,
    /// Live cells per worker id — the shard balance of this grid.
    pub worker_cells: BTreeMap<u64, u64>,
}

/// Connect to `addr`, retrying until `timeout` — a freshly spawned
/// coordinator may still be binding when its first client arrives.
pub fn connect_with_retry(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Submit `req` to the coordinator at `addr` and block until the grid
/// completes, collecting the streamed rows in grid order.
pub fn run_grid(
    addr: &str,
    req: &GridRequest,
    connect_timeout: Duration,
) -> Result<ServedGrid, ServeError> {
    let stream = connect_with_retry(addr, connect_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    write_message(&mut writer, &Message::Grid(req.clone()))?;

    let mut records: Vec<RunRecord> = Vec::new();
    let mut worker_cells: BTreeMap<u64, u64> = BTreeMap::new();
    loop {
        let msg = match read_message(&mut reader)? {
            None => {
                return Err(ServeError::Protocol(format!(
                    "connection closed after {} row(s), before the grid completed",
                    records.len()
                )));
            }
            Some(Ok(msg)) => msg,
            Some(Err(e)) => return Err(ServeError::Protocol(e.0)),
        };
        match msg {
            Message::Row {
                cell,
                record,
                worker_id,
                ..
            } => {
                // Rows stream in grid order; a gap means the service and
                // client disagree about the grid shape.
                if cell != records.len() {
                    return Err(ServeError::Protocol(format!(
                        "row for cell {cell} arrived out of order (expected {})",
                        records.len()
                    )));
                }
                if let Some(w) = worker_id {
                    *worker_cells.entry(w).or_insert(0) += 1;
                }
                records.push(*record);
            }
            Message::Done {
                cells,
                errors,
                cached,
                retries,
            } => {
                if cells != records.len() {
                    return Err(ServeError::Protocol(format!(
                        "grid done after {} of {cells} row(s)",
                        records.len()
                    )));
                }
                return Ok(ServedGrid {
                    report: CampaignReport { records, cached },
                    cached,
                    errors,
                    retries,
                    worker_cells,
                });
            }
            Message::Error { message } => return Err(ServeError::Protocol(message)),
            other => {
                return Err(ServeError::Protocol(format!(
                    "unexpected message while awaiting rows: {other:?}"
                )));
            }
        }
    }
}
