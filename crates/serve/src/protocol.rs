//! The campaign-service wire protocol: line-delimited JSON over TCP.
//!
//! Every message is one JSON object on one `\n`-terminated line, with a
//! `"type"` member naming the variant. The grammar (fields marked `?`
//! are optional):
//!
//! ```text
//! client     → coordinator   {"type":"grid", "specs":[S..], "mappers":[M..],
//!                             "modes":[..], "policies":[..], "roots":[..],
//!                             "reps":K, "budget":T?, "cell_timeout_ms":T?}
//! coordinator → client       {"type":"row", "cell":I, <RunRecord fields>,
//!                             "worker_id":W?, "wall_ms":X?}     (grid order)
//!                            {"type":"done", "cells":N, "errors":E,
//!                             "cached":C, "retries":R}
//!                            {"type":"error", "message":..}     (then close)
//!
//! worker     → coordinator   {"type":"hello"}
//!                            {"type":"heartbeat"}
//!                            {"type":"result", "cell":I, "wall_ms":X,
//!                             <RunRecord fields>}
//! coordinator → worker       {"type":"welcome", "worker_id":W,
//!                             "heartbeat_ms":H}
//!                            {"type":"cell", "cell":I, "spec":S,
//!                             "mapper":M, "mode":.., "policy":.., "root":R,
//!                             "rep":K, "budget":T?, "cell_timeout_ms":T?}
//!                            {"type":"shutdown"}
//! ```
//!
//! `row` and `result` messages *embed* a grid record: the envelope's
//! `type`/`cell`/`worker_id`/`wall_ms` members sit flat beside the
//! [`RunRecord::to_json`] fields (a record never carries those names, so
//! the flattening is collision-free and [`RunRecord::from_json`] simply
//! ignores the envelope). `worker_id` and `wall_ms` give shard-balance
//! observability; they are not part of a record's payload, so caching
//! ([`RunRecord::cache_key`]) and byte-identity of client exports are
//! unaffected.
//!
//! Malformed input never panics the peer: a line that is not JSON, an
//! object without a known `type`, or a message missing required fields
//! is answered with an `error` message (clients are then disconnected;
//! workers stay connected and keep their lease).

use gtd_bench::json::{num_field, str_field, JsonValue};
use gtd_bench::{CellSpec, RunRecord};
use gtd_core::RemapPolicy;
use gtd_netsim::{DynamicSpec, EngineMode, NodeId};
use std::io::{BufRead, Write};

/// The coordinator's heartbeat interval hint, sent in `welcome`.
pub const HEARTBEAT_MS: u64 = 500;

/// A parsed protocol message (see the module grammar).
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client: run this grid and stream the rows back.
    Grid(GridRequest),
    /// Coordinator → client: one completed cell, in grid order.
    Row {
        /// Grid-order cell index.
        cell: usize,
        /// The cell's record (boxed: records dominate the enum's size).
        record: Box<RunRecord>,
        /// Which worker executed it (`None` for cached rows).
        worker_id: Option<u64>,
        /// Wall-clock execution time on that worker (`None` for cached
        /// rows). Observability only — never part of the record payload.
        wall_ms: Option<f64>,
    },
    /// Coordinator → client: the grid is complete.
    Done {
        /// Total cells in the grid.
        cells: usize,
        /// Cells whose record is a [`gtd_bench::CellError`].
        errors: usize,
        /// Cells served from the coordinator's cache.
        cached: usize,
        /// Lease re-issues performed while executing the grid.
        retries: u64,
    },
    /// Either direction: something was wrong with the peer's input.
    Error {
        /// Human-readable detail.
        message: String,
    },
    /// Worker: I want cells.
    Hello,
    /// Coordinator → worker: registration accepted.
    Welcome {
        /// The id the coordinator will attribute results to.
        worker_id: u64,
        /// How often the worker should heartbeat.
        heartbeat_ms: u64,
    },
    /// Worker: still alive (sent every `heartbeat_ms`, even mid-cell).
    Heartbeat,
    /// Coordinator → worker: execute this cell.
    Cell {
        /// Lease id (unique per (re-)issue, echoed in `result`).
        cell: u64,
        /// What to execute.
        spec: CellSpec,
        /// Wall-clock bound the worker applies via
        /// [`CellSpec::execute_with_timeout`].
        cell_timeout_ms: Option<u64>,
    },
    /// Worker: the leased cell finished.
    Result {
        /// The lease id from the `cell` message.
        cell: u64,
        /// Wall-clock execution time.
        wall_ms: f64,
        /// The record produced.
        record: Box<RunRecord>,
    },
    /// Coordinator → worker: drain and exit.
    Shutdown,
}

/// A grid request: the campaign axes, serialized. Mirrors the
/// [`gtd_bench::Campaign`] builder; [`GridRequest::to_campaign`]
/// reconstructs one so the coordinator plans cells with the exact same
/// validation and grid order as an in-process run.
#[derive(Clone, Debug, PartialEq)]
pub struct GridRequest {
    /// Canonical spec strings (static or dynamic).
    pub specs: Vec<String>,
    /// Mapper names.
    pub mappers: Vec<String>,
    /// Engine modes.
    pub modes: Vec<EngineMode>,
    /// Remap policies.
    pub policies: Vec<RemapPolicy>,
    /// Root processors.
    pub roots: Vec<u32>,
    /// Repetitions per cell.
    pub reps: usize,
    /// Tick budget (`None` = spec-derived default).
    pub budget: Option<u64>,
    /// Per-cell wall-clock timeout applied by the workers.
    pub cell_timeout_ms: Option<u64>,
}

impl GridRequest {
    /// A request with the campaign defaults (sparse mode, lazy policy,
    /// root `n0`, one rep) over the given specs and mappers.
    pub fn new(
        specs: impl IntoIterator<Item = impl Into<String>>,
        mappers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        GridRequest {
            specs: specs.into_iter().map(Into::into).collect(),
            mappers: mappers.into_iter().map(Into::into).collect(),
            modes: vec![EngineMode::Sparse],
            policies: vec![RemapPolicy::Lazy],
            roots: vec![0],
            reps: 1,
            budget: None,
            cell_timeout_ms: None,
        }
    }

    /// Rebuild the equivalent [`gtd_bench::Campaign`] (spec parse errors
    /// surface through [`Campaign::plan`](gtd_bench::Campaign::plan)).
    pub fn to_campaign(&self) -> Result<gtd_bench::Campaign, gtd_bench::CampaignError> {
        let mut c = gtd_bench::Campaign::new()
            .parse_specs(&self.specs)?
            .mappers(self.mappers.iter().cloned())
            .modes(self.modes.iter().copied())
            .policies(self.policies.iter().copied())
            .roots(self.roots.iter().map(|&r| NodeId(r)))
            .reps(self.reps);
        if let Some(b) = self.budget {
            c = c.tick_budget(b);
        }
        if let Some(ms) = self.cell_timeout_ms {
            c = c.cell_timeout(std::time::Duration::from_millis(ms));
        }
        Ok(c)
    }
}

/// A protocol-level decoding failure (the line was JSON, but not a valid
/// message). The peer answers with an `error` message, never a panic.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

fn u64_list(row: &JsonValue, key: &str) -> Result<Vec<u64>, ProtocolError> {
    match row.get(key) {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|v| match v {
                JsonValue::Num(n) if *n >= 0.0 => Ok(*n as u64),
                _ => Err(bad(format!("{key:?} must be an array of numbers"))),
            })
            .collect(),
        _ => Err(bad(format!("missing array {key:?}"))),
    }
}

fn str_list(row: &JsonValue, key: &str) -> Result<Vec<String>, ProtocolError> {
    match row.get(key) {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|v| match v {
                JsonValue::Str(s) => Ok(s.clone()),
                _ => Err(bad(format!("{key:?} must be an array of strings"))),
            })
            .collect(),
        _ => Err(bad(format!("missing array {key:?}"))),
    }
}

fn require_num(row: &JsonValue, key: &str) -> Result<u64, ProtocolError> {
    num_field(row, key).ok_or_else(|| bad(format!("missing numeric field {key:?}")))
}

fn embedded_record(row: &JsonValue) -> Result<Box<RunRecord>, ProtocolError> {
    RunRecord::from_json(row)
        .map(Box::new)
        .ok_or_else(|| bad("message does not embed a valid grid record"))
}

impl Message {
    /// Decode one line (already known to be valid JSON).
    pub fn from_json(row: &JsonValue) -> Result<Message, ProtocolError> {
        let ty = str_field(row, "type").ok_or_else(|| bad("message has no \"type\""))?;
        match ty.as_str() {
            "grid" => {
                let modes = str_list(row, "modes")?
                    .iter()
                    .map(|m| m.parse::<EngineMode>().map_err(bad))
                    .collect::<Result<Vec<_>, _>>()?;
                let policies = str_list(row, "policies")?
                    .iter()
                    .map(|p| p.parse::<RemapPolicy>().map_err(bad))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Message::Grid(GridRequest {
                    specs: str_list(row, "specs")?,
                    mappers: str_list(row, "mappers")?,
                    modes,
                    policies,
                    roots: u64_list(row, "roots")?.iter().map(|&r| r as u32).collect(),
                    reps: require_num(row, "reps")? as usize,
                    budget: num_field(row, "budget"),
                    cell_timeout_ms: num_field(row, "cell_timeout_ms"),
                }))
            }
            "row" => Ok(Message::Row {
                cell: require_num(row, "cell")? as usize,
                record: embedded_record(row)?,
                worker_id: num_field(row, "worker_id"),
                wall_ms: match row.get("wall_ms") {
                    Some(JsonValue::Num(x)) => Some(*x),
                    _ => None,
                },
            }),
            "done" => Ok(Message::Done {
                cells: require_num(row, "cells")? as usize,
                errors: require_num(row, "errors")? as usize,
                cached: require_num(row, "cached")? as usize,
                retries: require_num(row, "retries")?,
            }),
            "error" => Ok(Message::Error {
                message: str_field(row, "message").unwrap_or_default(),
            }),
            "hello" => Ok(Message::Hello),
            "welcome" => Ok(Message::Welcome {
                worker_id: require_num(row, "worker_id")?,
                heartbeat_ms: require_num(row, "heartbeat_ms")?,
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "cell" => {
                let spec: DynamicSpec = str_field(row, "spec")
                    .ok_or_else(|| bad("missing field \"spec\""))?
                    .parse()
                    .map_err(|e| bad(format!("bad spec: {e}")))?;
                let mode: EngineMode = str_field(row, "mode")
                    .ok_or_else(|| bad("missing field \"mode\""))?
                    .parse()
                    .map_err(bad)?;
                let policy: RemapPolicy = str_field(row, "policy")
                    .ok_or_else(|| bad("missing field \"policy\""))?
                    .parse()
                    .map_err(bad)?;
                Ok(Message::Cell {
                    cell: require_num(row, "cell")?,
                    spec: CellSpec {
                        spec,
                        mapper: str_field(row, "mapper")
                            .ok_or_else(|| bad("missing field \"mapper\""))?,
                        mode,
                        policy,
                        root: NodeId(require_num(row, "root")? as u32),
                        rep: require_num(row, "rep")? as usize,
                        budget: num_field(row, "budget"),
                    },
                    cell_timeout_ms: num_field(row, "cell_timeout_ms"),
                })
            }
            "result" => Ok(Message::Result {
                cell: require_num(row, "cell")?,
                wall_ms: match row.get("wall_ms") {
                    Some(JsonValue::Num(x)) => *x,
                    _ => return Err(bad("missing numeric field \"wall_ms\"")),
                },
                record: embedded_record(row)?,
            }),
            "shutdown" => Ok(Message::Shutdown),
            other => Err(bad(format!("unknown message type {other:?}"))),
        }
    }

    /// Encode as one JSON object (render + `\n` = one wire line).
    pub fn to_json(&self) -> JsonValue {
        use gtd_bench::json;
        let with = |row: JsonValue, extra: Vec<(&str, JsonValue)>| {
            // Records render as objects today; if that ever changes, keep
            // the envelope fields so the peer can still classify the line
            // (it will answer the unreadable record with a structured
            // error) instead of panicking mid-connection.
            let mut map = match row {
                JsonValue::Obj(map) => map,
                _ => Default::default(),
            };
            for (k, v) in extra {
                map.insert(k.into(), v);
            }
            JsonValue::Obj(map)
        };
        match self {
            Message::Grid(req) => {
                let strs = |xs: &[String]| {
                    JsonValue::Arr(xs.iter().cloned().map(JsonValue::Str).collect())
                };
                let row = gtd_bench::json!({
                    "type": "grid",
                    "reps": req.reps,
                });
                let mut extra = vec![
                    ("specs", strs(&req.specs)),
                    ("mappers", strs(&req.mappers)),
                    (
                        "modes",
                        JsonValue::Arr(
                            req.modes
                                .iter()
                                .map(|m| JsonValue::Str(m.name().into()))
                                .collect(),
                        ),
                    ),
                    (
                        "policies",
                        JsonValue::Arr(
                            req.policies
                                .iter()
                                .map(|p| JsonValue::Str(p.name().into()))
                                .collect(),
                        ),
                    ),
                    (
                        "roots",
                        JsonValue::Arr(
                            req.roots
                                .iter()
                                .map(|&r| JsonValue::Num(r as f64))
                                .collect(),
                        ),
                    ),
                ];
                if let Some(b) = req.budget {
                    extra.push(("budget", JsonValue::Num(b as f64)));
                }
                if let Some(t) = req.cell_timeout_ms {
                    extra.push(("cell_timeout_ms", JsonValue::Num(t as f64)));
                }
                with(row, extra)
            }
            Message::Row {
                cell,
                record,
                worker_id,
                wall_ms,
            } => {
                let mut extra = vec![
                    ("type", JsonValue::Str("row".into())),
                    ("cell", JsonValue::Num(*cell as f64)),
                ];
                if let Some(w) = worker_id {
                    extra.push(("worker_id", JsonValue::Num(*w as f64)));
                }
                if let Some(x) = wall_ms {
                    extra.push(("wall_ms", JsonValue::Num(*x)));
                }
                with(record.to_json(), extra)
            }
            Message::Done {
                cells,
                errors,
                cached,
                retries,
            } => json!({
                "type": "done",
                "cells": *cells,
                "errors": *errors,
                "cached": *cached,
                "retries": *retries,
            }),
            Message::Error { message } => json!({ "type": "error", "message": message }),
            Message::Hello => json!({ "type": "hello" }),
            Message::Welcome {
                worker_id,
                heartbeat_ms,
            } => json!({
                "type": "welcome",
                "worker_id": *worker_id,
                "heartbeat_ms": *heartbeat_ms,
            }),
            Message::Heartbeat => json!({ "type": "heartbeat" }),
            Message::Cell {
                cell,
                spec,
                cell_timeout_ms,
            } => {
                let row = json!({
                    "type": "cell",
                    "cell": *cell,
                    "spec": spec.spec.to_string(),
                    "mapper": spec.mapper,
                    "mode": spec.mode.name(),
                    "policy": spec.policy.name(),
                    "root": spec.root.0,
                    "rep": spec.rep,
                });
                let mut extra = Vec::new();
                if let Some(b) = spec.budget {
                    extra.push(("budget", JsonValue::Num(b as f64)));
                }
                if let Some(t) = cell_timeout_ms {
                    extra.push(("cell_timeout_ms", JsonValue::Num(*t as f64)));
                }
                with(row, extra)
            }
            Message::Result {
                cell,
                wall_ms,
                record,
            } => with(
                record.to_json(),
                vec![
                    ("type", JsonValue::Str("result".into())),
                    ("cell", JsonValue::Num(*cell as f64)),
                    ("wall_ms", JsonValue::Num(*wall_ms)),
                ],
            ),
            Message::Shutdown => json!({ "type": "shutdown" }),
        }
    }
}

/// Write one message as a wire line and flush it.
pub fn write_message(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut line = msg.to_json().render();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Read one wire line. Distinguishes transport conditions from protocol
/// conditions: `Ok(None)` on clean EOF, `Err(io)` on transport failure,
/// `Ok(Some(Err(..)))` when the line was not a valid message (the caller
/// answers with an `error` message and carries on or disconnects).
pub fn read_message(
    r: &mut impl BufRead,
) -> std::io::Result<Option<Result<Message, ProtocolError>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    if line.trim().is_empty() {
        return Ok(Some(Err(bad("empty line"))));
    }
    Ok(Some(match JsonValue::parse(line.trim_end_matches('\n')) {
        Ok(row) => Message::from_json(&row),
        Err(e) => Err(bad(format!("line is not JSON: {e}"))),
    }))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let line = msg.to_json().render();
        let row = JsonValue::parse(&line).expect("renders as JSON");
        assert_eq!(Message::from_json(&row).expect("parses back"), msg);
    }

    #[test]
    fn control_messages_round_trip() {
        roundtrip(Message::Hello);
        roundtrip(Message::Heartbeat);
        roundtrip(Message::Shutdown);
        roundtrip(Message::Welcome {
            worker_id: 3,
            heartbeat_ms: 500,
        });
        roundtrip(Message::Done {
            cells: 8,
            errors: 1,
            cached: 4,
            retries: 2,
        });
        roundtrip(Message::Error {
            message: "nope".into(),
        });
    }

    #[test]
    fn grid_and_cell_round_trip() {
        let mut req = GridRequest::new(["ring:8", "ring:8+rewire=1@t50"], ["gtd", "flood-echo"]);
        req.modes = vec![EngineMode::Dense, EngineMode::Sparse];
        req.policies = vec![RemapPolicy::Lazy, RemapPolicy::Eager];
        req.roots = vec![0, 3];
        req.reps = 2;
        req.budget = Some(10_000);
        req.cell_timeout_ms = Some(2_000);
        roundtrip(Message::Grid(req.clone()));

        let cells = req.to_campaign().unwrap().plan().unwrap();
        roundtrip(Message::Cell {
            cell: 17,
            spec: cells[5].clone(),
            cell_timeout_ms: Some(2_000),
        });
    }

    /// A live record in its wire-normal form: the export drops fields the
    /// row never carries (phase RCA counts), so protocol round-trips are
    /// exact only after one to_json/from_json pass — exactly what every
    /// record crossing the wire has been through.
    fn wire_record() -> Box<RunRecord> {
        let live = gtd_bench::Campaign::new()
            .parse_specs(["ring:6"])
            .unwrap()
            .mappers(["gtd"])
            .run()
            .unwrap()
            .records
            .remove(0);
        Box::new(RunRecord::from_json(&live.to_json()).expect("records round-trip"))
    }

    #[test]
    fn row_and_result_embed_records() {
        let record = wire_record();
        roundtrip(Message::Row {
            cell: 0,
            record: record.clone(),
            worker_id: Some(2),
            wall_ms: Some(1.5),
        });
        roundtrip(Message::Row {
            cell: 1,
            record: record.clone(),
            worker_id: None,
            wall_ms: None,
        });
        roundtrip(Message::Result {
            cell: 9,
            wall_ms: 0.25,
            record,
        });
    }

    #[test]
    fn envelope_does_not_change_the_record_payload() {
        let record = wire_record();
        let row = Message::Row {
            cell: 0,
            record: record.clone(),
            worker_id: Some(7),
            wall_ms: Some(3.25),
        };
        let parsed = JsonValue::parse(&row.to_json().render()).unwrap();
        // the embedded record parses back identically, envelope ignored
        assert_eq!(RunRecord::from_json(&parsed), Some(*record.clone()));
        // and re-rendering the parsed record reproduces the pure payload
        assert_eq!(
            RunRecord::from_json(&parsed).unwrap().to_json().render(),
            record.to_json().render()
        );
    }

    /// Every decode path that can reject input does so with a
    /// `ProtocolError` naming the problem — never a panic. One case per
    /// missing/invalid field, with the substring the error must carry.
    #[test]
    fn each_malformed_field_names_itself() {
        let cases: &[(&str, &str)] = &[
            (r#"{"cell":1}"#, "no \"type\""),
            (r#"{"type":"warp"}"#, "unknown message type"),
            (r#"{"type":"grid"}"#, "\"modes\""),
            (r#"{"type":"grid","modes":["sparse"]}"#, "\"policies\""),
            (
                r#"{"type":"grid","modes":["sparse"],"policies":["lazy"]}"#,
                "\"specs\"",
            ),
            (r#"{"type":"grid","modes":["hyperspace"]}"#, "hyperspace"),
            (
                r#"{"type":"grid","modes":["sparse"],"policies":["lazy"],"specs":[3]}"#,
                "array of strings",
            ),
            (r#"{"type":"row"}"#, "\"cell\""),
            (r#"{"type":"row","cell":2}"#, "valid grid record"),
            (r#"{"type":"done","cells":4}"#, "\"errors\""),
            (r#"{"type":"welcome"}"#, "\"worker_id\""),
            (r#"{"type":"welcome","worker_id":3}"#, "\"heartbeat_ms\""),
            (r#"{"type":"cell","cell":1}"#, "\"spec\""),
            (
                r#"{"type":"cell","cell":1,"spec":"klein-bottle:9"}"#,
                "bad spec",
            ),
            (r#"{"type":"result","cell":1}"#, "\"wall_ms\""),
            (
                r#"{"type":"result","cell":1,"wall_ms":2.0}"#,
                "valid grid record",
            ),
        ];
        for (line, needle) in cases {
            let row = JsonValue::parse(line).expect("test lines are JSON");
            let err = Message::from_json(&row).expect_err(line);
            assert!(
                err.0.contains(needle),
                "{line}: error {:?} does not mention {needle:?}",
                err.0
            );
        }
    }

    #[test]
    fn malformed_messages_are_structured_errors() {
        let cases = [
            r#"{"no_type":1}"#,
            r#"{"type":"flurb"}"#,
            r#"{"type":"grid","specs":["ring:8"]}"#,
            r#"{"type":"cell","cell":1}"#,
            r#"{"type":"result","cell":1}"#,
            r#"{"type":"welcome"}"#,
        ];
        for line in cases {
            let row = JsonValue::parse(line).expect("test lines are JSON");
            assert!(Message::from_json(&row).is_err(), "{line}");
        }
    }
}
