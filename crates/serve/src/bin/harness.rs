//! The experiment harness — a subcommand CLI over the campaign layer.
//!
//! ```text
//! harness list                         # spec families, mappers, engine modes
//! harness run [e1 … e8] [--scale K] [--json FILE]
//! harness grid --spec S [--spec S …] [--mappers a,b] [--modes x,y]
//!              [--roots 0,1] [--reps K] [--budget T] [--jobs K]
//!              [--cell-timeout MS] [--via ADDR]
//!              [--resume-from OLD.jsonl] [--json FILE] [--csv FILE]
//! harness serve --listen ADDR [--workers N] [--cache FILE]
//!               [--resume-from OLD.jsonl] [--lease-ms MS] [--lease-max-ms MS]
//!               [--max-attempts K]
//! harness work --connect ADDR [--connect-retries K] [--connect-backoff-ms MS]
//! harness bench [--reps K] [--window T] [--modes x,y] [--json FILE]
//! harness compare OLD.jsonl NEW.jsonl [--threshold PCT]
//! ```
//!
//! `run` regenerates the E1–E8 experiment rows (each experiment
//! corresponds to one formal claim of the paper — the paper has no
//! empirical tables/figures; see DESIGN.md §2 for the mapping). E1 and E7
//! are expressed as [`Campaign`] grids; the probe experiments (E3/E4) and
//! the engine ablation drive their machinery directly. `grid` runs an
//! arbitrary declared campaign; `--resume-from` seeds the incremental
//! cell cache from a previous export so only new cells execute, and
//! `--via` submits the same grid to a `harness serve` coordinator instead
//! of running in-process (same flags, byte-identical exports). `serve`
//! runs the crash-tolerant campaign service and `work` a worker for it
//! (see README §"Campaign service"). `bench` writes engine perf records
//! (median ticks/sec per spec × mode) that `compare` can gate against a
//! committed baseline. Bare experiment names (`harness e1 e7`) are
//! accepted as a shorthand for `run`.

use gtd_baselines::{family_size_log2, min_ticks_lower_bound, tree_loop_params};
use gtd_bench::json::{str_field, JsonValue};
use gtd_bench::{core_family_specs, json, json_line, Campaign, RunRecord, Table, Workload};
use gtd_core::{run_single_bca, run_single_rca, GtdSession, RemapPolicy, TranscriptEvent};
use gtd_netsim::{
    algo, generators, mutation, spec, DynamicSpec, EngineMode, NodeId, Port, TopologySpec,
};
use std::io::Write;
use std::process::exit;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("grid") => cmd_grid(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("work") => cmd_work(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("help") | Some("--help") | Some("-h") => usage(0),
        // bare experiment ids / flags: legacy shorthand for `run`
        _ => cmd_run(&args),
    }
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage:\n  \
         harness list\n  \
         harness run [e1 .. e8] [--scale K] [--json FILE]\n  \
         harness grid --spec SPEC [--spec SPEC ...] [--mappers a,b] [--modes x,y]\n               \
         [--policies lazy,eager] [--roots 0,1] [--reps K] [--budget T] [--jobs K]\n               \
         [--cell-timeout MS] [--via ADDR]\n               \
         [--resume-from OLD.jsonl] [--json FILE] [--csv FILE]\n  \
         harness serve --listen ADDR [--workers N] [--cache FILE]\n               \
         [--resume-from OLD.jsonl] [--lease-ms MS] [--lease-max-ms MS] [--max-attempts K]\n  \
         harness work --connect ADDR [--connect-retries K] [--connect-backoff-ms MS]\n  \
         harness bench [--reps K] [--window T] [--modes x,y] [--json FILE]\n  \
         harness compare OLD.jsonl NEW.jsonl [--threshold PCT]\n\n\
         `harness list` prints the spec grammar; e.g. --spec ring:64 --spec debruijn:2,5\n\
         dynamic specs append mutation suffixes: --spec ring:64+node-leave=3@t500\n\
         fault suffixes ride before mutations: --spec ring:64~loss=0.01~delay=1..3\n\
         `grid --resume-from` skips cells already recorded in a previous JSONL export\n\
         `grid --via` submits the grid to a `harness serve` coordinator (same flags,\n\
         byte-identical exports); `serve --workers N` spawns its own worker fleet\n\
         `bench` measures engine throughput (median ticks/sec per spec x mode) and\n\
         writes machine-readable perf records (default BENCH_engine.json)"
    );
    exit(code)
}

fn bail(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    exit(2)
}

fn flag_value(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| bail(&format!("{flag} needs a value")))
}

// ---------------------------------------------------------------------------
// harness list
// ---------------------------------------------------------------------------

fn cmd_list(args: &[String]) {
    if !args.is_empty() {
        bail("`list` takes no arguments");
    }
    println!("topology spec families (family:arg,arg or family:key=value,...):\n");
    let mut t = Table::new(&["family", "parameters", "example", "builds"]);
    for fam in spec::REGISTRY {
        let params: Vec<String> = fam
            .params
            .iter()
            .map(|p| match p.default {
                Some(d) => format!("{}={d}", p.name),
                None => p.name.to_string(),
            })
            .collect();
        t.row(vec![
            fam.name.to_string(),
            params.join(","),
            fam.example.to_string(),
            fam.summary.to_string(),
        ]);
    }
    print!("{}", t.render());

    println!("\nmutation suffixes (append +kind=selector@tTICK to any spec):\n");
    let mut t = Table::new(&["kind", "example", "effect"]);
    for m in mutation::MUTATION_REGISTRY {
        t.row(vec![
            m.name.to_string(),
            m.example.to_string(),
            m.summary.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("e.g. ring:64+node-leave=3@t500  (kinds without a valid candidate fall back to swap;");
    println!("node-join/node-leave change N — the collector's host never leaves)");

    println!("\nfault-plane suffixes (append ~key=value to any spec, before mutations):\n");
    let mut t = Table::new(&["knob", "example", "effect"]);
    for k in spec::FAULT_REGISTRY {
        t.row(vec![
            k.name.to_string(),
            k.example.to_string(),
            k.summary.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("e.g. ring:64~loss=0.01~delay=1..3~fault-seed=7+node-leave=1@t200");
    println!("faulted transcripts are byte-identical across engine modes and shard counts;");
    println!("~loss=0 (or any all-zero plane) is exactly the unfaulted spec");

    println!("\nchecks (gtd-lint rules; run `cargo run -p gtd-check --bin gtd-lint`):\n");
    let mut t = Table::new(&["rule", "enforces"]);
    for rule in gtd_check::LINT_RULES {
        t.row(vec![rule.name.to_string(), rule.summary.to_string()]);
    }
    print!("{}", t.render());

    println!("\ncoordinator invariants (model-checked; `cargo run -p gtd-check -- model`):\n");
    let mut t = Table::new(&["invariant", "guarantees"]);
    for inv in gtd_check::INVARIANTS {
        t.row(vec![inv.name.to_string(), inv.summary.to_string()]);
    }
    print!("{}", t.render());

    println!("\nmappers: {}", gtd_baselines::mapper_names().join(", "));
    let modes: Vec<&str> = EngineMode::ALL.iter().map(|m| m.name()).collect();
    println!("engine modes: {}", modes.join(", "));
    let policies: Vec<&str> = RemapPolicy::ALL.iter().map(|p| p.name()).collect();
    println!("remap policies: {}", policies.join(", "));
    println!(
        "\ncampaign service: `harness serve` runs a coordinator, `harness work` a worker,\n\
         and `harness grid --via ADDR` submits a grid to it (byte-identical exports)."
    );
}

// ---------------------------------------------------------------------------
// harness grid
// ---------------------------------------------------------------------------

fn cmd_grid(args: &[String]) {
    let mut specs: Vec<DynamicSpec> = Vec::new();
    let mut mappers: Option<Vec<String>> = None;
    let mut modes: Option<Vec<EngineMode>> = None;
    let mut policies: Option<Vec<RemapPolicy>> = None;
    let mut roots: Option<Vec<u32>> = None;
    let mut reps: Option<usize> = None;
    let mut jobs: Option<usize> = None;
    let mut budget: Option<u64> = None;
    let mut cell_timeout_ms: Option<u64> = None;
    let mut via: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => {
                let s = flag_value(&mut it, "--spec");
                match s.parse() {
                    Ok(spec) => specs.push(spec),
                    Err(e) => bail(&format!("--spec {s:?}: {e}")),
                }
            }
            "--mappers" => {
                mappers = Some(
                    flag_value(&mut it, "--mappers")
                        .split(',')
                        .map(String::from)
                        .collect(),
                );
            }
            "--modes" => {
                match flag_value(&mut it, "--modes")
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<EngineMode>, String>>()
                {
                    Ok(m) => modes = Some(m),
                    Err(e) => bail(&e),
                }
            }
            "--policies" => {
                match flag_value(&mut it, "--policies")
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<RemapPolicy>, String>>()
                {
                    Ok(p) => policies = Some(p),
                    Err(e) => bail(&e),
                }
            }
            "--roots" => {
                match flag_value(&mut it, "--roots")
                    .split(',')
                    .map(|r| r.trim().parse::<u32>())
                    .collect::<Result<Vec<u32>, _>>()
                {
                    Ok(r) => roots = Some(r),
                    Err(_) => bail("--roots expects comma-separated node numbers"),
                }
            }
            "--reps" => reps = Some(parse_int(&flag_value(&mut it, "--reps"), "--reps")),
            "--jobs" => jobs = Some(parse_int(&flag_value(&mut it, "--jobs"), "--jobs")),
            "--budget" => {
                budget = Some(parse_int(&flag_value(&mut it, "--budget"), "--budget") as u64)
            }
            "--cell-timeout" => {
                cell_timeout_ms =
                    Some(parse_int(&flag_value(&mut it, "--cell-timeout"), "--cell-timeout") as u64)
            }
            "--via" => via = Some(flag_value(&mut it, "--via")),
            "--json" => json_path = Some(flag_value(&mut it, "--json")),
            "--csv" => csv_path = Some(flag_value(&mut it, "--csv")),
            "--resume-from" => resume_path = Some(flag_value(&mut it, "--resume-from")),
            other => bail(&format!("unknown grid flag {other:?} (see `harness help`)")),
        }
    }
    let mappers = mappers.unwrap_or_else(|| {
        gtd_baselines::mapper_names()
            .into_iter()
            .map(String::from)
            .collect()
    });

    let t0 = Instant::now();
    let (report, service) = match via {
        Some(addr) => {
            // The service holds the cell cache; these knobs are local-run
            // concerns and silently ignoring them would mislead.
            if jobs.is_some() {
                bail("--jobs applies to in-process grids; the service shards across its workers");
            }
            if resume_path.is_some() {
                bail(
                    "--resume-from applies to in-process grids; use `harness serve --resume-from`",
                );
            }
            let mut req = gtd_serve::GridRequest::new(
                specs.iter().map(|s| s.to_string()),
                mappers.iter().cloned(),
            );
            if let Some(m) = modes {
                req.modes = m;
            }
            if let Some(p) = policies {
                req.policies = p;
            }
            if let Some(r) = roots {
                req.roots = r;
            }
            if let Some(r) = reps {
                req.reps = r;
            }
            req.budget = budget;
            req.cell_timeout_ms = cell_timeout_ms;
            match gtd_serve::run_grid(&addr, &req, std::time::Duration::from_secs(10)) {
                Ok(served) => (
                    gtd_bench::CampaignReport {
                        records: served.report.records,
                        cached: served.cached,
                    },
                    Some((addr, served.retries, served.worker_cells)),
                ),
                Err(e) => bail(&format!("{e}")),
            }
        }
        None => {
            let mut campaign = Campaign::new().specs(specs).mappers(mappers);
            if let Some(m) = modes {
                campaign = campaign.modes(m);
            }
            if let Some(p) = policies {
                campaign = campaign.policies(p);
            }
            if let Some(r) = roots {
                campaign = campaign.roots(r.into_iter().map(NodeId));
            }
            if let Some(r) = reps {
                campaign = campaign.reps(r);
            }
            if let Some(j) = jobs {
                campaign = campaign.jobs(j);
            }
            if let Some(b) = budget {
                campaign = campaign.tick_budget(b);
            }
            if let Some(ms) = cell_timeout_ms {
                campaign = campaign.cell_timeout(std::time::Duration::from_millis(ms));
            }
            if let Some(path) = resume_path {
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| bail(&format!("{path}: {e}")));
                campaign = campaign
                    .resume_from_jsonl(&text)
                    .unwrap_or_else(|e| bail(&format!("{path}: {e}")));
            }
            match campaign.run() {
                Ok(r) => (r, None),
                Err(e) => bail(&format!("{e}")),
            }
        }
    };
    let wall = t0.elapsed();

    let mut t = Table::new(&[
        "spec",
        "mapper",
        "mode",
        "policy",
        "runs",
        "errors",
        "min",
        "median",
        "max",
        "remap med",
    ]);
    for g in report.aggregate() {
        let fmt = |v: Option<u64>| v.map_or("-".into(), |x| x.to_string());
        t.row(vec![
            g.spec,
            g.mapper,
            g.mode.name().into(),
            g.policy.name().into(),
            g.runs.to_string(),
            g.errors.to_string(),
            fmt(g.min_rounds),
            fmt(g.median_rounds),
            fmt(g.max_rounds),
            fmt(g.median_remap),
        ]);
    }
    print!("{}", t.render());
    println!(
        "{} cells ({} errors, {} cached) in {:.1} ms",
        report.records.len(),
        report.error_count(),
        report.cached,
        wall.as_secs_f64() * 1e3
    );
    if let Some((addr, retries, worker_cells)) = service {
        let shards: Vec<String> = worker_cells
            .iter()
            .map(|(w, c)| format!("w{w}:{c}"))
            .collect();
        println!(
            "via {addr}: {} worker(s) [{}], {retries} lease retrie(s)",
            worker_cells.len(),
            shards.join(" ")
        );
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_jsonl()).unwrap_or_else(|e| bail(&format!("{path}: {e}")));
        println!("wrote {path}");
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, report.to_csv()).unwrap_or_else(|e| bail(&format!("{path}: {e}")));
        println!("wrote {path}");
    }
}

fn parse_int(s: &str, flag: &str) -> usize {
    s.parse()
        .unwrap_or_else(|_| bail(&format!("{flag} expects an integer, got {s:?}")))
}

// ---------------------------------------------------------------------------
// harness serve / harness work (the campaign service)
// ---------------------------------------------------------------------------

/// `harness serve`: run the crash-tolerant campaign coordinator. Blocks
/// until killed; `--workers N` spawns N `harness work` child processes
/// against the bound address (they die with the coordinator since their
/// connection drops).
fn cmd_serve(args: &[String]) {
    let mut opts = gtd_serve::ServeOptions::default();
    let mut workers = 0usize;
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => opts.listen = flag_value(&mut it, "--listen"),
            "--workers" => workers = parse_int(&flag_value(&mut it, "--workers"), "--workers"),
            "--cache" => opts.cache_path = Some(flag_value(&mut it, "--cache").into()),
            "--resume-from" => {
                let path = flag_value(&mut it, "--resume-from");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| bail(&format!("{path}: {e}")));
                let records =
                    gtd_bench::parse_jsonl(&text).unwrap_or_else(|e| bail(&format!("{path}: {e}")));
                opts.seed.extend(records);
            }
            "--lease-ms" => {
                opts.lease_override = Some(std::time::Duration::from_millis(parse_int(
                    &flag_value(&mut it, "--lease-ms"),
                    "--lease-ms",
                )
                    as u64))
            }
            "--lease-max-ms" => {
                opts.lease_max = Some(std::time::Duration::from_millis(parse_int(
                    &flag_value(&mut it, "--lease-max-ms"),
                    "--lease-max-ms",
                ) as u64))
            }
            "--max-attempts" => {
                opts.max_attempts =
                    parse_int(&flag_value(&mut it, "--max-attempts"), "--max-attempts") as u32;
                if opts.max_attempts == 0 {
                    bail("--max-attempts must be at least 1");
                }
            }
            other => bail(&format!(
                "unknown serve flag {other:?} (see `harness help`)"
            )),
        }
    }
    let handle = match gtd_serve::serve(opts) {
        Ok(h) => h,
        Err(e) => bail(&format!("serve: {e}")),
    };
    println!("serving on {}", handle.addr);
    let exe = std::env::current_exe().unwrap_or_else(|e| bail(&format!("current_exe: {e}")));
    for _ in 0..workers {
        // Workers live as long as the service itself: `handle.wait()`
        // below never returns, so there is no point at which to reap
        // them — they exit on their own when the coordinator dies and
        // the connection drops.
        #[allow(clippy::zombie_processes)]
        std::process::Command::new(&exe)
            .args(["work", "--connect", &handle.addr.to_string()])
            .spawn()
            .unwrap_or_else(|e| bail(&format!("spawn worker: {e}")));
    }
    handle.wait();
}

/// `harness work`: run one worker against a coordinator until it goes
/// away or sends `shutdown`. The initial connection retries with capped
/// exponential backoff (deterministic jitter), so a worker may be
/// started *before* its coordinator.
fn cmd_work(args: &[String]) {
    let mut connect: Option<String> = None;
    let mut retries = 5u32;
    let mut backoff_ms = 200u64;
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = Some(flag_value(&mut it, "--connect")),
            "--connect-retries" => {
                retries = parse_int(
                    &flag_value(&mut it, "--connect-retries"),
                    "--connect-retries",
                ) as u32
            }
            "--connect-backoff-ms" => {
                backoff_ms = parse_int(
                    &flag_value(&mut it, "--connect-backoff-ms"),
                    "--connect-backoff-ms",
                ) as u64
            }
            other => bail(&format!("unknown work flag {other:?} (see `harness help`)")),
        }
    }
    let addr = connect.unwrap_or_else(|| bail("work needs --connect ADDR"));
    match gtd_serve::run_worker_with_retry(&addr, retries, backoff_ms) {
        Ok(cells) => println!("worker done: {cells} cell(s) executed"),
        Err(e) => bail(&format!("work: {e}")),
    }
}

// ---------------------------------------------------------------------------
// harness compare
// ---------------------------------------------------------------------------

/// One side's samples for a (spec, mapper, mode) group.
#[derive(Default)]
struct GroupSamples {
    rounds: Vec<u64>,
    remap: Vec<u64>,
    errors: usize,
    /// Informational only — delivery/fault counters are reported in the
    /// comparison table but never flag a group as REGRESSED on their
    /// own: a faulted schedule is *expected* to drop and delay.
    dropped: u64,
    fault_dropped: u64,
    fault_delayed: u64,
    retries: u64,
}

impl GroupSamples {
    /// Compact informational cell: summed delivery/fault counters, or
    /// `-` when the side recorded none (e.g. a pre-fault-schema file).
    fn fault_column(&self) -> String {
        let parts: Vec<String> = [
            ("drop", self.dropped),
            ("lost", self.fault_dropped),
            ("late", self.fault_delayed),
            ("retry", self.retries),
        ]
        .iter()
        .filter(|(_, v)| *v > 0)
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
        if parts.is_empty() {
            "-".into()
        } else {
            parts.join(" ")
        }
    }
}

/// One compare group's identity: (spec, mapper, mode, policy).
type GroupKey = (String, String, String, String);

/// Parse a grid JSONL export body into per-(spec, mapper, mode, policy)
/// samples, via the same record parser the incremental cache uses
/// ([`RunRecord::from_json`]). Rows of other shapes (e.g. `harness run
/// --json` experiment rows) are skipped, so mixed files degrade
/// gracefully; rows predating the policy axis default to `lazy` (its
/// historical value), and rows predating the fault schema simply
/// contribute no fault counters. A row that names a grid group but
/// fails full record parsing (an error kind or field this build does
/// not know) still counts as an error in its group — a foreign failed
/// cell must never vanish from a regression comparison.
fn parse_grid_rows(
    text: &str,
) -> Result<std::collections::BTreeMap<GroupKey, GroupSamples>, String> {
    let mut groups: std::collections::BTreeMap<GroupKey, GroupSamples> =
        std::collections::BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = JsonValue::parse(line).map_err(|e| format!("{}: not JSON: {e}", lineno + 1))?;
        let key = |row: &JsonValue| -> Option<GroupKey> {
            Some((
                str_field(row, "spec")?,
                str_field(row, "mapper")?,
                str_field(row, "mode")?,
                str_field(row, "policy").unwrap_or_else(|| "lazy".into()),
            ))
        };
        match RunRecord::from_json(&row) {
            Some(rec) => {
                let g = groups
                    .entry((
                        rec.spec,
                        rec.mapper,
                        rec.mode.name().to_string(),
                        rec.policy.name().to_string(),
                    ))
                    .or_default();
                match rec.result {
                    Ok(cell) => {
                        g.rounds.push(cell.rounds);
                        if let Some(r) = &cell.remap {
                            g.remap.extend(r.latencies.iter().flatten());
                        }
                        g.dropped += cell.dropped.unwrap_or(0);
                        g.fault_dropped += cell.fault_dropped.unwrap_or(0);
                        g.fault_delayed += cell.fault_delayed.unwrap_or(0);
                        g.retries += u64::from(cell.retries.unwrap_or(0));
                    }
                    Err(_) => g.errors += 1,
                }
            }
            None => {
                if let Some(k) = key(&row) {
                    // a grid row this build cannot fully parse: keep its
                    // failure visible instead of dropping the cell
                    groups.entry(k).or_default().errors += 1;
                }
            }
        }
    }
    Ok(groups)
}

/// [`parse_grid_rows`] over a file, bailing with the path on any error.
fn load_grid_jsonl(path: &str) -> std::collections::BTreeMap<GroupKey, GroupSamples> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| bail(&format!("{path}: {e}")));
    parse_grid_rows(&text).unwrap_or_else(|e| bail(&format!("{path}:{e}")))
}

/// `harness compare old.jsonl new.jsonl`: per-(spec, mapper, mode)
/// round/remap-latency deltas with regression flagging. Purely a report
/// over the byte-stable grid exports — exit code 1 when any group
/// regressed beyond the threshold.
fn cmd_compare(args: &[String]) {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.0f64;
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = flag_value(&mut it, "--threshold");
                threshold = v.parse().unwrap_or_else(|_| {
                    bail(&format!("--threshold expects a percentage, got {v:?}"))
                });
            }
            other if other.starts_with("--") => bail(&format!(
                "unknown compare flag {other:?} (see `harness help`)"
            )),
            path => paths.push(path.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        bail("compare takes exactly two JSONL files (see `harness help`)");
    };
    let mut old = load_grid_jsonl(old_path);
    let mut new = load_grid_jsonl(new_path);
    if old.is_empty() {
        bail(&format!("{old_path}: no grid rows found"));
    }
    if new.is_empty() {
        bail(&format!("{new_path}: no grid rows found"));
    }

    let keys: Vec<GroupKey> = old
        .keys()
        .chain(new.keys())
        .cloned()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut t = Table::new(&[
        "spec",
        "mapper",
        "mode",
        "policy",
        "old",
        "new",
        "delta",
        "delta %",
        "remap old",
        "remap new",
        "faults old",
        "faults new",
        "flag",
    ]);
    let fmt = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
    let mut regressions = 0usize;
    let mut missing = 0usize;
    for key in keys {
        let (o, n) = (old.remove(&key), new.remove(&key));
        let (spec, mapper, mode, policy) = key;
        let row = |t: &mut Table,
                   o_med,
                   n_med,
                   o_remap,
                   n_remap,
                   o_faults: String,
                   n_faults: String,
                   flag: String| {
            let (delta, pct) = match (o_med, n_med) {
                (Some(a), Some(b)) => (
                    format!("{:+}", b as i64 - a as i64),
                    if a > 0 {
                        format!("{:+.1}", (b as f64 - a as f64) / a as f64 * 100.0)
                    } else {
                        "-".into()
                    },
                ),
                _ => ("-".into(), "-".into()),
            };
            t.row(vec![
                spec.clone(),
                mapper.clone(),
                mode.clone(),
                policy.clone(),
                fmt(o_med),
                fmt(n_med),
                delta,
                pct,
                fmt(o_remap),
                fmt(n_remap),
                o_faults,
                n_faults,
                flag,
            ]);
        };
        match (o, n) {
            (Some(mut o), Some(mut n)) => {
                let (o_med, n_med) = (
                    gtd_bench::campaign::lower_median(&mut o.rounds),
                    gtd_bench::campaign::lower_median(&mut n.rounds),
                );
                let (o_remap, n_remap) = (
                    gtd_bench::campaign::lower_median(&mut o.remap),
                    gtd_bench::campaign::lower_median(&mut n.remap),
                );
                let worse = |a: Option<u64>, b: Option<u64>| match (a, b) {
                    (Some(a), Some(b)) => (b as f64) > (a as f64) * (1.0 + threshold / 100.0),
                    _ => false,
                };
                // Fault counters stay informational: a schedule that
                // drops more characters is not by itself a regression.
                let regressed =
                    worse(o_med, n_med) || worse(o_remap, n_remap) || n.errors > o.errors;
                if regressed {
                    regressions += 1;
                }
                row(
                    &mut t,
                    o_med,
                    n_med,
                    o_remap,
                    n_remap,
                    o.fault_column(),
                    n.fault_column(),
                    if regressed {
                        "REGRESSED".into()
                    } else {
                        String::new()
                    },
                );
            }
            (Some(mut o), None) => {
                missing += 1;
                let (o_med, o_remap) = (
                    gtd_bench::campaign::lower_median(&mut o.rounds),
                    gtd_bench::campaign::lower_median(&mut o.remap),
                );
                row(
                    &mut t,
                    o_med,
                    None,
                    o_remap,
                    None,
                    o.fault_column(),
                    "-".into(),
                    "only in old".into(),
                );
            }
            (None, Some(mut n)) => {
                missing += 1;
                let (n_med, n_remap) = (
                    gtd_bench::campaign::lower_median(&mut n.rounds),
                    gtd_bench::campaign::lower_median(&mut n.remap),
                );
                row(
                    &mut t,
                    None,
                    n_med,
                    None,
                    n_remap,
                    "-".into(),
                    n.fault_column(),
                    "only in new".into(),
                );
            }
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    print!("{}", t.render());
    println!(
        "{regressions} regression(s), {missing} group(s) present on one side only \
         (threshold {threshold}%)"
    );
    if regressions > 0 {
        exit(1);
    }
}

// ---------------------------------------------------------------------------
// harness bench (engine throughput records)
// ---------------------------------------------------------------------------

/// One perf measurement: deterministic tick count plus median wall time.
struct BenchMeasure {
    ticks: u64,
    median_secs: f64,
}

/// Run `f` `reps` times and keep the median wall time. `f` times its own
/// measured section (returning `(ticks, seconds)`), so engine
/// construction and warm-up ticks stay outside the recorded window.
fn measure(reps: usize, mut f: impl FnMut() -> (u64, f64)) -> BenchMeasure {
    let mut ticks = 0;
    let mut walls: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let (t, secs) = f();
        ticks = t;
        walls.push(secs);
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    BenchMeasure {
        ticks,
        median_secs: walls[(walls.len() - 1) / 2],
    }
}

/// Time one closure, returning its result and elapsed seconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Peak resident set size of this process in KiB: `VmHWM` from
/// `/proc/self/status`. Returns 0 where the file or field is missing
/// (non-Linux), keeping the JSONL schema stable everywhere. The value is
/// a process-wide high-water mark, so within one bench run it is
/// monotone across regimes — the biggest regime runs last so the smaller
/// rows stay meaningful.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// `harness bench`: the e2/e8 engine workloads as machine-readable perf
/// records — median ticks/sec per spec × mode — written as grid-shaped
/// JSONL rows (default `BENCH_engine.json`) so `harness compare` can gate
/// the deterministic tick counts against a committed baseline while the
/// wall-time fields track the perf trajectory.
///
/// Seven regimes:
/// * full protocol runs (`ring:64`) — session-driven, lull-skipping;
/// * a quiet-heavy stepping window (`ring:1024` mid-GTD) — the regime the
///   event-driven frontier exists for: dense pays O(N) per tick, the
///   frontier O(active);
/// * flood-saturated windows (`random-sc:4096` and `random-sc:16384`
///   during an IG flood) — the regimes the sharded parallel mode exists
///   for, the larger one with real fan-out headroom;
/// * a dynamic timeline with a far-future mutation — exercising the O(1)
///   idle fast-forward;
/// * a chaos run (`ring:8~loss=0.0005~fault-seed=2`) — the resilient
///   session retrying through a lossy wire until a drop-free attempt
///   verifies, pricing the whole retry loop;
/// * a million-node flood window (`random-sc:1000000`, last so the
///   process-wide RSS high-water mark doesn't bleed into smaller rows) —
///   the memory regime the CSR/slab layout exists for.
///
/// Every row carries `peak_rss_kb` (0 off-Linux); `harness compare`
/// ignores it like the wall-time fields — informational, never
/// REGRESSED.
fn cmd_bench(args: &[String]) {
    let mut json_path = String::from("BENCH_engine.json");
    let mut reps = 3usize;
    let mut window = 50_000u64;
    let mut modes: Vec<EngineMode> = EngineMode::ALL.to_vec();
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = flag_value(&mut it, "--json"),
            "--reps" => reps = parse_int(&flag_value(&mut it, "--reps"), "--reps").max(1),
            "--window" => window = parse_int(&flag_value(&mut it, "--window"), "--window") as u64,
            "--modes" => {
                match flag_value(&mut it, "--modes")
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<EngineMode>, String>>()
                {
                    Ok(m) if !m.is_empty() => modes = m,
                    Ok(_) => bail("--modes needs at least one engine mode"),
                    Err(e) => bail(&e),
                }
            }
            other => bail(&format!(
                "unknown bench flag {other:?} (see `harness help`)"
            )),
        }
    }

    let mut t = Table::new(&[
        "workload",
        "driver",
        "mode",
        "ticks",
        "wall ms",
        "Mticks/s",
        "vs dense",
        "peak RSS MB",
    ]);
    let mut rows: Vec<String> = Vec::new();
    let mut bench_workload =
        |spec: &str, driver: &str, run_one: &mut dyn FnMut(EngineMode) -> (u64, f64)| {
            let topo: DynamicSpec = spec
                .parse()
                .unwrap_or_else(|e| bail(&format!("{spec}: {e}")));
            let built = topo.build();
            let mut dense_tps = 0.0f64;
            for &mode in &modes {
                let m = measure(reps, || run_one(mode));
                let tps = m.ticks as f64 / m.median_secs;
                if mode == EngineMode::Dense {
                    dense_tps = tps;
                }
                // With `--modes` excluding dense there is no reference
                // run; the ratio degrades to 1.0 (compare ignores it).
                let speedup = if dense_tps > 0.0 {
                    tps / dense_tps
                } else {
                    1.0
                };
                let rss_kb = peak_rss_kb();
                t.row(vec![
                    spec.to_string(),
                    driver.to_string(),
                    mode.name().into(),
                    m.ticks.to_string(),
                    format!("{:.2}", m.median_secs * 1e3),
                    format!("{:.2}", tps / 1e6),
                    if dense_tps > 0.0 {
                        format!("{speedup:.1}x")
                    } else {
                        "n/a".into()
                    },
                    format!("{:.0}", rss_kb as f64 / 1024.0),
                ]);
                // Grid-shaped so `harness compare` groups and gates the
                // deterministic `rounds`; the "bench" marker keeps
                // `grid --resume-from` from ever mistaking a perf row
                // for a campaign cell ("verified" is schema filler the
                // parser requires — the closures assert correctness
                // themselves where a map exists).
                let row = json!({
                    "bench": "engine",
                    "spec": spec,
                    "mapper": driver,
                    "mode": mode.name(),
                    "policy": "lazy",
                    "root": 0u32,
                    "rep": 0usize,
                    "n": built.num_nodes(),
                    "e": built.num_edges(),
                    "ok": true,
                    "rounds": m.ticks,
                    "verified": true,
                    "wall_ms": m.median_secs * 1e3,
                    "ticks_per_sec": tps,
                    "speedup_vs_dense": speedup,
                    "peak_rss_kb": rss_kb,
                });
                rows.push(row.render());
            }
        };

    // Full protocol runs: lull-skipping session on a small quiet-heavy
    // ring. The timed window is the session run itself (engine build
    // included — it is part of what a mapping costs); the map is
    // verified outside it.
    {
        let topo = TopologySpec::Ring { n: 64 }.build();
        bench_workload("ring:64", "gtd", &mut |mode| {
            let (run, secs) = timed(|| {
                GtdSession::on(&topo)
                    .mode(mode)
                    .capture_transcript(false)
                    .run()
                    .expect("terminates")
            });
            run.map.verify_against(&topo, NodeId(0)).expect("exact map");
            (run.ticks, secs)
        });
    }
    // Quiet-heavy stepping window: raw per-tick engine cost mid-GTD on a
    // big ring — snakes crawl a few wires per tick while 1000+ processors
    // idle. Dense pays O(N) per tick; the frontier pays O(active).
    // Construction stays outside the timed window.
    {
        let topo = TopologySpec::Ring { n: 1024 }.build();
        bench_workload("ring:1024", "engine", &mut |mode| {
            let mut engine = gtd_core::build_gtd_engine(&topo, mode);
            let mut events = Vec::new();
            let ((), secs) = timed(|| {
                for _ in 0..window {
                    engine.tick(&mut events);
                }
            });
            events.clear();
            (window, secs)
        });
    }
    // Flood-saturated windows: every node active every tick (e8b's
    // regime), at two scales — 4096 is the historical baseline, 16384
    // is where parallel fan-out headroom is real. Construction and the
    // 20 saturation ticks stay outside the timed window, which spans
    // ticks 20..60.
    for n in [4096, 16384] {
        let spec = TopologySpec::RandomSc {
            n,
            delta: 3,
            seed: 9,
        };
        let topo = spec.build();
        bench_workload(&spec.to_string(), "engine", &mut |mode| {
            let mut engine = gtd_netsim::Engine::new(&topo, mode, |meta| {
                let start = if meta.id == NodeId(1) {
                    gtd_core::StartBehavior::SingleRca
                } else {
                    gtd_core::StartBehavior::Passive
                };
                gtd_core::ProtocolNode::new(&meta, start)
            });
            let mut events = Vec::new();
            for _ in 0..20 {
                engine.tick(&mut events); // let the IG flood saturate
            }
            // Measure inside the saturated phase only: by ~tick 70 the
            // KILL flood has erased the growing snakes and the network
            // quiesces, which would measure idling, not flooding.
            let steps = 40u64;
            let ((), secs) = timed(|| {
                for _ in 0..steps {
                    engine.tick(&mut events);
                }
            });
            events.clear();
            (steps, secs)
        });
    }
    // Dynamic timeline with a far-future mutation: the engine idles to
    // tick 250k in O(1) via the frontier's lull fast-forward. The timed
    // window is the whole timeline; correctness asserted outside it.
    {
        let spec: DynamicSpec = "ring:64+add-edge=1@t250000"
            .parse()
            .expect("literal spec parses");
        let topo = spec.build();
        bench_workload(&spec.to_string(), "gtd", &mut |mode| {
            let (out, secs) = timed(|| {
                GtdSession::on(&topo)
                    .mode(mode)
                    .capture_transcript(false)
                    .run_dynamic(&spec.schedule)
                    .expect("timeline completes")
            });
            assert!(out.final_verified(), "final map must verify");
            (out.total_ticks, secs)
        });
    }
    // Chaos regime: a lossy ring driven through the resilient session
    // path. The fault hash is stateless, so the retry schedule — two
    // wedged attempts, then a drop-free third that verifies — and the
    // winning attempt's tick count are deterministic across modes and
    // reps (compare-gateable); the wall window prices the whole
    // retry loop, wasted attempts included, which is what a mapping
    // costs on an unreliable network.
    {
        let spec: DynamicSpec = "ring:8~loss=0.0005~fault-seed=2"
            .parse()
            .expect("literal spec parses");
        let topo = spec.build();
        bench_workload(&spec.to_string(), "gtd", &mut |mode| {
            let (res, secs) = timed(|| {
                GtdSession::on(&topo)
                    .mode(mode)
                    .capture_transcript(false)
                    .faults(spec.fault)
                    .max_retries(3)
                    .run_resilient()
                    .expect("well-formed session")
            });
            assert!(res.verified(), "hunted fault seed must verify");
            assert!(
                res.retries() > 0,
                "chaos regime must exercise the retry path"
            );
            (res.ticks, secs)
        });
    }
    // Million-node flood window: the memory regime. A full map is out of
    // budget here; a short saturating window is enough to charge the
    // whole CSR topology + SoA automaton state against peak RSS and to
    // track per-tick cost at scale. Runs last because VmHWM is a
    // process-wide high-water mark.
    {
        let spec = TopologySpec::RandomSc {
            n: 1_000_000,
            delta: 3,
            seed: 9,
        };
        let topo = spec.build();
        bench_workload(&spec.to_string(), "engine", &mut |mode| {
            let mut engine = gtd_netsim::Engine::new(&topo, mode, |meta| {
                let start = if meta.id == NodeId(1) {
                    gtd_core::StartBehavior::SingleRca
                } else {
                    gtd_core::StartBehavior::Passive
                };
                gtd_core::ProtocolNode::new(&meta, start)
            });
            let mut events = Vec::new();
            // ~2 ticks of dwell per hop and log₃(10⁶) ≈ 13 hops: 30
            // warm-up ticks reach the whole graph, so the window (and
            // the RSS high-water mark) measures the saturated state.
            for _ in 0..30 {
                engine.tick(&mut events);
            }
            let steps = 10u64;
            let ((), secs) = timed(|| {
                for _ in 0..steps {
                    engine.tick(&mut events);
                }
            });
            events.clear();
            (steps, secs)
        });
    }

    print!("{}", t.render());
    println!("ticks are deterministic (compare-gateable); wall times are this machine's.");
    let mut file = rows.join("\n");
    file.push('\n');
    std::fs::write(&json_path, file).unwrap_or_else(|e| bail(&format!("{json_path}: {e}")));
    println!("wrote {json_path} ({reps} rep(s), window {window})");
}

// ---------------------------------------------------------------------------
// harness run (the E1–E8 experiments)
// ---------------------------------------------------------------------------

struct Out {
    json: Option<std::fs::File>,
}

impl Out {
    fn section(&mut self, title: &str) {
        println!("\n=== {title} ===");
    }
    fn table(&mut self, t: &Table) {
        print!("{}", t.render());
    }
    fn json(&mut self, line: String) {
        if let Some(f) = &mut self.json {
            writeln!(f, "{line}").expect("write json row");
        }
    }
}

fn cmd_run(args: &[String]) {
    let mut scale = 1usize;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = parse_int(&flag_value(&mut it, "--scale"), "--scale"),
            "--json" => json_path = Some(flag_value(&mut it, "--json")),
            other if other.starts_with("--") => {
                bail(&format!("unknown run flag {other:?} (see `harness help`)"))
            }
            other => {
                let id = other.to_lowercase();
                if !matches!(
                    id.as_str(),
                    "e1" | "e2" | "e3" | "e4" | "e5" | "e6" | "e7" | "e8"
                ) {
                    bail(&format!("unknown experiment {other:?} (e1 .. e8)"));
                }
                wanted.push(id);
            }
        }
    }
    let run_all = wanted.is_empty();
    let want = |k: &str, wanted: &[String]| run_all || wanted.iter().any(|w| w == k);
    let mut out = Out {
        json: json_path.map(|p| std::fs::File::create(p).expect("create json file")),
    };

    if want("e1", &wanted) {
        e1_correctness(&mut out, scale);
    }
    if want("e2", &wanted) {
        e2_scaling(&mut out, scale);
    }
    if want("e3", &wanted) {
        e3_rca(&mut out, scale);
    }
    if want("e4", &wanted) {
        e4_bca(&mut out, scale);
    }
    if want("e5", &wanted) {
        e5_cleanup(&mut out, scale);
    }
    if want("e6", &wanted) {
        e6_lower_bound(&mut out, scale);
    }
    if want("e7", &wanted) {
        e7_baselines(&mut out, scale);
    }
    if want("e8", &wanted) {
        e8_engine(&mut out, scale);
    }
}

/// The E1/E7 workload axis: the core families plus four random digraphs.
fn e1_specs(scale: usize) -> Vec<TopologySpec> {
    let mut specs = core_family_specs(scale);
    for seed in 0..4u64 {
        specs.push(TopologySpec::RandomSc {
            n: 48 * scale,
            delta: 4,
            seed,
        });
    }
    specs
}

/// E1 (Theorem 4.1): exact port-level map on every family × seed,
/// expressed as a one-mapper campaign over the workload axis.
fn e1_correctness(out: &mut Out, scale: usize) {
    out.section("E1 — Theorem 4.1: the root maps the network exactly");
    let specs = e1_specs(scale);
    let report = Campaign::new()
        .specs(specs.clone())
        .mappers(["gtd"])
        .jobs(0)
        .run()
        .expect("E1 grid is well-formed");
    let mut t = Table::new(&["workload", "N", "E", "D", "ticks", "map", "clean (L4.2)"]);
    // one cell per spec (single mapper/mode/root/rep), in spec order
    assert_eq!(report.records.len(), specs.len());
    for (spec, rec) in specs.iter().zip(&report.records) {
        assert_eq!(rec.spec, spec.to_string());
        let cell = rec
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: protocol failed: {e}", rec.spec));
        let d = algo::diameter(&spec.build());
        t.row(vec![
            rec.spec.clone(),
            rec.nodes.to_string(),
            rec.edges.to_string(),
            d.to_string(),
            cell.rounds.to_string(),
            if cell.verified {
                "exact".into()
            } else {
                "WRONG".into()
            },
            match cell.clean {
                Some(true) => "yes".into(),
                _ => "NO".into(),
            },
        ]);
        out.json(json_line(
            "E1",
            json!({
                "workload": rec.spec, "n": rec.nodes, "e": rec.edges,
                "d": d, "ticks": cell.rounds, "exact": cell.verified,
                "clean": cell.clean,
            }),
        ));
    }
    out.table(&t);
}

/// E2 (Lemma 4.4): total ticks scale as O(E·D).
fn e2_scaling(out: &mut Out, scale: usize) {
    out.section("E2 — Lemma 4.4: GTD terminates in O(N·D) (measured against E·D)");
    let mut t = Table::new(&[
        "workload",
        "N",
        "E",
        "D",
        "ticks",
        "ticks/(E*D)",
        "ticks/(N*D)",
    ]);
    let mut specs: Vec<TopologySpec> = Vec::new();
    for k in 1..=3usize {
        specs.push(TopologySpec::Ring { n: 16 * k * scale });
    }
    for k in 1..=3usize {
        specs.push(TopologySpec::RandomSc {
            n: 48 * k * scale,
            delta: 3,
            seed: 5,
        });
    }
    for m in 4..=6usize {
        specs.push(TopologySpec::Debruijn { k: 2, m });
    }
    for w in specs.into_iter().map(Workload::from_spec) {
        let d = algo::diameter(&w.topo) as f64;
        let e = w.topo.num_edges() as f64;
        let n = w.topo.num_nodes() as f64;
        let run = GtdSession::on(&w.topo).run().expect("terminates");
        run.map.verify_against(&w.topo, NodeId(0)).expect("exact");
        t.row(vec![
            w.name(),
            n.to_string(),
            e.to_string(),
            d.to_string(),
            run.ticks.to_string(),
            format!("{:.1}", run.ticks as f64 / (e * d)),
            format!("{:.1}", run.ticks as f64 / (n * d)),
        ]);
        out.json(json_line(
            "E2",
            json!({
                "workload": w.name(), "n": n, "e": e, "d": d, "ticks": run.ticks,
            }),
        ));
    }
    out.table(&t);
    println!("shape check: ticks/(E*D) should stay in a narrow constant band.");

    // E2b — the anatomy of the constant: where do the ~33 ticks per
    // edge-diameter go? Phase shares straight off the session's breakdown.
    let mut t = Table::new(&[
        "workload",
        "RCAs",
        "search %",
        "echo %",
        "mark %",
        "report+cleanup %",
    ]);
    for spec in [
        TopologySpec::Ring {
            n: 24 * scale.min(4),
        },
        TopologySpec::RandomSc {
            n: 48 * scale,
            delta: 3,
            seed: 5,
        },
        TopologySpec::Debruijn { k: 2, m: 5 },
    ] {
        let w = Workload::from_spec(spec);
        let pb = GtdSession::on(&w.topo).run().expect("terminates").phases;
        let tot = pb.total().max(1) as f64;
        t.row(vec![
            w.name(),
            pb.rcas.to_string(),
            format!("{:.0}", pb.search as f64 / tot * 100.0),
            format!("{:.0}", pb.echo as f64 / tot * 100.0),
            format!("{:.0}", pb.mark as f64 / tot * 100.0),
            format!("{:.0}", pb.report_cleanup as f64 / tot * 100.0),
        ]);
        out.json(json_line(
            "E2b",
            json!({
                "workload": w.name(), "rcas": pb.rcas, "search": pb.search,
                "echo": pb.echo, "mark": pb.mark, "cleanup": pb.report_cleanup,
            }),
        ));
    }
    out.table(&t);
    println!("echo = OG+ID round trip; mark = conversions; report+cleanup = OD");
    println!("marking + loop token + KILL + UNMARK circuits (plus the next RCA's");
    println!("IG transit when RCAs are back-to-back; search = remaining idle gaps).");
}

/// E3 (Lemma 4.3): one RCA costs O(D) — linear in the marked-loop length.
fn e3_rca(out: &mut Out, scale: usize) {
    out.section("E3 — Lemma 4.3: a single RCA is linear in d(A,root)+d(root,A)");
    let mut t = Table::new(&["workload", "loop len L", "ticks", "ticks/L"]);
    for k in 1..=6usize {
        let n = 8 * k * scale;
        let topo = generators::ring(n);
        let probe = run_single_rca(&topo, NodeId(n as u32 / 2), EngineMode::Sparse).unwrap();
        let l = (probe.dist_to_root + probe.dist_from_root) as f64;
        t.row(vec![
            format!("ring:{n}, A at n/2"),
            format!("{l}"),
            probe.ticks.to_string(),
            format!("{:.2}", probe.ticks as f64 / l),
        ]);
        out.json(json_line(
            "E3",
            json!({"workload": format!("ring:{n}"), "loop": l, "ticks": probe.ticks}),
        ));
    }
    for k in 1..=6usize {
        let n = 8 * k * scale;
        let topo = generators::line_bidi(n);
        let a = NodeId(n as u32 - 1);
        let probe = run_single_rca(&topo, a, EngineMode::Sparse).unwrap();
        let l = (probe.dist_to_root + probe.dist_from_root) as f64;
        t.row(vec![
            format!("line-bidi:{n}, A at end"),
            format!("{l}"),
            probe.ticks.to_string(),
            format!("{:.2}", probe.ticks as f64 / l),
        ]);
        out.json(json_line(
            "E3",
            json!({"workload": format!("line-bidi:{n}"), "loop": l, "ticks": probe.ticks}),
        ));
    }
    out.table(&t);
    println!("shape check: ticks/L converges to a constant (speed-1 + token circuits).");
}

/// E4 (BCA contract): one BCA costs O(D).
fn e4_bca(out: &mut Out, scale: usize) {
    out.section("E4 — BCA contract: one backwards send is linear in the loop length");
    let mut t = Table::new(&["workload", "loop len", "B done", "delivered", "ticks/loop"]);
    for k in 1..=6usize {
        let n = 8 * k * scale;
        let topo = generators::ring(n);
        // node 1 sends backwards to node 0 through its only in-port: the
        // marked loop is the whole ring.
        let probe = run_single_bca(&topo, NodeId(1), Port(0), EngineMode::Sparse).unwrap();
        t.row(vec![
            format!("ring:{n}, B=n1"),
            probe.loop_len.to_string(),
            probe.ticks_initiator.to_string(),
            probe.ticks_delivered.to_string(),
            format!(
                "{:.2}",
                probe.ticks_delivered as f64 / probe.loop_len as f64
            ),
        ]);
        out.json(json_line(
            "E4",
            json!({
                "workload": format!("ring:{n}"), "loop": probe.loop_len,
                "initiator": probe.ticks_initiator, "delivered": probe.ticks_delivered,
            }),
        ));
    }
    out.table(&t);
    println!("shape check: delivered/loop converges to a constant.");
}

/// E5 (Lemma 4.2): the network is left undisturbed.
fn e5_cleanup(out: &mut Out, scale: usize) {
    out.section("E5 — Lemma 4.2: every RCA/BCA leaves the network undisturbed");
    let mut t = Table::new(&[
        "workload",
        "RCAs",
        "BCAs",
        "kills accepted",
        "max chars/node",
        "pristine at end",
    ]);
    for w in core_family_specs(scale)
        .into_iter()
        .map(Workload::from_spec)
    {
        let mut engine = gtd_core::build_gtd_engine(&w.topo, EngineMode::Sparse);
        let mut events = Vec::new();
        let mut terminated = false;
        for _ in 0..200_000_000u64 {
            events.clear();
            engine.tick(&mut events);
            if events
                .iter()
                .any(|&(_, ev)| ev == TranscriptEvent::Terminated)
            {
                terminated = true;
                break;
            }
        }
        assert!(terminated, "{} wedged", w.name());
        engine.tick(&mut events);
        let rcas: u64 = engine.nodes().iter().map(|n| n.stat_rcas_started).sum();
        let bcas: u64 = engine.nodes().iter().map(|n| n.stat_bcas_started).sum();
        let kills: u64 = engine.nodes().iter().map(|n| n.stat_kills_accepted).sum();
        let maxc: usize = engine
            .nodes()
            .iter()
            .map(|n| n.stat_max_chars)
            .max()
            .unwrap_or(0);
        let pristine = engine.nodes().iter().all(|n| n.snake_state_pristine())
            && engine.signals_in_flight() == 0;
        t.row(vec![
            w.name(),
            rcas.to_string(),
            bcas.to_string(),
            kills.to_string(),
            maxc.to_string(),
            if pristine { "yes".into() } else { "NO".into() },
        ]);
        out.json(json_line(
            "E5",
            json!({
                "workload": w.name(), "rcas": rcas, "bcas": bcas, "kills": kills,
                "max_chars": maxc, "pristine": pristine,
            }),
        ));
    }
    out.table(&t);
    println!("max chars/node bounds the finite-state claim (constant, not O(N)).");
}

/// E6 (Lemmas 5.1, 5.2 + Theorem 5.1): the counting lower bound vs GTD.
fn e6_lower_bound(out: &mut Out, scale: usize) {
    out.section("E6 — Theorem 5.1: Ω(N log N) lower bound vs measured GTD on the tree-loop family");
    let mut t = Table::new(&[
        "h",
        "N",
        "D",
        "log2 G(N)",
        "min ticks (T5.1)",
        "GTD ticks",
        "GTD/bound",
    ]);
    let hmax = 5 + scale.ilog2();
    for h in 2..=16u32 {
        let p = tree_loop_params(h);
        let run_protocol = h <= hmax;
        let (d, ticks) = if run_protocol {
            let topo = TopologySpec::TreeLoop { h, seed: 3 }.build();
            let d = algo::diameter(&topo);
            let run = GtdSession::on(&topo).run().expect("terminates");
            run.map.verify_against(&topo, NodeId(0)).expect("exact");
            (d.to_string(), Some(run.ticks))
        } else {
            // bound-only rows: the counting argument needs no simulation
            (format!("<={}", p.diameter_bound), None)
        };
        let bound = min_ticks_lower_bound(h);
        t.row(vec![
            h.to_string(),
            p.n.to_string(),
            d.clone(),
            format!("{:.0}", family_size_log2(h)),
            format!("{:.1}", bound),
            ticks.map_or("-".into(), |t| t.to_string()),
            ticks.map_or("-".into(), |t| format!("{:.1}", t as f64 / bound.max(1.0))),
        ]);
        out.json(json_line(
            "E6",
            json!({
                "h": h, "n": p.n, "d": d, "log2_g": family_size_log2(h),
                "min_ticks": bound, "gtd_ticks": ticks,
            }),
        ));
        if h >= 12 && !run_protocol {
            break;
        }
    }
    out.table(&t);
    println!("shape check: GTD/bound grows ~ like D (= O(log N) here), i.e. GTD is");
    println!("within an O(D) factor of optimal — the paper's asymptotic-optimality claim.");
}

/// E7: every mapper through the common `TopologyMapper` interface,
/// expressed as a full mappers × families campaign.
fn e7_baselines(out: &mut Out, scale: usize) {
    out.section("E7 — what finite-stateness costs: all mappers through TopologyMapper");
    let mappers = gtd_baselines::mapper_names();
    let report = Campaign::new()
        .specs(core_family_specs(scale))
        .mappers(mappers.clone())
        .jobs(0)
        .run()
        .expect("E7 grid is well-formed");
    // Ratio columns are derived from mapper names so reordering or
    // extending mapper_names() cannot silently mislabel them.
    let idx_of = |name: &str| mappers.iter().position(|m| *m == name);
    let gtd_idx = idx_of("gtd");
    let ratio_pairs: Vec<(String, usize, usize)> = ["routed-dfs", "flood-echo"]
        .iter()
        .filter_map(|base| {
            let (g, b) = (gtd_idx?, idx_of(base)?);
            Some((format!("gtd/{base}"), g, b))
        })
        .collect();
    let mut headers: Vec<String> = vec!["workload".into(), "N".into()];
    for m in &mappers {
        headers.push(format!("{m} rounds"));
    }
    for (label, _, _) in &ratio_pairs {
        headers.push(label.clone());
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    // Grid order is spec-major, mapper-minor: chunk per workload.
    for per_spec in report.records.chunks(mappers.len()) {
        // grid order is spec-major with default single mode/root/rep axes;
        // guard the chunking against a future extra axis on this campaign:
        // each window must hold one spec covering the mapper axis in order
        assert!(
            per_spec.len() == mappers.len()
                && per_spec
                    .iter()
                    .zip(&mappers)
                    .all(|(r, m)| r.spec == per_spec[0].spec && r.mapper == **m),
            "E7 chunking assumes one record per (spec, mapper)"
        );
        let mut rounds = Vec::new();
        for rec in per_spec {
            let cell = rec
                .result
                .as_ref()
                .unwrap_or_else(|e| panic!("{} on {}: {e}", rec.mapper, rec.spec));
            assert!(cell.verified, "{} disagrees on {}", rec.mapper, rec.spec);
            out.json(json_line(
                "E7",
                json!({
                    "workload": rec.spec, "n": rec.nodes, "mapper": rec.mapper,
                    "rounds": cell.rounds, "messages": cell.messages,
                }),
            ));
            rounds.push(cell.rounds);
        }
        let first: &RunRecord = &per_spec[0];
        let mut row = vec![first.spec.clone(), first.nodes.to_string()];
        row.extend(rounds.iter().map(|r| r.to_string()));
        for &(_, g, b) in &ratio_pairs {
            row.push(format!("{:.1}", rounds[g] as f64 / rounds[b] as f64));
        }
        t.row(row);
    }
    out.table(&t);
    println!("expected shape: flood-echo wins by ~N x (unbounded bandwidth), routed-dfs");
    println!("by a constant factor (same O(E*D) walk without snake machinery).");
}

/// E8: engine strategy ablation.
fn e8_engine(out: &mut Out, scale: usize) {
    out.section("E8 — engine ablation: dense vs sparse vs thread-parallel");
    let mut t = Table::new(&["workload", "mode", "ticks", "wall ms", "Mnode-ticks/s"]);
    let n = 64 * scale;
    let topo = generators::random_sc(n, 3, 2);
    for mode in EngineMode::ALL {
        let t0 = Instant::now();
        let run = GtdSession::on(&topo).mode(mode).run().expect("terminates");
        let wall = t0.elapsed();
        run.map.verify_against(&topo, NodeId(0)).expect("exact");
        let node_ticks = run.ticks as f64 * n as f64;
        t.row(vec![
            format!("random-sc:n={n},delta=3,seed=2"),
            mode.name().into(),
            run.ticks.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", node_ticks / wall.as_secs_f64() / 1e6),
        ]);
        out.json(json_line(
            "E8",
            json!({
                "workload": format!("random-sc:{n}"), "mode": mode.name(),
                "ticks": run.ticks, "wall_ms": wall.as_secs_f64() * 1e3,
            }),
        ));
    }
    out.table(&t);
    println!("all modes simulate identical tick sequences; only wall time differs.");
    println!("(a full GTD run is latency-bound: ticks are tiny units of work, so");
    println!("thread dispatch dominates the parallel mode at these sizes)");

    // Saturated-flood throughput: step a large network through the flood
    // phase of one RCA, where every node is active every tick — the regime
    // the parallel engine exists for.
    let mut t = Table::new(&["workload", "mode", "ticks", "wall ms", "Mnode-ticks/s"]);
    let n = 16384 * scale;
    let topo = generators::random_sc(n, 3, 9);
    for mode in EngineMode::ALL {
        let mut engine = gtd_netsim::Engine::new(&topo, mode, |meta| {
            let start = if meta.id == NodeId(1) {
                gtd_core::StartBehavior::SingleRca
            } else {
                gtd_core::StartBehavior::Passive
            };
            gtd_core::ProtocolNode::new(&meta, start)
        });
        let steps = 300u64;
        let t0 = Instant::now();
        let mut events = Vec::new();
        for _ in 0..steps {
            engine.tick(&mut events);
        }
        let wall = t0.elapsed();
        let node_ticks = steps as f64 * n as f64;
        t.row(vec![
            format!("random-sc:{n} flood"),
            mode.name().into(),
            steps.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", node_ticks / wall.as_secs_f64() / 1e6),
        ]);
        out.json(json_line(
            "E8b",
            json!({
                "workload": format!("flood({n})"), "mode": mode.name(),
                "wall_ms": wall.as_secs_f64() * 1e3,
            }),
        ));
    }
    out.table(&t);
    println!("during flood saturation every node is active; the thread fan-out amortizes.");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `compare` must aggregate mixed-schema files: rows predating the
    /// fault schema (no `fault_*`/`retries` members, maybe no `policy`)
    /// land in the right group with empty fault counters, new-schema
    /// rows fold their counters in, `fault-degraded` rows count as
    /// errors, and grid-shaped rows this build cannot parse still count
    /// as errors instead of vanishing.
    #[test]
    fn parse_grid_rows_handles_mixed_schemas() {
        let text = concat!(
            // old schema: no policy member, PR-9 dropped counter only
            r#"{"spec":"ring:8","mapper":"gtd","mode":"dense","root":0,"rep":0,"n":8,"e":16,"ok":true,"rounds":100,"verified":true,"dropped":3}"#,
            "\n",
            // new schema: faulted spec with the full counter set
            r#"{"spec":"ring:8~loss=0.01~fault-seed=8","mapper":"gtd","mode":"dense","policy":"lazy","root":0,"rep":0,"n":8,"e":16,"ok":true,"rounds":120,"verified":true,"fault":"~loss=0.01~fault-seed=8","fault_dropped":2,"fault_delayed":1,"retries":1}"#,
            "\n",
            // new schema: structured degradation is an error in its group
            r#"{"spec":"ring:8~loss=1~fault-seed=1","mapper":"gtd","mode":"dense","policy":"lazy","root":0,"rep":0,"n":8,"e":16,"ok":false,"error_kind":"fault-degraded","error":"degraded to Exhausted after 3 retries"}"#,
            "\n",
            // not a grid row at all: skipped, not an error anywhere
            r#"{"experiment":"E1","claim":"lemma 4.1"}"#,
            "\n",
            // grid-shaped but unparseable here (future error kind):
            // still an error in its group
            r#"{"spec":"ring:8","mapper":"gtd","mode":"dense","ok":false,"error_kind":"from-the-future","error":"?"}"#,
            "\n",
        );
        let groups = parse_grid_rows(text).expect("well-formed JSONL parses");
        assert_eq!(groups.len(), 3, "three distinct (spec, …) groups");

        let plain = &groups[&("ring:8".into(), "gtd".into(), "dense".into(), "lazy".into())];
        assert_eq!(plain.rounds, vec![100]);
        assert_eq!(plain.errors, 1, "unparseable grid row stays visible");
        assert_eq!((plain.dropped, plain.fault_dropped), (3, 0));
        assert_eq!(plain.fault_column(), "drop=3");

        let faulted = &groups[&(
            "ring:8~loss=0.01~fault-seed=8".into(),
            "gtd".into(),
            "dense".into(),
            "lazy".into(),
        )];
        assert_eq!(faulted.rounds, vec![120]);
        assert_eq!(
            (
                faulted.fault_dropped,
                faulted.fault_delayed,
                faulted.retries
            ),
            (2, 1, 1)
        );
        assert_eq!(faulted.fault_column(), "lost=2 late=1 retry=1");

        let degraded = &groups[&(
            "ring:8~loss=1~fault-seed=1".into(),
            "gtd".into(),
            "dense".into(),
            "lazy".into(),
        )];
        assert_eq!((degraded.errors, degraded.rounds.len()), (1, 0));
        assert_eq!(degraded.fault_column(), "-", "no counters recorded");

        assert!(
            parse_grid_rows("not json\n").is_err(),
            "a malformed line is a file-level error, not a silent skip"
        );
    }
}
