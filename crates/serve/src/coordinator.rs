//! The campaign-service coordinator: a long-lived process that accepts
//! grid requests, shards their cells across worker processes, streams
//! completed rows back in deterministic grid order, and survives worker
//! failure.
//!
//! # Architecture
//!
//! All decisions are made by the **pure coordinator brain**
//! ([`gtd_check::brain`]): a `step(&mut State, Event) -> Vec<Effect>`
//! state machine with no clocks, threads, or sockets. This module is
//! the imperative shell around it — one **brain thread** translates the
//! outside world (listener, per-connection readers, a 200 ms ticker)
//! into brain [`events`](gtd_check::brain::Event) and performs the
//! returned [`effects`](gtd_check::brain::Effect) on real TCP streams,
//! the record store, and the JSONL journal.
//!
//! The split is what makes the service *checkable*: `gtd-check model`
//! exhaustively explores the very same transition function under
//! adversarial interleavings (crashes, stalls, duplicates, phantoms,
//! expiry races) and proves the invariant battery — every grid
//! terminates, no double-caching, bounded re-issue, no cache poisoning
//! from revoked leases, monotone grid-order streaming. See the README's
//! "Correctness tooling" section.
//!
//! # Fault model
//!
//! * Every issued cell is a **lease**: worker + deadline. The deadline
//!   is derived from the cell's tick budget (a wedged worker cannot hold
//!   a cell hostage for longer than the work could honestly take).
//! * Workers **heartbeat** even mid-cell; a silent worker is declared
//!   dead and its leases revoked. A worker whose connection drops (crash,
//!   kill) is detected immediately via EOF.
//! * A revoked lease is **re-issued** to a surviving worker, up to
//!   [`ServeOptions::max_attempts`] total attempts; after that the cell
//!   lands as a structured `worker-lost` [`CellError`](gtd_bench::CellError)
//!   — a grid always terminates.
//! * A worker that stalls past its lease is **quarantined** (no new
//!   cells) until it answers or dies; a late/duplicate result for a
//!   revoked or completed lease is ignored by lease id.
//! * Completed cells enter the coordinator's **cache** (and, with
//!   [`ServeOptions::cache_path`], an append-only JSONL journal reloaded
//!   on restart), so a re-submitted grid — or a grid re-served after a
//!   coordinator crash — completes with zero live cells, byte-identical.

use crate::protocol::{
    read_message, write_message, GridRequest, Message, ProtocolError, HEARTBEAT_MS,
};
use gtd_bench::{CacheKey, CellError, CellSpec, RunRecord};
use gtd_check::brain::{self, CellSeed, Effect, LoseReason};
use gtd_core::default_tick_budget;
use gtd_netsim::Topology;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::time::{Duration, Instant};

/// Coordinator configuration (all knobs have service-grade defaults).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port; the bound
    /// address is on the returned [`ServerHandle`]).
    pub listen: String,
    /// Append-only JSONL journal of completed cells. Loaded on startup
    /// when it exists — a restarted coordinator re-serves finished grids
    /// from cache with zero live cells.
    pub cache_path: Option<PathBuf>,
    /// Records to pre-seed the cache with (e.g. a `--resume-from`
    /// export). Non-cacheable records are ignored.
    pub seed: Vec<RunRecord>,
    /// Fixed lease duration overriding the tick-budget derivation —
    /// mainly for tests that need fast expiry.
    pub lease_override: Option<Duration>,
    /// Upper clamp for derived leases, overriding the n-scaled default
    /// (`--lease-max-ms`). Ignored when `lease_override` is set.
    pub lease_max: Option<Duration>,
    /// Total attempts per cell before it fails as `worker-lost` (first
    /// issue + re-issues). At least 1.
    pub max_attempts: u32,
    /// How long a grid may sit with live cells and *no* connected
    /// workers before those cells fail as `worker-lost`.
    pub no_worker_grace: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".into(),
            cache_path: None,
            seed: Vec::new(),
            lease_override: None,
            lease_max: None,
            max_attempts: 3,
            no_worker_grace: Duration::from_secs(15),
        }
    }
}

/// A running coordinator.
pub struct ServerHandle {
    /// The address the service is listening on.
    pub addr: SocketAddr,
    brain: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Block on the brain thread (which never exits — the service runs
    /// until the process dies).
    pub fn wait(self) {
        let _ = self.brain.join();
    }
}

/// Start the coordinator: bind, spawn the listener/ticker/brain threads,
/// return immediately with the bound address.
pub fn serve(opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;
    let (tx, rx) = mpsc::channel::<Event>();

    // Listener: one greeter thread per connection. The greeter reads the
    // first line to learn the peer's role, then keeps reading on the
    // connection's behalf.
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let tx = tx.clone();
                std::thread::spawn(move || greet(stream, tx));
            }
        });
    }

    // Ticker: drives lease expiry and liveness checks.
    {
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(200));
            if tx.send(Event::Tick).is_err() {
                break;
            }
        });
    }

    let mut shell = Shell::new(opts)?;
    let brain = std::thread::spawn(move || {
        while let Ok(event) = rx.recv() {
            shell.handle(event);
        }
    });
    Ok(ServerHandle { addr, brain })
}

/// What the I/O threads report to the brain.
enum Event {
    WorkerJoin { id: u64, writer: TcpStream },
    WorkerMsg { id: u64, msg: Message },
    WorkerBad { id: u64, err: ProtocolError },
    WorkerGone { id: u64 },
    Grid { req: GridRequest, writer: TcpStream },
    Tick,
}

static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

/// Per-connection greeter: classify by first message, then pump events.
fn greet(stream: TcpStream, tx: Sender<Event>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    match read_message(&mut reader) {
        Ok(Some(Ok(Message::Hello))) => {
            let id = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
            let Ok(write_half) = writer.try_clone() else {
                return;
            };
            if tx
                .send(Event::WorkerJoin {
                    id,
                    writer: write_half,
                })
                .is_err()
            {
                return;
            }
            loop {
                match read_message(&mut reader) {
                    Ok(Some(Ok(msg))) => {
                        if tx.send(Event::WorkerMsg { id, msg }).is_err() {
                            return;
                        }
                    }
                    Ok(Some(Err(err))) => {
                        if tx.send(Event::WorkerBad { id, err }).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send(Event::WorkerGone { id });
                        return;
                    }
                }
            }
        }
        Ok(Some(Ok(Message::Grid(req)))) => {
            if tx.send(Event::Grid { req, writer }).is_err() {
                return;
            }
            // The protocol has no further client → coordinator messages:
            // answer anything else with a structured error, stop at EOF.
            loop {
                match read_message(&mut reader) {
                    Ok(Some(Ok(_))) | Ok(Some(Err(_))) => {
                        let msg = Message::Error {
                            message: "unexpected message after grid request".into(),
                        };
                        let Ok(mut w) = reader.get_ref().try_clone() else {
                            return;
                        };
                        if write_message(&mut w, &msg).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => return,
                }
            }
        }
        Ok(Some(Ok(_))) => {
            let _ = write_message(
                &mut writer,
                &Message::Error {
                    message: "first message must be \"hello\" (worker) or \"grid\" (client)".into(),
                },
            );
        }
        Ok(Some(Err(ProtocolError(e)))) => {
            let _ = write_message(&mut writer, &Message::Error { message: e });
        }
        Ok(None) | Err(_) => {}
    }
}

/// A completed row the shell is holding for its slot: the record plus
/// the observability fields the journal and Row messages carry.
struct RowOut {
    record: Box<RunRecord>,
    worker_id: Option<u64>,
    wall_ms: Option<f64>,
}

/// The shell's half of the active grid: everything the brain's slot
/// indices refer to (cells, topologies, the client socket, records).
struct GridShell {
    client: Option<TcpStream>,
    cells: Vec<CellSpec>,
    /// Base topology per spec string (shared by the spec's cells).
    topos: HashMap<String, Topology>,
    cell_timeout_ms: Option<u64>,
    records: Vec<Option<RowOut>>,
}

/// The imperative shell: owns sockets, cache, and journal; delegates
/// every scheduling decision to the pure brain.
struct Shell {
    opts: ServeOptions,
    state: brain::State,
    /// Origin of the brain's logical clock.
    epoch: Instant,
    cache: HashMap<CacheKey, RunRecord>,
    journal: Option<std::fs::File>,
    writers: HashMap<u64, TcpStream>,
    active: Option<GridShell>,
    backlog: VecDeque<(GridRequest, TcpStream)>,
}

impl Shell {
    fn new(opts: ServeOptions) -> std::io::Result<Shell> {
        let mut cache: HashMap<CacheKey, RunRecord> = HashMap::new();
        let mut admit = |records: Vec<RunRecord>| {
            for r in records {
                if r.is_cacheable() {
                    cache.insert(r.cache_key(), r);
                }
            }
        };
        if let Some(path) = &opts.cache_path {
            if let Ok(text) = std::fs::read_to_string(path) {
                admit(
                    gtd_bench::parse_jsonl(&text)
                        .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?,
                );
            }
        }
        admit(opts.seed.clone());
        let journal = match &opts.cache_path {
            Some(path) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => None,
        };
        let state = brain::State::new(
            brain::Options {
                max_attempts: opts.max_attempts,
                silence_ms: HEARTBEAT_MS * 10,
                grace_ms: opts.no_worker_grace.as_millis() as u64,
            },
            brain::Faults::NONE,
        );
        Ok(Shell {
            opts,
            state,
            epoch: Instant::now(),
            cache,
            journal,
            writers: HashMap::new(),
            active: None,
            backlog: VecDeque::new(),
        })
    }

    fn handle(&mut self, event: Event) {
        // Brain events discovered while performing effects (write
        // failures become worker deaths) queue here and are applied
        // before the next I/O event.
        let mut pending: VecDeque<brain::Event> = VecDeque::new();
        match event {
            Event::WorkerJoin { id, writer } => {
                self.writers.insert(id, writer);
                self.apply(brain::Event::WorkerJoin { id }, None, &mut pending);
            }
            Event::WorkerGone { id } => {
                self.writers.remove(&id);
                self.apply(brain::Event::WorkerGone { id }, None, &mut pending);
            }
            Event::WorkerBad { id, err } => {
                // Malformed worker line: answer with a structured error,
                // keep the worker (its lease is still honored).
                if let Some(w) = self.writers.get_mut(&id) {
                    let _ = write_message(w, &Message::Error { message: err.0 });
                }
                self.apply(brain::Event::WorkerSeen { id }, None, &mut pending);
            }
            Event::WorkerMsg { id, msg } => match msg {
                Message::Heartbeat => {
                    self.apply(brain::Event::WorkerSeen { id }, None, &mut pending);
                }
                Message::Result {
                    cell,
                    wall_ms,
                    record,
                } => {
                    let cacheable = record.is_cacheable();
                    self.apply(
                        brain::Event::Result {
                            worker: id,
                            task: cell,
                            cacheable,
                        },
                        Some(RowOut {
                            record,
                            worker_id: Some(id),
                            wall_ms: Some(wall_ms),
                        }),
                        &mut pending,
                    );
                }
                // Anything else from a worker is unexpected: answer
                // with an error, keep serving.
                _ => {
                    if let Some(w) = self.writers.get_mut(&id) {
                        let _ = write_message(
                            w,
                            &Message::Error {
                                message: "unexpected message from worker".into(),
                            },
                        );
                    }
                    self.apply(brain::Event::WorkerSeen { id }, None, &mut pending);
                }
            },
            Event::Grid { req, writer } => {
                self.backlog.push_back((req, writer));
            }
            Event::Tick => {
                let now_ms = self.epoch.elapsed().as_millis() as u64;
                self.apply(brain::Event::Tick { now_ms }, None, &mut pending);
            }
        }
        loop {
            while let Some(ev) = pending.pop_front() {
                if let brain::Event::WorkerGone { id } = &ev {
                    self.writers.remove(id);
                }
                self.apply(ev, None, &mut pending);
            }
            // Start a queued grid once the brain is idle. A fully cached
            // grid completes inside `apply`, so keep going until the
            // brain is busy or the backlog is empty.
            if self.state.grid.is_none() && !self.backlog.is_empty() {
                self.start_next_grid(&mut pending);
                continue;
            }
            break;
        }
    }

    /// Step the brain and perform the returned effects. `payload`
    /// carries the record of a `Result` event for the `Accept` effect.
    fn apply(
        &mut self,
        event: brain::Event,
        mut payload: Option<RowOut>,
        pending: &mut VecDeque<brain::Event>,
    ) {
        for effect in self.state.step(event) {
            match effect {
                Effect::Welcome { worker } => {
                    let ok = self.writers.get_mut(&worker).is_some_and(|w| {
                        write_message(
                            w,
                            &Message::Welcome {
                                worker_id: worker,
                                heartbeat_ms: HEARTBEAT_MS,
                            },
                        )
                        .is_ok()
                    });
                    if !ok {
                        pending.push_back(brain::Event::WorkerGone { id: worker });
                    }
                }
                Effect::Assign {
                    worker, task, slot, ..
                } => {
                    let msg = self.active.as_ref().map(|grid| Message::Cell {
                        cell: task,
                        spec: grid.cells[slot].clone(),
                        cell_timeout_ms: grid.cell_timeout_ms,
                    });
                    let ok = match (self.writers.get_mut(&worker), msg) {
                        (Some(w), Some(msg)) => write_message(w, &msg).is_ok(),
                        _ => false,
                    };
                    if !ok {
                        pending.push_back(brain::Event::WorkerGone { id: worker });
                    }
                }
                Effect::Accept { slot, .. } => {
                    if let (Some(grid), Some(row)) = (&mut self.active, payload.take()) {
                        grid.records[slot] = Some(row);
                    }
                }
                Effect::CacheInsert { slot, .. } => self.cache_insert(slot),
                Effect::DropResult { .. } => {
                    // Late result for a revoked lease, or a duplicate:
                    // ignored. Results are deterministic, so the
                    // accepted copy is identical anyway.
                }
                Effect::Fail {
                    slot,
                    attempts,
                    reason,
                    ..
                } => {
                    if let Some(grid) = &mut self.active {
                        let why = match reason {
                            LoseReason::NoWorkers => reason.why().to_string(),
                            _ => format!("last lease revoked because {}", reason.why()),
                        };
                        let record = lost_record(&grid.cells[slot], &grid.topos, attempts, &why);
                        grid.records[slot] = Some(RowOut {
                            record: Box::new(record),
                            worker_id: None,
                            wall_ms: None,
                        });
                    }
                }
                Effect::GridStart { .. } => {
                    // Cached rows were pre-filled by start_next_grid.
                }
                Effect::Emit { slot, .. } => {
                    if let Some(grid) = &mut self.active {
                        // The model checker proves Emit only follows
                        // Accept/Fail/cache pre-fill; the map below is
                        // how the shell stays panic-free regardless.
                        if let (Some(client), Some(row)) = (&mut grid.client, &grid.records[slot]) {
                            let msg = Message::Row {
                                cell: slot,
                                record: row.record.clone(),
                                worker_id: row.worker_id,
                                wall_ms: row.wall_ms,
                            };
                            if write_message(client, &msg).is_err() {
                                // A client that went away stops receiving
                                // rows; the grid still completes (and
                                // caches).
                                grid.client = None;
                            }
                        }
                    }
                }
                Effect::GridDone {
                    cells,
                    cached,
                    retries,
                    ..
                } => {
                    if let Some(mut grid) = self.active.take() {
                        let errors = grid
                            .records
                            .iter()
                            .filter(|r| r.as_ref().is_some_and(|row| row.record.result.is_err()))
                            .count();
                        if let Some(client) = &mut grid.client {
                            let _ = write_message(
                                client,
                                &Message::Done {
                                    cells,
                                    errors,
                                    cached,
                                    retries,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    /// Journal + cache the accepted record held in `slot`.
    fn cache_insert(&mut self, slot: usize) {
        let Some(grid) = &self.active else { return };
        let Some(row) = &grid.records[slot] else {
            return;
        };
        let record = row.record.as_ref();
        self.cache.insert(record.cache_key(), record.clone());
        if let Some(journal) = &mut self.journal {
            let _ = writeln!(
                journal,
                "{}",
                service_row(record, row.worker_id, row.wall_ms).render()
            );
            let _ = journal.flush();
        }
    }

    /// Pop one queued request, plan it, and submit it to the brain (the
    /// brain is idle, so it starts immediately). Cache hits are decided
    /// here, at grid start.
    fn start_next_grid(&mut self, pending: &mut VecDeque<brain::Event>) {
        let Some((req, mut writer)) = self.backlog.pop_front() else {
            return;
        };
        let cells = match req.to_campaign().and_then(|c| c.plan()) {
            Ok(cells) => cells,
            Err(e) => {
                let _ = write_message(
                    &mut writer,
                    &Message::Error {
                        message: format!("bad grid request: {e}"),
                    },
                );
                return;
            }
        };
        let mut topos: HashMap<String, Topology> = HashMap::new();
        for cell in &cells {
            topos
                .entry(cell.spec.to_string())
                .or_insert_with(|| cell.spec.build());
        }
        let mut records: Vec<Option<RowOut>> = Vec::with_capacity(cells.len());
        let mut seeds: Vec<CellSeed> = Vec::with_capacity(cells.len());
        for cell in &cells {
            let cached = self.cache.get(&cell.key());
            records.push(cached.map(|record| RowOut {
                record: Box::new(record.clone()),
                worker_id: None,
                wall_ms: None,
            }));
            let lease = match self.opts.lease_override {
                Some(d) => d,
                None => lease_for(cell, &topos[&cell.spec.to_string()], self.opts.lease_max),
            };
            seeds.push(CellSeed {
                cached: cached.is_some(),
                lease_ms: lease.as_millis() as u64,
            });
        }
        self.active = Some(GridShell {
            client: Some(writer),
            cells,
            topos,
            cell_timeout_ms: req.cell_timeout_ms,
            records,
        });
        self.apply(brain::Event::Submit { cells: seeds }, None, pending);
    }
}

/// Lease duration for a cell: proportional to the work the cell may
/// honestly do (its tick budget × the number of mapping epochs), assuming
/// a conservative 100k engine-ticks/sec floor, clamped to [2s, cap].
///
/// The cap used to be a flat 120s, which a million-node cell exceeds on
/// any honest worker — every lease expired mid-run and the cell looped
/// to `worker-lost`. The default cap now scales with the cell's size
/// (120s per 100k nodes) so huge-but-heartbeating cells keep their
/// lease; `max` (`--lease-max-ms`) overrides the cap outright.
fn lease_for(cell: &CellSpec, topo: &Topology, max: Option<Duration>) -> Duration {
    let budget = cell.budget.unwrap_or_else(|| default_tick_budget(topo));
    let epochs = 1 + cell.spec.schedule.items().len() as u64;
    let cap = match max {
        Some(d) => (d.as_millis() as u64).max(1),
        None => 120_000u64.saturating_mul(((topo.num_nodes() as u64).div_ceil(100_000)).max(1)),
    };
    Duration::from_millis((budget.saturating_mul(epochs) / 100).clamp(2_000.min(cap), cap))
}

/// The structured record for a cell the service gave up on.
fn lost_record(
    cell: &CellSpec,
    topos: &HashMap<String, Topology>,
    attempts: u32,
    why: &str,
) -> RunRecord {
    let topo = &topos[&cell.spec.to_string()];
    RunRecord {
        spec: cell.spec.to_string(),
        mapper: cell.mapper.clone(),
        mode: cell.mode,
        policy: cell.policy,
        root: cell.root,
        rep: cell.rep,
        nodes: topo.num_nodes(),
        edges: topo.num_edges(),
        budget: cell.budget,
        result: Err(CellError {
            kind: "worker-lost",
            message: format!("cell abandoned after {attempts} lease(s): {why}"),
        }),
    }
}

/// A journal/observability row: the record payload plus `worker_id` and
/// `wall_ms`. [`RunRecord::from_json`] ignores the extra members, so the
/// journal reloads through [`gtd_bench::parse_jsonl`] and the fields
/// never affect [`RunRecord::cache_key`] or `harness compare`.
fn service_row(
    record: &RunRecord,
    worker_id: Option<u64>,
    wall_ms: Option<f64>,
) -> gtd_bench::json::JsonValue {
    use gtd_bench::json::JsonValue;
    let mut row = record.to_json();
    if let JsonValue::Obj(map) = &mut row {
        if let Some(w) = worker_id {
            map.insert("worker_id".into(), JsonValue::Num(w as f64));
        }
        if let Some(x) = wall_ms {
            map.insert("wall_ms".into(), JsonValue::Num(x));
        }
    }
    row
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;
    use gtd_netsim::{DynamicSpec, EngineMode, NodeId};

    fn cell(spec: &str, budget: Option<u64>) -> (CellSpec, Topology) {
        let spec: DynamicSpec = spec.parse().expect("spec parses");
        let topo = spec.build();
        let cell = CellSpec {
            spec,
            mapper: "snake".into(),
            mode: EngineMode::Sparse,
            policy: Default::default(),
            root: NodeId(0),
            rep: 0,
            budget,
        };
        (cell, topo)
    }

    #[test]
    fn lease_cap_scales_with_cell_size() {
        // Small cells keep the historical 120s ceiling.
        let (small, topo) = cell("ring:64", Some(100_000_000));
        assert_eq!(
            lease_for(&small, &topo, None),
            Duration::from_millis(120_000)
        );
        // A huge cell's honest runtime exceeds 120s; the cap scales with
        // n (120s per 100k nodes) instead of revoking mid-run.
        let (big, topo) = cell("ring:200001", Some(100_000_000));
        assert_eq!(lease_for(&big, &topo, None), Duration::from_millis(360_000));
        // --lease-max-ms restores a hard ceiling when asked for.
        assert_eq!(
            lease_for(&big, &topo, Some(Duration::from_millis(120_000))),
            Duration::from_millis(120_000)
        );
        // A cap below the 2s floor wins: the operator asked for it.
        let (tiny, topo) = cell("ring:64", Some(1));
        assert_eq!(
            lease_for(&tiny, &topo, Some(Duration::from_millis(500))),
            Duration::from_millis(500)
        );
    }
}
