//! The campaign-service coordinator: a long-lived process that accepts
//! grid requests, shards their cells across worker processes, streams
//! completed rows back in deterministic grid order, and survives worker
//! failure.
//!
//! # Architecture
//!
//! All decisions are made on one **brain thread** that owns every piece
//! of mutable state (worker registry, cell cache, grid queue, leases).
//! I/O threads — the listener, one reader per connection, a ticker —
//! only translate the outside world into [`Event`]s on a channel, so the
//! scheduling logic is single-threaded and free of lock ordering.
//!
//! # Fault model
//!
//! * Every issued cell is a **lease**: worker + deadline. The deadline
//!   is derived from the cell's tick budget (a wedged worker cannot hold
//!   a cell hostage for longer than the work could honestly take).
//! * Workers **heartbeat** even mid-cell; a silent worker is declared
//!   dead and its leases revoked. A worker whose connection drops (crash,
//!   kill) is detected immediately via EOF.
//! * A revoked lease is **re-issued** to a surviving worker, up to
//!   [`ServeOptions::max_attempts`] total attempts; after that the cell
//!   lands as a structured `worker-lost` [`CellError`](gtd_bench::CellError)
//!   — a grid always terminates.
//! * A worker that stalls past its lease is **quarantined** (no new
//!   cells) until it answers or dies; a late/duplicate result for a
//!   revoked or completed lease is ignored by lease id.
//! * Completed cells enter the coordinator's **cache** (and, with
//!   [`ServeOptions::cache_path`], an append-only JSONL journal reloaded
//!   on restart), so a re-submitted grid — or a grid re-served after a
//!   coordinator crash — completes with zero live cells, byte-identical.

use crate::protocol::{
    read_message, write_message, GridRequest, Message, ProtocolError, HEARTBEAT_MS,
};
use gtd_bench::{CacheKey, CellError, CellSpec, RunRecord};
use gtd_core::default_tick_budget;
use gtd_netsim::Topology;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::time::{Duration, Instant};

/// Coordinator configuration (all knobs have service-grade defaults).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port; the bound
    /// address is on the returned [`ServerHandle`]).
    pub listen: String,
    /// Append-only JSONL journal of completed cells. Loaded on startup
    /// when it exists — a restarted coordinator re-serves finished grids
    /// from cache with zero live cells.
    pub cache_path: Option<PathBuf>,
    /// Records to pre-seed the cache with (e.g. a `--resume-from`
    /// export). Non-cacheable records are ignored.
    pub seed: Vec<RunRecord>,
    /// Fixed lease duration overriding the tick-budget derivation —
    /// mainly for tests that need fast expiry.
    pub lease_override: Option<Duration>,
    /// Total attempts per cell before it fails as `worker-lost` (first
    /// issue + re-issues). At least 1.
    pub max_attempts: u32,
    /// How long a grid may sit with live cells and *no* connected
    /// workers before those cells fail as `worker-lost`.
    pub no_worker_grace: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:0".into(),
            cache_path: None,
            seed: Vec::new(),
            lease_override: None,
            max_attempts: 3,
            no_worker_grace: Duration::from_secs(15),
        }
    }
}

/// A running coordinator.
pub struct ServerHandle {
    /// The address the service is listening on.
    pub addr: SocketAddr,
    brain: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// Block on the brain thread (which never exits — the service runs
    /// until the process dies).
    pub fn wait(self) {
        let _ = self.brain.join();
    }
}

/// Start the coordinator: bind, spawn the listener/ticker/brain threads,
/// return immediately with the bound address.
pub fn serve(opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;
    let (tx, rx) = mpsc::channel::<Event>();

    // Listener: one greeter thread per connection. The greeter reads the
    // first line to learn the peer's role, then keeps reading on the
    // connection's behalf.
    {
        let tx = tx.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let tx = tx.clone();
                std::thread::spawn(move || greet(stream, tx));
            }
        });
    }

    // Ticker: drives lease expiry and liveness checks.
    {
        let tx = tx.clone();
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(200));
            if tx.send(Event::Tick).is_err() {
                break;
            }
        });
    }

    let mut brain = Brain::new(opts)?;
    let brain = std::thread::spawn(move || {
        while let Ok(event) = rx.recv() {
            brain.handle(event);
        }
    });
    Ok(ServerHandle { addr, brain })
}

/// What the I/O threads report to the brain.
enum Event {
    WorkerJoin { id: u64, writer: TcpStream },
    WorkerMsg { id: u64, msg: Message },
    WorkerBad { id: u64, err: ProtocolError },
    WorkerGone { id: u64 },
    Grid { req: GridRequest, writer: TcpStream },
    Tick,
}

static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

/// Per-connection greeter: classify by first message, then pump events.
fn greet(stream: TcpStream, tx: Sender<Event>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    match read_message(&mut reader) {
        Ok(Some(Ok(Message::Hello))) => {
            let id = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
            let Ok(write_half) = writer.try_clone() else {
                return;
            };
            if tx
                .send(Event::WorkerJoin {
                    id,
                    writer: write_half,
                })
                .is_err()
            {
                return;
            }
            loop {
                match read_message(&mut reader) {
                    Ok(Some(Ok(msg))) => {
                        if tx.send(Event::WorkerMsg { id, msg }).is_err() {
                            return;
                        }
                    }
                    Ok(Some(Err(err))) => {
                        if tx.send(Event::WorkerBad { id, err }).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => {
                        let _ = tx.send(Event::WorkerGone { id });
                        return;
                    }
                }
            }
        }
        Ok(Some(Ok(Message::Grid(req)))) => {
            if tx.send(Event::Grid { req, writer }).is_err() {
                return;
            }
            // The protocol has no further client → coordinator messages:
            // answer anything else with a structured error, stop at EOF.
            loop {
                match read_message(&mut reader) {
                    Ok(Some(Ok(_))) | Ok(Some(Err(_))) => {
                        let msg = Message::Error {
                            message: "unexpected message after grid request".into(),
                        };
                        let Ok(mut w) = reader.get_ref().try_clone() else {
                            return;
                        };
                        if write_message(&mut w, &msg).is_err() {
                            return;
                        }
                    }
                    Ok(None) | Err(_) => return,
                }
            }
        }
        Ok(Some(Ok(_))) => {
            let _ = write_message(
                &mut writer,
                &Message::Error {
                    message: "first message must be \"hello\" (worker) or \"grid\" (client)".into(),
                },
            );
        }
        Ok(Some(Err(ProtocolError(e)))) => {
            let _ = write_message(&mut writer, &Message::Error { message: e });
        }
        Ok(None) | Err(_) => {}
    }
}

/// A connected worker, as the brain sees it.
struct Worker {
    writer: TcpStream,
    last_seen: Instant,
    /// Has an outstanding assignment. Stays `true` after a lease is
    /// revoked (quarantine): a stalled worker gets no new cells until it
    /// answers *something* or dies.
    busy: bool,
    cells_done: u64,
}

/// One grid slot's lifecycle.
enum Slot {
    Pending,
    Leased {
        task: u64,
        worker: u64,
        deadline: Instant,
    },
    Done {
        record: Box<RunRecord>,
        worker_id: Option<u64>,
        wall_ms: Option<f64>,
    },
}

/// An accepted grid request being executed.
struct GridRun {
    client: Option<TcpStream>,
    cells: Vec<CellSpec>,
    /// Base topology per spec string (shared by the spec's cells).
    topos: HashMap<String, Topology>,
    cell_timeout_ms: Option<u64>,
    slots: Vec<Slot>,
    attempts: Vec<u32>,
    queue: VecDeque<usize>,
    next_emit: usize,
    cached: usize,
    retries: u64,
}

struct Brain {
    opts: ServeOptions,
    cache: HashMap<CacheKey, RunRecord>,
    journal: Option<std::fs::File>,
    workers: BTreeMap<u64, Worker>,
    active: Option<GridRun>,
    backlog: VecDeque<(GridRequest, TcpStream)>,
    /// Live lease ids of the active grid → slot index. A result whose id
    /// is not here is late or duplicated and is ignored.
    outstanding: HashMap<u64, usize>,
    next_task: u64,
    no_workers_since: Option<Instant>,
}

impl Brain {
    fn new(opts: ServeOptions) -> std::io::Result<Brain> {
        let mut cache: HashMap<CacheKey, RunRecord> = HashMap::new();
        let mut admit = |records: Vec<RunRecord>| {
            for r in records {
                if r.is_cacheable() {
                    cache.insert(r.cache_key(), r);
                }
            }
        };
        if let Some(path) = &opts.cache_path {
            if let Ok(text) = std::fs::read_to_string(path) {
                admit(
                    gtd_bench::parse_jsonl(&text)
                        .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?,
                );
            }
        }
        admit(opts.seed.clone());
        let journal = match &opts.cache_path {
            Some(path) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => None,
        };
        Ok(Brain {
            opts,
            cache,
            journal,
            workers: BTreeMap::new(),
            active: None,
            backlog: VecDeque::new(),
            outstanding: HashMap::new(),
            next_task: 1,
            no_workers_since: None,
        })
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::WorkerJoin { id, mut writer } => {
                let ok = write_message(
                    &mut writer,
                    &Message::Welcome {
                        worker_id: id,
                        heartbeat_ms: HEARTBEAT_MS,
                    },
                )
                .is_ok();
                if ok {
                    self.workers.insert(
                        id,
                        Worker {
                            writer,
                            last_seen: Instant::now(),
                            busy: false,
                            cells_done: 0,
                        },
                    );
                }
            }
            Event::WorkerGone { id } => self.drop_worker(id),
            Event::WorkerBad { id, err } => {
                // Malformed worker line: answer with a structured error,
                // keep the worker (its lease is still honored).
                if let Some(w) = self.workers.get_mut(&id) {
                    w.last_seen = Instant::now();
                    let _ = write_message(&mut w.writer, &Message::Error { message: err.0 });
                }
            }
            Event::WorkerMsg { id, msg } => {
                if let Some(w) = self.workers.get_mut(&id) {
                    w.last_seen = Instant::now();
                }
                match msg {
                    Message::Heartbeat => {}
                    Message::Result {
                        cell,
                        wall_ms,
                        record,
                    } => self.accept_result(id, cell, wall_ms, *record),
                    // Anything else from a worker is unexpected: answer
                    // with an error, keep serving.
                    _ => {
                        if let Some(w) = self.workers.get_mut(&id) {
                            let _ = write_message(
                                &mut w.writer,
                                &Message::Error {
                                    message: "unexpected message from worker".into(),
                                },
                            );
                        }
                    }
                }
            }
            Event::Grid { req, writer } => {
                self.backlog.push_back((req, writer));
            }
            Event::Tick => self.tick(),
        }
        self.advance();
    }

    /// Declare a worker dead: revoke its leases and forget it.
    fn drop_worker(&mut self, id: u64) {
        if self.workers.remove(&id).is_none() {
            return;
        }
        let Some(grid) = &mut self.active else { return };
        let lost: Vec<usize> = grid
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Leased { worker, .. } if *worker == id => Some(i),
                _ => None,
            })
            .collect();
        for slot in lost {
            self.revoke(slot, "its worker died");
        }
    }

    /// Take a lease back from its worker: re-queue the cell or, past the
    /// attempt budget, fail it as `worker-lost`.
    fn revoke(&mut self, slot: usize, why: &str) {
        let Some(grid) = &mut self.active else { return };
        let Slot::Leased { task, .. } = grid.slots[slot] else {
            return;
        };
        self.outstanding.remove(&task);
        grid.retries += 1;
        if grid.attempts[slot] >= self.opts.max_attempts {
            let record = lost_record(
                &grid.cells[slot],
                &grid.topos,
                grid.attempts[slot],
                &format!("last lease revoked because {why}"),
            );
            grid.slots[slot] = Slot::Done {
                record: Box::new(record),
                worker_id: None,
                wall_ms: None,
            };
        } else {
            grid.slots[slot] = Slot::Pending;
            // Re-issue ahead of virgin cells: the client is likely
            // blocked on this row (rows stream in grid order).
            grid.queue.push_front(slot);
        }
    }

    fn accept_result(&mut self, worker_id: u64, task: u64, wall_ms: f64, record: RunRecord) {
        if let Some(w) = self.workers.get_mut(&worker_id) {
            // Any answer lifts the quarantine: the worker is responsive.
            w.busy = false;
            w.cells_done += 1;
        }
        let Some(slot) = self.outstanding.remove(&task) else {
            // Late result for a revoked lease, or a duplicate completion:
            // the lease id no longer exists. Ignore — results are
            // deterministic, so the accepted copy is identical anyway.
            return;
        };
        let Some(grid) = &mut self.active else { return };
        if record.is_cacheable() {
            self.cache.insert(record.cache_key(), record.clone());
            if let Some(journal) = &mut self.journal {
                let _ = writeln!(
                    journal,
                    "{}",
                    service_row(&record, Some(worker_id), Some(wall_ms)).render()
                );
                let _ = journal.flush();
            }
        }
        grid.slots[slot] = Slot::Done {
            record: Box::new(record),
            worker_id: Some(worker_id),
            wall_ms: Some(wall_ms),
        };
    }

    fn tick(&mut self) {
        let now = Instant::now();
        // Heartbeat liveness: a worker silent for many intervals is dead
        // even if its socket never closed (half-open network, SIGSTOP).
        let silent: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, w)| {
                now.duration_since(w.last_seen) > Duration::from_millis(HEARTBEAT_MS * 10)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in silent {
            self.drop_worker(id);
        }
        // Lease expiry: revoke cells whose deadline passed. The holding
        // worker stays quarantined until it answers or dies.
        let expired: Vec<usize> = match &self.active {
            Some(grid) => grid
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Slot::Leased { deadline, .. } if *deadline < now => Some(i),
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        };
        for slot in expired {
            self.revoke(slot, "its lease expired");
        }
        // No-worker failsafe: live cells with nobody to run them fail
        // after a grace period instead of hanging the grid forever.
        let starving = self
            .active
            .as_ref()
            .is_some_and(|g| !g.queue.is_empty() || !self.outstanding.is_empty());
        if starving && self.workers.is_empty() {
            let since = *self.no_workers_since.get_or_insert(now);
            if now.duration_since(since) > self.opts.no_worker_grace {
                if let Some(grid) = &mut self.active {
                    while let Some(slot) = grid.queue.pop_front() {
                        let record = lost_record(
                            &grid.cells[slot],
                            &grid.topos,
                            grid.attempts[slot],
                            "no workers are connected",
                        );
                        grid.slots[slot] = Slot::Done {
                            record: Box::new(record),
                            worker_id: None,
                            wall_ms: None,
                        };
                    }
                }
            }
        } else {
            self.no_workers_since = None;
        }
    }

    /// Make progress: start a grid if idle, assign pending cells to idle
    /// workers, stream completed rows in grid order, finish the grid.
    fn advance(&mut self) {
        if self.active.is_none() {
            if let Some((req, writer)) = self.backlog.pop_front() {
                self.start_grid(req, writer);
            }
        }
        self.pump();
        self.emit();
        if self
            .active
            .as_ref()
            .is_some_and(|g| g.next_emit == g.slots.len())
        {
            self.finish_grid();
            // A queued request can start (and complete, if fully cached)
            // right away.
            if self.active.is_none() && !self.backlog.is_empty() {
                self.advance();
            }
        }
    }

    fn start_grid(&mut self, req: GridRequest, mut writer: TcpStream) {
        let cells = match req.to_campaign().and_then(|c| c.plan()) {
            Ok(cells) => cells,
            Err(e) => {
                let _ = write_message(
                    &mut writer,
                    &Message::Error {
                        message: format!("bad grid request: {e}"),
                    },
                );
                return;
            }
        };
        let mut topos: HashMap<String, Topology> = HashMap::new();
        for cell in &cells {
            topos
                .entry(cell.spec.to_string())
                .or_insert_with(|| cell.spec.build());
        }
        let mut grid = GridRun {
            client: Some(writer),
            slots: Vec::with_capacity(cells.len()),
            attempts: vec![0; cells.len()],
            queue: VecDeque::new(),
            next_emit: 0,
            cached: 0,
            retries: 0,
            cell_timeout_ms: req.cell_timeout_ms,
            topos,
            cells,
        };
        for (i, cell) in grid.cells.iter().enumerate() {
            match self.cache.get(&cell.key()) {
                Some(record) => {
                    grid.cached += 1;
                    grid.slots.push(Slot::Done {
                        record: Box::new(record.clone()),
                        worker_id: None,
                        wall_ms: None,
                    });
                }
                None => {
                    grid.slots.push(Slot::Pending);
                    grid.queue.push_back(i);
                }
            }
        }
        self.active = Some(grid);
    }

    /// Assign queued cells to idle live workers.
    fn pump(&mut self) {
        let Some(grid) = &mut self.active else { return };
        let mut died: Vec<u64> = Vec::new();
        'assign: while let Some(&slot) = grid.queue.front() {
            let Some((&wid, worker)) = self
                .workers
                .iter_mut()
                .find(|(id, w)| !w.busy && !died.contains(id))
            else {
                break 'assign;
            };
            let cell = &grid.cells[slot];
            let topo = &grid.topos[&cell.spec.to_string()];
            let task = self.next_task;
            let msg = Message::Cell {
                cell: task,
                spec: cell.clone(),
                cell_timeout_ms: grid.cell_timeout_ms,
            };
            if write_message(&mut worker.writer, &msg).is_err() {
                died.push(wid);
                continue 'assign;
            }
            self.next_task += 1;
            grid.queue.pop_front();
            grid.attempts[slot] += 1;
            let lease = self
                .opts
                .lease_override
                .unwrap_or_else(|| lease_for(cell, topo));
            grid.slots[slot] = Slot::Leased {
                task,
                worker: wid,
                deadline: Instant::now() + lease,
            };
            worker.busy = true;
            self.outstanding.insert(task, slot);
        }
        for id in died {
            self.drop_worker(id);
        }
    }

    /// Stream the completed prefix of the grid to the client, in grid
    /// order. A client that went away stops receiving rows but the grid
    /// still completes (and caches).
    fn emit(&mut self) {
        let Some(grid) = &mut self.active else { return };
        while let Some(Slot::Done {
            record,
            worker_id,
            wall_ms,
        }) = grid.slots.get(grid.next_emit)
        {
            if let Some(client) = &mut grid.client {
                let msg = Message::Row {
                    cell: grid.next_emit,
                    record: record.clone(),
                    worker_id: *worker_id,
                    wall_ms: *wall_ms,
                };
                if write_message(client, &msg).is_err() {
                    grid.client = None;
                }
            }
            grid.next_emit += 1;
        }
    }

    fn finish_grid(&mut self) {
        let Some(mut grid) = self.active.take() else {
            return;
        };
        let errors = grid
            .slots
            .iter()
            .filter(|s| matches!(s, Slot::Done { record, .. } if record.result.is_err()))
            .count();
        if let Some(client) = &mut grid.client {
            let _ = write_message(
                client,
                &Message::Done {
                    cells: grid.slots.len(),
                    errors,
                    cached: grid.cached,
                    retries: grid.retries,
                },
            );
        }
    }
}

/// Lease duration for a cell: proportional to the work the cell may
/// honestly do (its tick budget × the number of mapping epochs), assuming
/// a conservative 100k engine-ticks/sec floor, clamped to [2s, 120s].
fn lease_for(cell: &CellSpec, topo: &Topology) -> Duration {
    let budget = cell.budget.unwrap_or_else(|| default_tick_budget(topo));
    let epochs = 1 + cell.spec.schedule.items().len() as u64;
    Duration::from_millis((budget.saturating_mul(epochs) / 100).clamp(2_000, 120_000))
}

/// The structured record for a cell the service gave up on.
fn lost_record(
    cell: &CellSpec,
    topos: &HashMap<String, Topology>,
    attempts: u32,
    why: &str,
) -> RunRecord {
    let topo = &topos[&cell.spec.to_string()];
    RunRecord {
        spec: cell.spec.to_string(),
        mapper: cell.mapper.clone(),
        mode: cell.mode,
        policy: cell.policy,
        root: cell.root,
        rep: cell.rep,
        nodes: topo.num_nodes(),
        edges: topo.num_edges(),
        budget: cell.budget,
        result: Err(CellError {
            kind: "worker-lost",
            message: format!("cell abandoned after {attempts} lease(s): {why}"),
        }),
    }
}

/// A journal/observability row: the record payload plus `worker_id` and
/// `wall_ms`. [`RunRecord::from_json`] ignores the extra members, so the
/// journal reloads through [`gtd_bench::parse_jsonl`] and the fields
/// never affect [`RunRecord::cache_key`] or `harness compare`.
fn service_row(
    record: &RunRecord,
    worker_id: Option<u64>,
    wall_ms: Option<f64>,
) -> gtd_bench::json::JsonValue {
    use gtd_bench::json::JsonValue;
    let mut row = record.to_json();
    if let JsonValue::Obj(map) = &mut row {
        if let Some(w) = worker_id {
            map.insert("worker_id".into(), JsonValue::Num(w as f64));
        }
        if let Some(x) = wall_ms {
            map.insert("wall_ms".into(), JsonValue::Num(x));
        }
    }
    row
}
