//! The service's core contract: `grid --via` output is byte-identical to
//! the in-process path for any worker count, and a re-submitted grid is
//! served entirely from cache.

use gtd_serve::{run_grid, serve, GridRequest, ServeOptions};
use std::time::Duration;

const CONNECT: Duration = Duration::from_secs(10);

fn request() -> GridRequest {
    let mut req = GridRequest::new(
        ["ring:12", "ring:12+rewire=1@t100", "debruijn:2,3"],
        ["gtd", "flood-echo"],
    );
    req.reps = 2;
    req
}

fn in_process_jsonl(req: &GridRequest) -> String {
    req.to_campaign().unwrap().jobs(1).run().unwrap().to_jsonl()
}

fn spawn_workers(addr: std::net::SocketAddr, n: usize) {
    for _ in 0..n {
        std::thread::spawn(move || {
            let _ = gtd_serve::run_worker(&addr.to_string());
        });
    }
}

#[test]
fn service_jsonl_is_byte_identical_for_any_worker_count() {
    let expected = in_process_jsonl(&request());
    for workers in [1usize, 2, 8] {
        let handle = serve(ServeOptions::default()).unwrap();
        spawn_workers(handle.addr, workers);
        let served = run_grid(&handle.addr.to_string(), &request(), CONNECT)
            .unwrap_or_else(|e| panic!("{workers} workers: {e}"));
        assert_eq!(
            served.report.to_jsonl(),
            expected,
            "{workers} workers must not change the bytes"
        );
        assert_eq!(served.errors, 0);
        assert_eq!(served.cached, 0);
        let sharded: u64 = served.worker_cells.values().sum();
        assert_eq!(sharded as usize, served.report.records.len());
    }
}

#[test]
fn resubmitted_grid_is_served_from_cache_with_zero_live_cells() {
    let handle = serve(ServeOptions::default()).unwrap();
    spawn_workers(handle.addr, 2);
    let addr = handle.addr.to_string();
    let first = run_grid(&addr, &request(), CONNECT).unwrap();
    assert_eq!(first.cached, 0);
    let second = run_grid(&addr, &request(), CONNECT).unwrap();
    assert_eq!(second.cached, second.report.records.len());
    assert!(
        second.worker_cells.is_empty(),
        "no worker may execute a cached cell: {:?}",
        second.worker_cells
    );
    assert_eq!(second.report.to_jsonl(), first.report.to_jsonl());
    // a superset grid executes only the new cells
    let mut bigger = request();
    bigger.reps = 3;
    let third = run_grid(&addr, &bigger, CONNECT).unwrap();
    assert_eq!(third.cached, first.report.records.len());
}

#[test]
fn cache_journal_restores_a_restarted_coordinator() {
    let dir = std::env::temp_dir().join(format!("gtd-serve-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("cells.jsonl");
    let addr1 = {
        let handle = serve(ServeOptions {
            cache_path: Some(journal.clone()),
            ..ServeOptions::default()
        })
        .unwrap();
        spawn_workers(handle.addr, 2);
        handle.addr.to_string()
    };
    let first = run_grid(&addr1, &request(), CONNECT).unwrap();
    assert_eq!(first.cached, 0);
    // journal rows carry the delivery envelope and still reload as records
    let text = std::fs::read_to_string(&journal).unwrap();
    assert!(text.contains("\"worker_id\":"));
    assert!(text.contains("\"wall_ms\":"));

    // a second coordinator over the same journal — with NO workers at
    // all — re-serves the finished grid entirely from cache
    let handle = serve(ServeOptions {
        cache_path: Some(journal),
        ..ServeOptions::default()
    })
    .unwrap();
    let served = run_grid(&handle.addr.to_string(), &request(), CONNECT).unwrap();
    assert_eq!(served.cached, served.report.records.len());
    assert_eq!(served.report.to_jsonl(), first.report.to_jsonl());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_records_pre_populate_the_cache() {
    let seed = request().to_campaign().unwrap().run().unwrap().records;
    let handle = serve(ServeOptions {
        seed,
        ..ServeOptions::default()
    })
    .unwrap();
    // no workers: every cell must come from the seeded cache
    let served = run_grid(&handle.addr.to_string(), &request(), CONNECT).unwrap();
    assert_eq!(served.cached, served.report.records.len());
    assert_eq!(served.report.to_jsonl(), in_process_jsonl(&request()));
}

#[test]
fn bad_grid_requests_are_rejected_with_an_error() {
    let handle = serve(ServeOptions::default()).unwrap();
    spawn_workers(handle.addr, 1);
    let mut req = request();
    req.mappers = vec!["no-such-mapper".into()];
    let err = run_grid(&handle.addr.to_string(), &req, CONNECT).unwrap_err();
    assert!(
        format!("{err}").contains("no-such-mapper"),
        "error must name the bad mapper: {err}"
    );
    // the coordinator survives the rejection and serves the next client
    let served = run_grid(&handle.addr.to_string(), &request(), CONNECT).unwrap();
    assert_eq!(served.errors, 0);
}
