//! Worker-side connect retry: a worker may be started *before* its
//! coordinator and still join the fleet once the service comes up —
//! the deployment order stops mattering.

use gtd_serve::{run_grid, run_worker_with_retry, serve, GridRequest, ServeOptions};
use std::net::TcpListener;
use std::time::Duration;

const CONNECT: Duration = Duration::from_secs(10);

fn request() -> GridRequest {
    GridRequest::new(["ring:12", "debruijn:2,3"], ["gtd", "flood-echo"])
}

#[test]
fn worker_started_before_the_coordinator_joins_once_it_is_up() {
    // Learn a free port by binding and dropping a listener; the tiny
    // window in which another process could steal it is acceptable in
    // the test container.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
        probe.local_addr().expect("probe addr").port()
    };
    let addr = format!("127.0.0.1:{port}");

    // Start the worker FIRST: nothing is listening yet, so its first
    // connect attempts fail and the retry loop carries it until the
    // coordinator appears. The thread is never joined — the coordinator
    // runs until the process dies, like every other serve test.
    {
        let addr = addr.clone();
        std::thread::spawn(move || run_worker_with_retry(&addr, 12, 20));
    }
    std::thread::sleep(Duration::from_millis(50));

    let handle = serve(ServeOptions {
        listen: addr.clone(),
        ..ServeOptions::default()
    })
    .expect("coordinator binds the probed port");

    let expected = request()
        .to_campaign()
        .expect("request is valid")
        .run()
        .expect("in-process grid runs")
        .to_jsonl();
    let served = run_grid(&handle.addr.to_string(), &request(), CONNECT).expect("grid serves");
    assert_eq!(
        served.report.to_jsonl(),
        expected,
        "a late-joining worker must not change the bytes"
    );
    assert_eq!(served.errors, 0);
    assert!(
        !served.worker_cells.is_empty(),
        "the pre-started worker must have executed cells"
    );
    let executed: u64 = served.worker_cells.values().sum();
    assert_eq!(
        executed as usize,
        served.report.records.len(),
        "every cell came through the late-joining worker"
    );
}

#[test]
fn connect_retries_are_bounded() {
    // Nothing ever listens here: the retry budget must be honoured and
    // the final connect error surfaced, not swallowed.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("bind probe");
        probe.local_addr().expect("probe addr").port()
    };
    let err = run_worker_with_retry(&format!("127.0.0.1:{port}"), 2, 1)
        .expect_err("no coordinator ever appears");
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
}
