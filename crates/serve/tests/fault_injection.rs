//! The fault drill of ISSUE 6: a coordinator with four worker
//! *processes*, one killed mid-grid and one wedged on a specific spec
//! (heartbeats still flowing, so only lease expiry can free its cell).
//! The grid must still complete with JSONL byte-identical to an
//! in-process `--jobs 1` run.

use gtd_serve::{run_grid, serve, GridRequest, ServeOptions};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const CONNECT: Duration = Duration::from_secs(10);

fn request() -> GridRequest {
    let mut req = GridRequest::new(
        ["ring:24", "ring:24+rewire=1@t200", "debruijn:2,4"],
        ["gtd", "flood-echo", "routed-dfs"],
    );
    req.reps = 2;
    req
}

fn spawn_worker(addr: &str, stall_spec: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_harness"));
    cmd.args(["work", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(spec) = stall_spec {
        cmd.env(gtd_serve::worker::STALL_ENV, spec);
    }
    cmd.spawn().expect("spawn harness work")
}

#[test]
fn grid_survives_a_killed_worker_and_a_wedged_worker() {
    let expected = request()
        .to_campaign()
        .unwrap()
        .jobs(1)
        .run()
        .unwrap()
        .to_jsonl();

    // Short leases so the wedged worker's cell frees quickly; enough
    // attempts that transient revocations never exhaust a cell.
    let handle = serve(ServeOptions {
        lease_override: Some(Duration::from_secs(2)),
        max_attempts: 10,
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = handle.addr.to_string();

    // Three healthy workers and one that wedges forever on the first
    // cell it is handed — every spec contains ":" — while still
    // heartbeating: only the lease timeout, not liveness detection, can
    // recover its cell.
    let mut victim = spawn_worker(&addr, None);
    let mut workers = vec![
        spawn_worker(&addr, None),
        spawn_worker(&addr, None),
        spawn_worker(&addr, Some(":")),
    ];

    // Kill one healthy worker mid-grid.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        victim.kill().expect("kill worker");
        victim.wait().expect("reap worker");
    });

    let served = run_grid(&addr, &request(), CONNECT).expect("grid completes despite faults");
    killer.join().unwrap();
    for w in &mut workers {
        w.kill().ok();
        w.wait().ok();
    }

    assert_eq!(
        served.report.to_jsonl(),
        expected,
        "faults must not change a single byte of the export"
    );
    assert_eq!(
        served.errors, 0,
        "every cell must be re-issued and complete"
    );
    assert!(
        served.retries >= 1,
        "the wedged worker's lease must have been revoked at least once"
    );
}

#[test]
fn a_grid_with_no_workers_fails_structurally_instead_of_hanging() {
    let handle = serve(ServeOptions {
        no_worker_grace: Duration::from_millis(500),
        ..ServeOptions::default()
    })
    .unwrap();
    let served = run_grid(
        &handle.addr.to_string(),
        &GridRequest::new(["ring:8"], ["gtd"]),
        CONNECT,
    )
    .expect("the grid terminates even with zero workers");
    assert_eq!(served.report.records.len(), 1);
    let err = served.report.records[0]
        .result
        .as_ref()
        .expect_err("no worker ever ran the cell");
    assert_eq!(err.kind, "worker-lost");
    assert!(!served.report.records[0].is_cacheable());
    assert_eq!(served.errors, 1);
}
