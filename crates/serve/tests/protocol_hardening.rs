//! Malformed-protocol hardening: garbage on the wire must come back as
//! structured `error` messages — never a panic, never a wedged
//! coordinator.

use gtd_serve::{run_grid, serve, GridRequest, ServeOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const CONNECT: Duration = Duration::from_secs(10);

fn send_line(addr: std::net::SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).unwrap();
    reply
}

#[test]
fn malformed_first_lines_get_structured_errors() {
    let handle = serve(ServeOptions::default()).unwrap();
    let cases = [
        // not JSON at all
        "this is not json",
        // truncated JSON (cut mid-object)
        r#"{"type":"grid","specs":["ring:8"#,
        // valid JSON, unknown message type
        r#"{"type":"flurb"}"#,
        // valid JSON, no type member
        r#"{"specs":["ring:8"]}"#,
        // a known type that is not a valid opening message
        r#"{"type":"heartbeat"}"#,
        // a grid missing its required axes
        r#"{"type":"grid","specs":["ring:8"]}"#,
    ];
    for line in cases {
        let reply = send_line(handle.addr, line);
        assert!(
            reply.contains("\"type\":\"error\""),
            "{line:?} must be answered with an error message, got {reply:?}"
        );
    }
    // after all that abuse, an honest client is still served
    std::thread::spawn({
        let addr = handle.addr;
        move || {
            let _ = gtd_serve::run_worker(&addr.to_string());
        }
    });
    let served = run_grid(
        &handle.addr.to_string(),
        &GridRequest::new(["ring:8"], ["gtd"]),
        CONNECT,
    )
    .unwrap();
    assert_eq!(served.errors, 0);
}

#[test]
fn duplicate_and_phantom_results_are_ignored() {
    let handle = serve(ServeOptions::default()).unwrap();
    // A hostile "worker": registers, then reports results for leases it
    // never held — twice — plus a malformed line.
    let mut stream = TcpStream::connect(handle.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(b"{\"type\":\"hello\"}\n").unwrap();
    let mut welcome = String::new();
    reader.read_line(&mut welcome).unwrap();
    assert!(welcome.contains("\"type\":\"welcome\""), "{welcome:?}");

    let phantom = concat!(
        r#"{"type":"result","cell":424242,"wall_ms":1.0,"#,
        r#""spec":"ring:8","mapper":"gtd","mode":"sparse","policy":"lazy","#,
        r#""root":0,"rep":0,"n":8,"e":8,"ok":true,"rounds":10,"#,
        r#""messages":null,"verified":true}"#,
    );
    stream
        .write_all(format!("{phantom}\n{phantom}\n").as_bytes())
        .unwrap();
    // a malformed mid-session line is answered, not fatal
    stream.write_all(b"{\"type\":\"result\"}\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"type\":\"error\""), "{reply:?}");

    // the coordinator is intact: a real worker + client still complete a
    // grid, and the phantom record never leaked into the cache (the
    // ring:8/gtd cell executes live and reports its true rounds, not 10)
    std::thread::spawn({
        let addr = handle.addr;
        move || {
            let _ = gtd_serve::run_worker(&addr.to_string());
        }
    });
    let served = run_grid(
        &handle.addr.to_string(),
        &GridRequest::new(["ring:8"], ["gtd"]),
        CONNECT,
    )
    .unwrap();
    assert_eq!(served.errors, 0);
    assert_eq!(
        served.cached, 0,
        "phantom results must never enter the cache"
    );
    let rounds = served.report.records[0].result.as_ref().unwrap().rounds;
    assert_ne!(rounds, 10, "the cell's result must come from a real run");
}

#[test]
fn a_client_sending_extra_messages_is_answered_not_crashed() {
    let handle = serve(ServeOptions::default()).unwrap();
    std::thread::spawn({
        let addr = handle.addr;
        move || {
            let _ = gtd_serve::run_worker(&addr.to_string());
        }
    });
    // submit a grid, then keep talking out of protocol on the same
    // connection while rows stream back
    let mut stream = TcpStream::connect(handle.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(
            concat!(
                r#"{"type":"grid","specs":["ring:8"],"mappers":["gtd"],"#,
                r#""modes":["sparse"],"policies":["lazy"],"roots":[0],"reps":1}"#,
                "\n",
                r#"{"type":"hello"}"#,
                "\n",
                "garbage\n",
            )
            .as_bytes(),
        )
        .unwrap();
    // error replies (from the connection reader) and row/done (from the
    // grid) are written by different threads, so their relative order is
    // unspecified — read until all expected messages arrived
    let mut errors = 0;
    let mut rows = 0;
    let mut done = false;
    for _ in 0..16 {
        if done && errors >= 2 {
            break;
        }
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        if line.contains("\"type\":\"error\"") {
            errors += 1;
        }
        if line.contains("\"type\":\"row\"") {
            rows += 1;
        }
        if line.contains("\"type\":\"done\"") {
            done = true;
        }
    }
    assert_eq!(errors, 2, "both stray lines answered with errors");
    assert_eq!(rows, 1);
    assert!(done, "the grid still completes for a noisy client");
}
