//! # gtd-baselines
//!
//! Comparison points for the GTD protocol (experiment E7) and the paper's
//! §5 lower-bound machinery (experiment E6).
//!
//! The baselines deliberately *break* the paper's hardest constraint —
//! finite-state processors — while keeping the directed-network model, so
//! the measured gap between them and GTD quantifies exactly what
//! finite-stateness costs:
//!
//! * [`flood_echo`] — every processor has a unique id and unbounded
//!   message capacity; local edge knowledge floods to the root in O(D)
//!   synchronous rounds. This is the fastest conceivable mapper and the
//!   idealized analogue of LAN mappers like Mainwaring et al.'s (§1.2.2).
//! * [`source_routed_dfs`] — unbounded-memory processors run the same DFS
//!   edge walk as GTD, but reports and backwards moves are source-routed
//!   messages instead of snake constructs: O(E·D) rounds with a tiny
//!   constant. The Θ(E·D) *shape* matches GTD; the constant is what snakes,
//!   KILL floods and UNMARK circuits cost.
//!
//! The [`lower_bound`] module implements Lemma 5.1 (the binary-tree+leaf-
//! loop family and its topology count), Lemma 5.2 (the transcript-capacity
//! bound), and Theorem 5.1's resulting minimum running time.

//!
//! The [`mapper`] module runs GTD *and* both baselines through the single
//! [`TopologyMapper`] probe-and-reconstruct interface, addressable by
//! stable name — the unit a campaign grid crosses with topologies, roots
//! and engine modes.

pub mod flood;
pub mod lower_bound;
pub mod mapper;
pub mod routed_dfs;

pub use flood::{flood_echo, FloodOutcome};
pub use lower_bound::{
    canonical_map_key, count_distinct_small, family_size_log2, min_ticks_lower_bound,
    signal_alphabet_log2, transcript_capacity_log2, tree_loop_params, TreeLoopParams,
};
pub use mapper::{
    all_mappers, mapper_by_name, mapper_names, DynamicRun, FloodEchoMapper, GtdMapper,
    MapperConfig, MapperError, MapperRun, RoutedDfsMapper, TopologyMapper,
};
pub use routed_dfs::{source_routed_dfs, RoutedDfsOutcome};
