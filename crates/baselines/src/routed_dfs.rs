//! Baseline B2: unbounded-memory source-routed DFS mapping.
//!
//! Same edge walk as the paper's GTD (§3) — the DFS token crosses every
//! edge forward once and returns backwards once per traversal — but the
//! finite-state restriction is dropped: the token carries the entire
//! accumulated map (unbounded size), so no RCA reporting is needed, and a
//! backwards move is an addressed flood that reaches the waiting processor
//! in d(holder, target) rounds instead of a snake-built BCA.
//!
//! Complexity: E forward rounds + Σ backtrack distances = Θ(E·D̄) rounds.
//! This is the same *shape* as GTD's O(E·D) — what the comparison in
//! experiment E7 isolates is the constant factor that snakes, speed-1
//! dwells, KILL floods and UNMARK circuits cost, and the O(N·D̄) extra a
//! per-move RCA report would add.

use gtd_netsim::{algo, Edge, NodeId, Topology};

/// Result of a source-routed DFS run.
#[derive(Clone, Debug)]
pub struct RoutedDfsOutcome {
    /// Synchronous rounds until the token returned to the root with the map.
    pub rounds: u64,
    /// The edge set accumulated in the token.
    pub edges: Vec<Edge>,
    /// Forward token moves (must equal E).
    pub forward_moves: u64,
    /// Backwards moves (bounces + backtracks), each an addressed flood.
    pub backward_moves: u64,
    /// Message count, charging each backwards flood a full network's worth
    /// of messages (the price of addressed flooding without routing tables).
    pub messages: u64,
}

/// Run the unbounded-memory DFS mapper from `root`.
pub fn source_routed_dfs(topo: &Topology, root: NodeId) -> RoutedDfsOutcome {
    let n = topo.num_nodes();
    let e = topo.num_edges() as u64;
    let mut visited = vec![false; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut cursor = vec![0usize; n];
    let mut edges: Vec<Edge> = Vec::with_capacity(e as usize);
    let mut rounds = 0u64;
    let mut forward_moves = 0u64;
    let mut backward_moves = 0u64;
    let mut messages = 0u64;
    visited[root.idx()] = true;
    let mut cur = root;
    loop {
        let outs: Vec<_> = topo.out_edges(cur).collect();
        if cursor[cur.idx()] < outs.len() {
            let (o, ep) = outs[cursor[cur.idx()]];
            // Forward move: one round, one message.
            rounds += 1;
            forward_moves += 1;
            messages += 1;
            edges.push(Edge {
                src: cur,
                src_port: o,
                dst: ep.node,
                dst_port: ep.port,
            });
            if !visited[ep.node.idx()] {
                visited[ep.node.idx()] = true;
                parent[ep.node.idx()] = Some(cur);
                cur = ep.node;
            } else {
                // Bounce: addressed flood from ep.node back to cur.
                let d = algo::bfs_dist(topo, ep.node)[cur.idx()] as u64;
                rounds += d;
                backward_moves += 1;
                messages += e; // flood upper bound: every wire once
                cursor[cur.idx()] += 1;
            }
        } else if let Some(par) = parent[cur.idx()] {
            // Subtree finished: flood the token back to the parent.
            let d = algo::bfs_dist(topo, cur)[par.idx()] as u64;
            rounds += d;
            backward_moves += 1;
            messages += e;
            cursor[par.idx()] += 1;
            cur = par;
        } else {
            break; // the root has finished every out-port
        }
    }
    edges.sort_unstable();
    RoutedDfsOutcome {
        rounds,
        edges,
        forward_moves,
        backward_moves,
        messages,
    }
}

impl RoutedDfsOutcome {
    /// Does the accumulated edge set match the network exactly?
    pub fn verify_against(&self, topo: &Topology) -> bool {
        self.edges == topo.sorted_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::generators;

    #[test]
    fn maps_ring_exactly() {
        let t = generators::ring(6);
        let out = source_routed_dfs(&t, NodeId(0));
        assert!(out.verify_against(&t));
        assert_eq!(out.forward_moves, 6);
        // every forward traversal is answered by exactly one backward move
        assert_eq!(out.backward_moves, 6);
    }

    #[test]
    fn maps_random_networks() {
        for seed in 0..15 {
            let t = generators::random_sc(50, 3, seed);
            let out = source_routed_dfs(&t, NodeId(0));
            assert!(out.verify_against(&t), "seed {seed}");
            assert_eq!(out.forward_moves as usize, t.num_edges());
            assert_eq!(out.backward_moves as usize, t.num_edges());
        }
    }

    #[test]
    fn rounds_bounded_by_e_times_d() {
        for seed in 0..5 {
            let t = generators::random_sc(40, 3, seed);
            let d = algo::diameter(&t) as u64;
            let e = t.num_edges() as u64;
            let out = source_routed_dfs(&t, NodeId(0));
            assert!(
                out.rounds <= e * (d + 1),
                "rounds {} > E(D+1) {}",
                out.rounds,
                e * (d + 1)
            );
            assert!(out.rounds >= e, "at least one round per edge");
        }
    }

    #[test]
    fn maps_parallel_edges_and_two_cycles() {
        let mut b = gtd_netsim::TopologyBuilder::new(3, 3);
        for (u, v) in [(0u32, 1u32), (0, 1), (1, 0), (1, 2), (2, 0), (0, 2)] {
            b.connect_auto(NodeId(u), NodeId(v)).unwrap();
        }
        let t = b.build().unwrap();
        let out = source_routed_dfs(&t, NodeId(0));
        assert!(out.verify_against(&t));
    }
}
