//! Baseline B1: unbounded-message flood-echo mapping.
//!
//! Model relaxations vs the paper: processors have unique identifiers and
//! unbounded local memory, and a wire carries an arbitrarily large message
//! per round. Everything else is kept: links are unidirectional, topology
//! unknown, one synchronous round per global tick.
//!
//! Round 0: every processor announces `(my id, my out-port number)` on each
//! out-wire, so each receiver learns the full identity of every in-edge —
//! the only fact a directed network cannot know locally.
//! Rounds 1…: every processor floods the set of edge records it knows on
//! all out-wires; sets merge on reception. After at most D+1 rounds the
//! root knows every edge. The root detects completion locally by watching
//! its knowledge stop growing for D_max rounds — here we simply run until
//! the root's set is stable over one round *and* complete (the simulation
//! has ground truth to check against; a real deployment would use a
//! diameter bound, which is exactly what makes this an *idealized*
//! baseline).

use gtd_netsim::{Edge, NodeId, Topology};
use std::collections::BTreeSet;

/// Result of a flood-echo run.
#[derive(Clone, Debug)]
pub struct FloodOutcome {
    /// Synchronous rounds until the root's edge set was complete.
    pub rounds: u64,
    /// The edge set collected at the root.
    pub edges: Vec<Edge>,
    /// Total messages sent (each a whole edge-set — unbounded size!).
    pub messages: u64,
    /// Total edge records carried across wires (∝ bits of bandwidth a real
    /// network would burn; shows what "unbounded messages" hides).
    pub records_shipped: u64,
}

/// Run the flood-echo mapper with the collector at `root`.
pub fn flood_echo(topo: &Topology, root: NodeId) -> FloodOutcome {
    let n = topo.num_nodes();
    // Round 0: learn in-edges — every processor knows (src, src_port,
    // self, in_port) for each of its in-wires after one exchange.
    let mut know: Vec<BTreeSet<Edge>> = vec![BTreeSet::new(); n];
    let mut messages = 0u64;
    let mut records = 0u64;
    for v in topo.node_ids() {
        for (in_port, ep) in topo.in_edges(v) {
            know[v.idx()].insert(Edge {
                src: ep.node,
                src_port: ep.port,
                dst: v,
                dst_port: in_port,
            });
            messages += 1; // the (id, out-port) announcement on this wire
            records += 1;
        }
    }
    let total_edges = topo.num_edges();
    let mut rounds = 1u64; // round 0 happened above
    while know[root.idx()].len() < total_edges {
        // Synchronous flood round: everyone transmits its current set.
        let snapshot: Vec<BTreeSet<Edge>> = know.clone();
        for u in topo.node_ids() {
            if snapshot[u.idx()].is_empty() {
                continue;
            }
            for (_, ep) in topo.out_edges(u) {
                messages += 1;
                records += snapshot[u.idx()].len() as u64;
                know[ep.node.idx()].extend(snapshot[u.idx()].iter().copied());
            }
        }
        rounds += 1;
        assert!(
            rounds <= n as u64 + 2,
            "flood-echo must finish within D+2 ≤ N+2 rounds on a strongly-connected network"
        );
    }
    let edges: Vec<Edge> = know[root.idx()].iter().copied().collect();
    FloodOutcome {
        rounds,
        edges,
        messages,
        records_shipped: records,
    }
}

impl FloodOutcome {
    /// Does the collected edge set match the network exactly?
    pub fn verify_against(&self, topo: &Topology) -> bool {
        self.edges == topo.sorted_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::{algo, generators};

    #[test]
    fn maps_ring_exactly() {
        let t = generators::ring(7);
        let out = flood_echo(&t, NodeId(0));
        assert!(out.verify_against(&t));
        // ring diameter 6: knowledge from the far node needs 6 forward hops
        assert!(out.rounds <= 8, "rounds = {}", out.rounds);
    }

    #[test]
    fn rounds_scale_with_diameter_not_size() {
        let small_d = generators::debruijn(2, 5); // 32 nodes, D ≈ 5
        let big_d = generators::ring(32); // 32 nodes, D = 31
        let a = flood_echo(&small_d, NodeId(0));
        let b = flood_echo(&big_d, NodeId(0));
        assert!(a.verify_against(&small_d));
        assert!(b.verify_against(&big_d));
        assert!(
            a.rounds < b.rounds,
            "low-diameter network must finish sooner ({} vs {})",
            a.rounds,
            b.rounds
        );
        let d = algo::diameter(&big_d) as u64;
        assert!(b.rounds <= d + 2);
    }

    #[test]
    fn maps_random_networks() {
        for seed in 0..10 {
            let t = generators::random_sc(40, 3, seed);
            let out = flood_echo(&t, NodeId(0));
            assert!(out.verify_against(&t), "seed {seed}");
            let d = algo::diameter(&t) as u64;
            assert!(out.rounds <= d + 2, "rounds {} > D+2 {}", out.rounds, d + 2);
        }
    }

    #[test]
    fn bandwidth_cost_is_enormous() {
        // The "win" of unbounded messages is bought with Ω(E) records per
        // wire per round — make the hidden cost visible.
        let t = generators::random_sc(40, 3, 1);
        let out = flood_echo(&t, NodeId(0));
        assert!(out.records_shipped as usize > t.num_edges() * t.num_nodes() / 4);
    }
}
