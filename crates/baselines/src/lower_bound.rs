//! The paper's §5 lower bound, made computable.
//!
//! * **Lemma 5.1** — the family of full binary trees (bidirectional edges)
//!   of height h with a directed loop through the 2^h leaves contains
//!   N^{CN} distinct topologies: [`tree_loop_params`],
//!   [`family_size_log2`], and — for tiny instances, used by tests —
//!   [`count_distinct_small`], which counts *exactly* by reducing each
//!   member to the canonical map the GTD root would output.
//! * **Lemma 5.2** — after x ticks the root has seen one of at most
//!   \|I\|^{δx} transcripts: [`transcript_capacity_log2`] with our concrete
//!   wire alphabet ([`signal_alphabet_log2`]).
//! * **Theorem 5.1** — pigeonhole: \|I\|^{δT} ≥ G(N) forces
//!   T ≥ log₂G(N)/(δ·log₂\|I\|) = Ω(N log N): [`min_ticks_lower_bound`].

use gtd_netsim::{algo, generators, NodeId, Port, Topology};
use std::collections::BTreeSet;

/// Shape parameters of one Lemma 5.1 family member.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TreeLoopParams {
    /// Tree height h (≥ 1).
    pub height: u32,
    /// Number of leaves L = 2^h (the loop's length).
    pub leaves: u64,
    /// Processors N = 2^{h+1} − 1.
    pub n: u64,
    /// The paper's diameter bound 2·log₂N + 1 (the family is built to
    /// stay under it).
    pub diameter_bound: u64,
    /// Port bound δ of every member.
    pub delta: u8,
}

/// Parameters of the height-h member.
pub fn tree_loop_params(height: u32) -> TreeLoopParams {
    assert!(height >= 1);
    let leaves = 1u64 << height;
    let n = (1u64 << (height + 1)) - 1;
    let log2n = 64 - n.leading_zeros() as u64; // ⌈log₂(n+1)⌉
    TreeLoopParams {
        height,
        leaves,
        n,
        diameter_bound: 2 * log2n + 1,
        delta: 3,
    }
}

/// A conservative lower bound on log₂ G(N) for the height-h family:
/// the L leaves can be looped in (L−1)! cyclic orders, and identifying
/// members that differ only by one of the ≤ 2^{L−1} automorphisms of the
/// full binary tree still leaves (L−1)!/2^{L−1} distinct topologies —
/// log₂ of which is Θ(L·log L) = Θ(N·log N), which is all Theorem 5.1
/// needs.
pub fn family_size_log2(height: u32) -> f64 {
    let l = 1u64 << height;
    let log2_fact: f64 = (2..l).map(|k| (k as f64).log2()).sum();
    (log2_fact - (l as f64 - 1.0)).max(0.0)
}

/// log₂ of the per-tick, per-port wire alphabet |I| of our concrete
/// implementation: the product of six snake channels (each the paper's
/// 2(δ²+δ)+1 characters plus "absent"), the KILL and UNMARK bits, the
/// loop-token channel (δ² FORWARD variants + BACK + the BCA payload +
/// "absent") and the DFS channel (δ out-port stamps + "absent").
pub fn signal_alphabet_log2(delta: u8) -> f64 {
    let d = delta as f64;
    let snake = 2.0 * (d * d + d) + 2.0; // alphabet + absent
    6.0 * snake.log2() + 2.0 /* kill, unmark bits */
        + (d * d + 3.0).log2()
        + (d + 1.0).log2()
}

/// Lemma 5.2: log₂ of the number of transcripts the root can have seen
/// after `ticks` ticks, reading δ ports per tick.
pub fn transcript_capacity_log2(delta: u8, ticks: u64) -> f64 {
    ticks as f64 * delta as f64 * signal_alphabet_log2(delta)
}

/// Theorem 5.1: the minimum number of ticks any GTD algorithm needs on the
/// height-h family — the x at which |I|^{δx} first reaches G(N).
pub fn min_ticks_lower_bound(height: u32) -> f64 {
    let p = tree_loop_params(height);
    family_size_log2(height) / (p.delta as f64 * signal_alphabet_log2(p.delta))
}

/// The canonical map key of a network as the GTD root would name it:
/// every node named by its canonical shortest path from the root, edges
/// rewritten in those names. Two networks get the same key **iff** the
/// paper's protocol (or any correct mapper) cannot — and need not —
/// distinguish them.
pub fn canonical_map_key(topo: &Topology, root: NodeId) -> Vec<(u64, Port, u64, Port)> {
    // Name nodes by their canonical path, ordered lexicographically.
    let mut paths: Vec<(Vec<(Port, Port)>, NodeId)> = topo
        .node_ids()
        .map(|v| {
            (
                algo::canonical_path(topo, root, v).expect("strongly connected"),
                v,
            )
        })
        .collect();
    paths.sort();
    let mut name = vec![0u64; topo.num_nodes()];
    for (i, (_, v)) in paths.iter().enumerate() {
        name[v.idx()] = i as u64;
    }
    let mut key: Vec<(u64, Port, u64, Port)> = topo
        .edges()
        .map(|e| (name[e.src.idx()], e.src_port, name[e.dst.idx()], e.dst_port))
        .collect();
    key.sort_unstable();
    key
}

/// Exact count of distinguishable height-h family members by brute force
/// over all leaf permutations (tiny h only — L! blows up fast).
pub fn count_distinct_small(height: u32) -> usize {
    let leaves = 1usize << height;
    assert!(leaves <= 6, "factorial blow-up: keep h tiny");
    let mut perm: Vec<usize> = (0..leaves).collect();
    let mut keys = BTreeSet::new();
    permute(&mut perm, 0, &mut |p| {
        let topo = generators::tree_loop(height, p);
        keys.insert(canonical_map_key(&topo, NodeId(0)));
    });
    keys.len()
}

fn permute(xs: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == xs.len() {
        f(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, f);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_construction() {
        for h in 1..=6 {
            let p = tree_loop_params(h);
            let t = generators::tree_loop_random(h, 0);
            assert_eq!(t.num_nodes() as u64, p.n);
            let d = algo::diameter(&t) as u64;
            assert!(
                d <= p.diameter_bound,
                "h={h}: D={d} > bound {}",
                p.diameter_bound
            );
        }
    }

    #[test]
    fn family_size_grows_like_n_log_n() {
        // log2 G(N) / (N log2 N) should be bounded above and below.
        for h in 4..=10 {
            let p = tree_loop_params(h);
            let g = family_size_log2(h);
            let nlogn = p.n as f64 * (p.n as f64).log2();
            let ratio = g / nlogn;
            assert!(ratio > 0.1, "h={h}: ratio {ratio}");
            assert!(ratio < 1.0, "h={h}: ratio {ratio}");
        }
    }

    #[test]
    fn alphabet_is_constant_in_n() {
        let a = signal_alphabet_log2(3);
        assert!(
            a > 1.0 && a < 64.0,
            "log2|I| = {a} should be a small constant"
        );
        assert!(
            signal_alphabet_log2(8) > a,
            "alphabet grows with delta only"
        );
    }

    #[test]
    fn min_ticks_is_superlinear() {
        let t8 = min_ticks_lower_bound(8);
        let t9 = min_ticks_lower_bound(9);
        let n8 = tree_loop_params(8).n as f64;
        let n9 = tree_loop_params(9).n as f64;
        // T(N)/N must grow (Ω(N log N) is superlinear).
        assert!(t9 / n9 > t8 / n8);
    }

    #[test]
    fn exact_count_exceeds_formula_bound_tiny() {
        // h=1: 2 leaves, 2 permutations; h=2: 4 leaves, 24 permutations.
        for h in [1u32, 2] {
            let exact = count_distinct_small(h);
            let bound = family_size_log2(h);
            assert!(
                (exact as f64).log2() >= bound,
                "h={h}: exact {exact} below claimed bound {bound}"
            );
            assert!(exact >= 1);
        }
    }

    #[test]
    fn distinct_permutations_usually_distinct_keys() {
        // h=2: of the 24 leaf orderings at least 6 distinct cyclic orders
        // exist ((L-1)!/... ); our exact count must see at least (L-1)!/2.
        let exact = count_distinct_small(2);
        assert!(exact >= 3, "exact = {exact}");
    }

    #[test]
    fn canonical_key_invariant_under_member_identity() {
        let a = generators::tree_loop(2, &[0, 1, 2, 3]);
        let b = generators::tree_loop(2, &[0, 1, 2, 3]);
        assert_eq!(
            canonical_map_key(&a, NodeId(0)),
            canonical_map_key(&b, NodeId(0))
        );
    }
}
