//! The common probe-and-reconstruct interface.
//!
//! Three very different machines can map a directed network from a single
//! collector: the paper's finite-state GTD protocol, the unbounded-message
//! flood-echo (baseline B1) and the unbounded-memory source-routed DFS
//! (baseline B2). [`TopologyMapper`] runs all of them through one
//! interface — pick a network and a root, get back the discovered wires
//! and the synchronous-round cost — so experiment E7-style comparisons
//! are apples-to-apples by construction (in the spirit of the common
//! evaluation harnesses of the topology-identification literature).
//!
//! Mappers are addressable by stable name ([`mapper_by_name`]) so campaign
//! grids and CLI flags can select them as data; [`all_mappers`] returns
//! every implementation for exhaustive comparisons.
//!
//! ```
//! use gtd_baselines::mapper::all_mappers;
//! use gtd_netsim::{generators, NodeId};
//!
//! let topo = generators::ring(8);
//! for mapper in all_mappers() {
//!     let out = mapper.map_network(&topo, NodeId(3)).expect("maps");
//!     assert!(out.verify_against(&topo));
//!     assert!(out.rounds > 0);
//! }
//! ```

use crate::{flood_echo, source_routed_dfs};
use gtd_core::{
    phase_breakdown, EpochStatus, GtdError, GtdSession, PhaseBreakdown, RemapPolicy, RunStats,
    VerifyError,
};
use gtd_netsim::{Edge, EngineMode, FaultPlane, MutationSchedule, NodeId, Topology};

/// Why a mapper failed to produce a comparable edge set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MapperError {
    /// The underlying GTD run failed (budget, precondition, decode).
    Gtd(GtdError),
    /// The reconstructed map could not be resolved against ground truth
    /// (protocol bug — Theorem 4.1 promises this never happens).
    Unresolvable(VerifyError),
    /// The GTD run survived an unreliable wire plane (paper §1.2.2) but
    /// exhausted its retry budget without a verified map. This is the
    /// *structured* degradation outcome: the run terminated cleanly and
    /// carries the evidence of how far each attempt got.
    Degraded {
        /// Best status across the attempts ([`EpochStatus::Partial`] when
        /// some edges decoded, [`EpochStatus::Exhausted`] when none did).
        status: EpochStatus,
        /// Retries spent (attempts minus one).
        retries: u32,
        /// Edges in the best partial map (exact on the edges it covers).
        partial_edges: usize,
        /// Characters the fault plane destroyed outright.
        fault_dropped: u64,
        /// Characters the fault plane delivered late.
        fault_delayed: u64,
    },
}

impl std::fmt::Display for MapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapperError::Gtd(e) => write!(f, "gtd run failed: {e}"),
            MapperError::Unresolvable(e) => write!(f, "map does not resolve: {e}"),
            MapperError::Degraded {
                status,
                retries,
                partial_edges,
                fault_dropped,
                fault_delayed,
            } => write!(
                f,
                "degraded to {status:?} after {retries} retries \
                 ({partial_edges} partial edges; faults dropped {fault_dropped}, \
                 delayed {fault_delayed})"
            ),
        }
    }
}

impl std::error::Error for MapperError {}

impl From<GtdError> for MapperError {
    fn from(e: GtdError) -> Self {
        MapperError::Gtd(e)
    }
}

/// What every mapper returns: the discovered wires in ground-truth
/// labels plus the cost of discovering them.
#[derive(Clone, Debug)]
pub struct MapperRun {
    /// Synchronous rounds (global clock ticks) until the collector had
    /// the complete map.
    pub rounds: u64,
    /// Messages sent, when the mapper counts them (`None` for GTD, which
    /// ships one constant-size character per wire per tick by design).
    pub messages: Option<u64>,
    /// Every discovered wire, sorted, in ground-truth node labels.
    pub edges: Vec<Edge>,
    /// Transcript-derived protocol counters (GTD only).
    pub stats: Option<RunStats>,
    /// Where the ticks went (GTD with
    /// [`GtdMapper::capture_phases`] only).
    pub phases: Option<PhaseBreakdown>,
    /// Lemma 4.2 check: was the network left pristine (GTD only)?
    pub clean: Option<bool>,
}

impl MapperRun {
    /// Did the mapper discover exactly the network's wires?
    pub fn verify_against(&self, topo: &Topology) -> bool {
        self.edges == topo.sorted_edges()
    }
}

/// What a mapper measured over a dynamic (mutating) scenario — the
/// common shape GTD and the baselines report so remap costs are directly
/// comparable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicRun {
    /// Rounds until the collector first held a *correct* map. For the
    /// analytic baselines this is the pristine-network mapping cost; for
    /// GTD's live timeline it spans any epochs an early mutation wasted
    /// before the first verified map.
    pub initial_rounds: u64,
    /// Per scheduled mutation, in schedule order: rounds from the
    /// mutation to the next correct map (the **remap latency**).
    pub remap_latencies: Vec<Option<u64>>,
    /// Mapping epochs executed over the timeline.
    pub epochs: usize,
    /// Processors in the network at the end of each epoch, in timeline
    /// order (membership mutations change N mid-run).
    pub epoch_nodes: Vec<usize>,
    /// Total rounds spent mapping across the timeline. For GTD this is
    /// the live engine timeline (wasted work, resets and idle gaps
    /// included); for the analytic baselines it is the sum of the
    /// per-epoch mapping costs.
    pub total_rounds: u64,
    /// Did the final map match the final topology?
    pub verified: bool,
    /// Characters the fault plane destroyed over the whole timeline
    /// (GTD live timeline only; the analytic baselines never touch a
    /// wire, so they report 0 even under an active plane).
    pub fault_dropped: u64,
    /// Characters the fault plane delivered late (GTD only, as above).
    pub fault_delayed: u64,
}

impl DynamicRun {
    /// Largest observed remap latency, if any mutation was remapped.
    pub fn max_remap_latency(&self) -> Option<u64> {
        self.remap_latencies.iter().flatten().copied().max()
    }
}

/// A machine that maps an unknown directed network from one collector
/// processor. Implementations must return edges in **ground-truth
/// labels**, sorted, so outcomes are directly comparable.
pub trait TopologyMapper {
    /// Short display name (table rows, bench ids, campaign grids).
    fn name(&self) -> &'static str;

    /// Map `topo` from `root`.
    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError>;

    /// Map a network whose topology mutates at scheduled ticks, reporting
    /// a remap latency per mutation.
    ///
    /// The default drives the *idealized* dynamic path every collector
    /// can follow: map the pristine network, then re-map from scratch
    /// after each mutation (with the same swap fallback for inapplicable
    /// mutations that the live engine uses), so the remap latency is one
    /// fresh mapping run. [`GtdMapper`] overrides this with
    /// [`GtdSession::run_dynamic`] — the live engine timeline in which
    /// the mutation disturbs a run already in flight — which is exactly
    /// the comparison the paper's §1 scenario asks for: what does
    /// re-determination cost a finite-state protocol versus an idealized
    /// collector?
    fn map_dynamic(
        &self,
        base: &Topology,
        schedule: &MutationSchedule,
        root: NodeId,
    ) -> Result<DynamicRun, MapperError> {
        let initial = self.map_network(base, root)?;
        let mut verified = initial.verify_against(base);
        let mut topo = base.clone();
        let mut root = root;
        let mut total = initial.rounds;
        let mut epochs = 1usize;
        let mut epoch_nodes = vec![base.num_nodes()];
        let mut latencies = Vec::with_capacity(schedule.len());
        for sm in schedule.iter() {
            // Membership mutations change N and can shift the collector's
            // id; track both, exactly as the live GTD timeline does.
            let applied = topo.apply_or_fallback_rooted(&sm.mutation, root);
            root = applied.membership.relabel(root);
            topo = applied.topology;
            let remap = self.map_network(&topo, root)?;
            verified = remap.verify_against(&topo);
            total += remap.rounds;
            epochs += 1;
            epoch_nodes.push(topo.num_nodes());
            latencies.push(Some(remap.rounds));
        }
        Ok(DynamicRun {
            initial_rounds: initial.rounds,
            remap_latencies: latencies,
            epochs,
            epoch_nodes,
            total_rounds: total,
            verified,
            fault_dropped: 0,
            fault_delayed: 0,
        })
    }
}

/// The paper's finite-state protocol behind the common interface.
///
/// Runs a [`GtdSession`] and resolves the canonical-path names back to
/// ground-truth labels. Transcript capture is off by default (the mapper
/// interface only needs the map and the cost); switch
/// [`capture_phases`](GtdMapper::capture_phases) on to also get the
/// per-phase tick breakdown in [`MapperRun::phases`].
#[derive(Clone, Copy, Debug)]
pub struct GtdMapper {
    /// Engine strategy for the run.
    pub mode: EngineMode,
    /// Optional tick budget (defaults to the generous protocol bound).
    pub tick_budget: Option<u64>,
    /// Capture the transcript and fill [`MapperRun::phases`].
    pub capture_phases: bool,
    /// Remap trigger for dynamic timelines (lazy: let a disturbed epoch
    /// run out; eager: power-cycle at the mutation). Static runs and the
    /// analytic baselines ignore it — they re-map instantly either way.
    pub policy: RemapPolicy,
    /// Wire-level fault plane for protocol runs ([`FaultPlane::NONE`]
    /// for reliable wires). The analytic baselines are *fault-immune*:
    /// they compute on the topology graph, never on simulated wires, so
    /// the plane only affects `"gtd"`.
    pub fault: FaultPlane,
    /// Extra attempts a faulted static run may spend before degrading
    /// to [`MapperError::Degraded`] (ignored on reliable wires).
    pub max_retries: u32,
}

impl Default for GtdMapper {
    fn default() -> Self {
        GtdMapper {
            mode: EngineMode::Sparse,
            tick_budget: None,
            capture_phases: false,
            policy: RemapPolicy::Lazy,
            fault: FaultPlane::NONE,
            max_retries: 3,
        }
    }
}

impl TopologyMapper for GtdMapper {
    fn name(&self) -> &'static str {
        "gtd"
    }

    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError> {
        let mut session = GtdSession::on(topo)
            .root(root)
            .mode(self.mode)
            .capture_transcript(self.capture_phases);
        if let Some(budget) = self.tick_budget {
            session = session.tick_budget(budget);
        }
        if self.fault.is_active() {
            // Unreliable wires: drive the wedge-detecting retry loop and
            // translate a spent retry budget into the structured
            // degradation error instead of a hang or a panic.
            let res = session
                .faults(self.fault)
                .max_retries(self.max_retries)
                .run_resilient()?;
            if !res.verified() {
                return Err(MapperError::Degraded {
                    status: res.status,
                    retries: res.retries(),
                    partial_edges: res.map.as_ref().map_or(0, |m| m.num_edges()),
                    fault_dropped: res.stats.fault_dropped,
                    fault_delayed: res.stats.fault_delayed,
                });
            }
            let map = res.map.as_ref().expect("verified outcomes carry a map");
            let edges = map
                .resolve_edges(topo, root)
                .map_err(MapperError::Unresolvable)?;
            return Ok(MapperRun {
                rounds: res.ticks,
                messages: None,
                edges,
                stats: Some(res.stats),
                phases: self.capture_phases.then(|| phase_breakdown(&res.events)),
                // Bounded settle under faults: a dropped UNMARK can leave
                // a stray circulating, so cleanliness is not asserted.
                clean: None,
            });
        }
        let outcome = session.run()?;
        let edges = outcome
            .map
            .resolve_edges(topo, root)
            .map_err(MapperError::Unresolvable)?;
        Ok(MapperRun {
            rounds: outcome.ticks,
            messages: None,
            edges,
            stats: Some(outcome.stats),
            phases: self.capture_phases.then_some(outcome.phases),
            clean: Some(outcome.clean_at_end),
        })
    }

    /// GTD runs the *live* dynamic timeline: the scheduled mutations hit
    /// the engine mid-run ([`GtdSession::run_dynamic`]), so the reported
    /// remap latencies include the wasted tail of the disturbed run and
    /// any RESET/power-cycle cost — the honest finite-state price of the
    /// paper's "topology might change" scenario.
    fn map_dynamic(
        &self,
        base: &Topology,
        schedule: &MutationSchedule,
        root: NodeId,
    ) -> Result<DynamicRun, MapperError> {
        let mut session = GtdSession::on(base)
            .root(root)
            .mode(self.mode)
            .policy(self.policy)
            .faults(self.fault)
            .max_retries(self.max_retries)
            .capture_transcript(false);
        if let Some(budget) = self.tick_budget {
            session = session.tick_budget(budget);
        }
        let out = session.run_dynamic(schedule)?;
        // Global ticks until the first verified map — comparable to the
        // baselines' pristine mapping cost even when an early mutation
        // wedged or staled the first epoch.
        let initial_rounds = out
            .epochs
            .iter()
            .find(|e| e.status == EpochStatus::Verified)
            .map_or(0, |e| e.end_tick);
        Ok(DynamicRun {
            initial_rounds,
            remap_latencies: out.remap_latencies(),
            epochs: out.epochs.len(),
            epoch_nodes: out.epoch_nodes(),
            total_rounds: out.total_ticks,
            verified: out.final_verified(),
            fault_dropped: out.fault_dropped,
            fault_delayed: out.fault_delayed,
        })
    }
}

/// Baseline B1: unbounded-message flood-echo ([`crate::flood_echo`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FloodEchoMapper;

impl TopologyMapper for FloodEchoMapper {
    fn name(&self) -> &'static str {
        "flood-echo"
    }

    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError> {
        let out = flood_echo(topo, root);
        Ok(MapperRun {
            rounds: out.rounds,
            messages: Some(out.messages),
            edges: out.edges,
            stats: None,
            phases: None,
            clean: None,
        })
    }
}

/// Baseline B2: unbounded-memory source-routed DFS
/// ([`crate::source_routed_dfs`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutedDfsMapper;

impl TopologyMapper for RoutedDfsMapper {
    fn name(&self) -> &'static str {
        "routed-dfs"
    }

    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError> {
        let out = source_routed_dfs(topo, root);
        Ok(MapperRun {
            rounds: out.rounds,
            messages: Some(out.messages),
            edges: out.edges,
            stats: None,
            phases: None,
            clean: None,
        })
    }
}

/// How [`mapper_by_name`] configures the mapper it builds. Baselines
/// ignore every knob (they are analytic machines); GTD honours all three.
#[derive(Clone, Copy, Debug)]
pub struct MapperConfig {
    /// Engine strategy for protocol runs.
    pub mode: EngineMode,
    /// Optional tick budget for protocol runs.
    pub tick_budget: Option<u64>,
    /// Capture the transcript for the phase breakdown.
    pub capture_phases: bool,
    /// Remap trigger for dynamic timelines (GTD only; the analytic
    /// baselines re-map instantly under either policy).
    pub policy: RemapPolicy,
    /// Wire-level fault plane (GTD only — the baselines are analytic
    /// machines with no wires to fault).
    pub fault: FaultPlane,
    /// Retry budget for faulted static runs (GTD only).
    pub max_retries: u32,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            mode: EngineMode::Sparse,
            tick_budget: None,
            capture_phases: false,
            policy: RemapPolicy::Lazy,
            fault: FaultPlane::NONE,
            max_retries: 3,
        }
    }
}

/// The stable mapper names, in descending cost order (matches
/// [`all_mappers`]).
pub fn mapper_names() -> Vec<&'static str> {
    vec!["gtd", "routed-dfs", "flood-echo"]
}

/// Build a mapper by its stable name (`"gtd"`, `"routed-dfs"`,
/// `"flood-echo"`), configured by `cfg`. Returns `None` for unknown names.
pub fn mapper_by_name(
    name: &str,
    cfg: &MapperConfig,
) -> Option<Box<dyn TopologyMapper + Send + Sync>> {
    match name {
        "gtd" => Some(Box::new(GtdMapper {
            mode: cfg.mode,
            tick_budget: cfg.tick_budget,
            capture_phases: cfg.capture_phases,
            policy: cfg.policy,
            fault: cfg.fault,
            max_retries: cfg.max_retries,
        })),
        "routed-dfs" => Some(Box::new(RoutedDfsMapper)),
        "flood-echo" => Some(Box::new(FloodEchoMapper)),
        _ => None,
    }
}

/// Every mapper, in descending cost order: GTD (finite-state), routed
/// DFS (unbounded memory), flood-echo (unbounded messages).
pub fn all_mappers() -> Vec<Box<dyn TopologyMapper + Send + Sync>> {
    mapper_names()
        .into_iter()
        .map(|n| mapper_by_name(n, &MapperConfig::default()).expect("registry name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::generators;

    #[test]
    fn every_mapper_agrees_with_ground_truth_from_any_root() {
        let topo = generators::random_sc(18, 3, 5);
        for mapper in all_mappers() {
            for root in [0u32, 7, 17] {
                let out = mapper.map_network(&topo, NodeId(root)).unwrap();
                assert!(
                    out.verify_against(&topo),
                    "{} from root {root} disagrees",
                    mapper.name()
                );
            }
        }
    }

    #[test]
    fn gtd_mapper_budget_surfaces_as_mapper_error() {
        let topo = generators::ring(10);
        let mapper = GtdMapper {
            tick_budget: Some(5),
            ..GtdMapper::default()
        };
        match mapper.map_network(&topo, NodeId(0)) {
            Err(MapperError::Gtd(GtdError::BudgetExhausted { budget: 5, .. })) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn cost_ordering_holds_through_the_trait() {
        let topo = generators::random_sc(30, 3, 9);
        let rounds: Vec<u64> = all_mappers()
            .iter()
            .map(|m| m.map_network(&topo, NodeId(0)).unwrap().rounds)
            .collect();
        // gtd > routed-dfs > flood-echo
        assert!(
            rounds[0] > rounds[1],
            "gtd {} vs dfs {}",
            rounds[0],
            rounds[1]
        );
        assert!(
            rounds[1] > rounds[2],
            "dfs {} vs flood {}",
            rounds[1],
            rounds[2]
        );
    }

    #[test]
    fn mapper_by_name_round_trips_the_registry() {
        for name in mapper_names() {
            let m = mapper_by_name(name, &MapperConfig::default()).unwrap();
            assert_eq!(m.name(), name);
        }
        assert!(mapper_by_name("oracle", &MapperConfig::default()).is_none());
    }

    #[test]
    fn every_mapper_follows_the_dynamic_path() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(16, 3, 5);
        let schedule = MutationSchedule::new().with(
            50,
            TopologyMutation {
                kind: MutationKind::RewirePort,
                selector: 1,
            },
        );
        for mapper in all_mappers() {
            let run = mapper.map_dynamic(&topo, &schedule, NodeId(0)).unwrap();
            assert!(run.verified, "{} final map wrong", mapper.name());
            assert_eq!(run.remap_latencies.len(), 1, "{}", mapper.name());
            assert!(
                run.remap_latencies[0].is_some(),
                "{} latency missing",
                mapper.name()
            );
            assert!(run.initial_rounds > 0, "{}", mapper.name());
            // GTD may absorb an early mutation into its first mapping run
            // (one epoch); the idealized baselines always re-map (two).
            assert!(run.epochs >= 1, "{}", mapper.name());
        }
    }

    #[test]
    fn every_mapper_follows_the_membership_dynamic_path() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(16, 3, 5);
        let schedule = MutationSchedule::new()
            .with(
                50,
                TopologyMutation {
                    kind: MutationKind::NodeLeave,
                    selector: 1,
                },
            )
            .with(
                5_000,
                TopologyMutation {
                    kind: MutationKind::NodeJoin,
                    selector: 4,
                },
            );
        for mapper in all_mappers() {
            let run = mapper
                .map_dynamic(&topo, &schedule, NodeId(3))
                .unwrap_or_else(|e| panic!("{}: {e}", mapper.name()));
            assert!(run.verified, "{} final map wrong", mapper.name());
            assert_eq!(run.remap_latencies.len(), 2, "{}", mapper.name());
            assert!(
                run.remap_latencies.iter().all(Option::is_some),
                "{}",
                mapper.name()
            );
            // the final epoch ran on 16 nodes again (one leave, one join)
            assert_eq!(
                run.epoch_nodes.last().copied(),
                Some(16),
                "{}: {:?}",
                mapper.name(),
                run.epoch_nodes
            );
            assert!(
                run.epoch_nodes.contains(&15),
                "{}: {:?}",
                mapper.name(),
                run.epoch_nodes
            );
        }
    }

    #[test]
    fn gtd_mapper_policies_agree_on_the_final_map_but_not_the_path() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::ring(16);
        let schedule = MutationSchedule::new().with(
            100,
            TopologyMutation {
                kind: MutationKind::NodeLeave,
                selector: 5,
            },
        );
        let lazy = GtdMapper::default()
            .map_dynamic(&topo, &schedule, NodeId(0))
            .unwrap();
        let eager = GtdMapper {
            policy: RemapPolicy::Eager,
            ..GtdMapper::default()
        }
        .map_dynamic(&topo, &schedule, NodeId(0))
        .unwrap();
        assert!(lazy.verified && eager.verified);
        assert!(
            eager.remap_latencies[0].unwrap() <= lazy.remap_latencies[0].unwrap(),
            "eager {:?} vs lazy {:?}",
            eager.remap_latencies,
            lazy.remap_latencies
        );
    }

    #[test]
    fn gtd_live_remap_costs_more_than_the_idealized_baselines() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(20, 3, 8);
        let schedule = MutationSchedule::new().with(
            60,
            TopologyMutation {
                kind: MutationKind::DropEdge,
                selector: 2,
            },
        );
        let gtd = GtdMapper::default()
            .map_dynamic(&topo, &schedule, NodeId(0))
            .unwrap();
        let flood = FloodEchoMapper
            .map_dynamic(&topo, &schedule, NodeId(0))
            .unwrap();
        assert!(
            gtd.max_remap_latency().unwrap() > flood.max_remap_latency().unwrap(),
            "gtd {:?} vs flood {:?}",
            gtd.remap_latencies,
            flood.remap_latencies
        );
    }

    #[test]
    fn faulted_gtd_mapper_retries_its_way_to_a_verified_map() {
        // Every dropped character is fatal on a ring (single token, no
        // redundant wires), so a lossy run verifies exactly when a
        // re-seeded retry happens to be drop-free — the retry loop is
        // what rescues the run, not luck on the first attempt.
        let topo = generators::ring(6);
        let mapper = GtdMapper {
            fault: FaultPlane {
                loss: 0.001,
                delay_min: 0,
                delay_max: 0,
                seed: 8,
            },
            ..GtdMapper::default()
        };
        let run = mapper.map_network(&topo, NodeId(0)).unwrap();
        assert!(run.verify_against(&topo));
        let stats = run.stats.unwrap();
        assert!(stats.retries > 0, "expected the retry loop to fire");
        assert_eq!(stats.fault_dropped, 0, "the winning attempt is drop-free");
        // Cleanliness is not asserted under faults (bounded settle).
        assert_eq!(run.clean, None);
    }

    #[test]
    fn total_loss_surfaces_as_structured_degradation() {
        let topo = generators::ring(8);
        let mapper = GtdMapper {
            fault: FaultPlane {
                loss: 1.0,
                delay_min: 0,
                delay_max: 0,
                seed: 1,
            },
            max_retries: 1,
            ..GtdMapper::default()
        };
        match mapper.map_network(&topo, NodeId(0)) {
            Err(MapperError::Degraded {
                status,
                retries,
                partial_edges,
                fault_dropped,
                ..
            }) => {
                assert_eq!(status, EpochStatus::Exhausted);
                assert_eq!(retries, 1);
                assert_eq!(partial_edges, 0);
                assert!(fault_dropped > 0);
            }
            other => panic!("expected structured degradation, got {other:?}"),
        }
    }

    #[test]
    fn analytic_baselines_are_fault_immune() {
        let topo = generators::random_sc(14, 3, 6);
        let cfg = MapperConfig {
            fault: FaultPlane {
                loss: 1.0,
                delay_min: 0,
                delay_max: 0,
                seed: 3,
            },
            ..MapperConfig::default()
        };
        for name in ["flood-echo", "routed-dfs"] {
            let mapper = mapper_by_name(name, &cfg).unwrap();
            let run = mapper.map_network(&topo, NodeId(0)).unwrap();
            assert!(run.verify_against(&topo), "{name} faulted by a plane");
        }
    }

    #[test]
    fn faulted_dynamic_timeline_reports_fault_counters() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::ring(10);
        let schedule = MutationSchedule::new().with(
            80,
            TopologyMutation {
                kind: MutationKind::RewirePort,
                selector: 2,
            },
        );
        let mapper = GtdMapper {
            fault: FaultPlane {
                loss: 0.0,
                delay_min: 1,
                delay_max: 1,
                seed: 4,
            },
            ..GtdMapper::default()
        };
        let run = mapper.map_dynamic(&topo, &schedule, NodeId(0)).unwrap();
        assert!(run.verified, "constant delay must still verify");
        assert!(run.fault_delayed > 0);
        // (A constant delay can still collision-drop at mutation or
        // power-cycle boundaries, so fault_dropped is not asserted zero.)
    }

    #[test]
    fn gtd_mapper_captures_phases_and_cleanliness_on_demand() {
        let topo = generators::ring(8);
        let quiet = GtdMapper::default().map_network(&topo, NodeId(0)).unwrap();
        assert!(quiet.phases.is_none());
        assert_eq!(quiet.clean, Some(true));
        assert!(quiet.stats.unwrap().rcas() > 0);

        let chatty = GtdMapper {
            capture_phases: true,
            ..GtdMapper::default()
        }
        .map_network(&topo, NodeId(0))
        .unwrap();
        let phases = chatty.phases.unwrap();
        assert!(phases.total() > 0);
        assert_eq!(phases.rcas, chatty.stats.unwrap().rcas());
    }
}
