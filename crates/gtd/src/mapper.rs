//! The common probe-and-reconstruct interface.
//!
//! Three very different machines can map a directed network from a single
//! collector: the paper's finite-state GTD protocol, the unbounded-message
//! flood-echo (baseline B1) and the unbounded-memory source-routed DFS
//! (baseline B2). [`TopologyMapper`] runs all of them through one
//! interface — pick a network and a root, get back the discovered wires
//! and the synchronous-round cost — so experiment E7-style comparisons
//! are apples-to-apples by construction (in the spirit of the common
//! evaluation harnesses of the topology-identification literature).
//!
//! ```
//! use gtd::{generators, NodeId, TopologyMapper};
//!
//! let topo = generators::ring(8);
//! for mapper in gtd::all_mappers() {
//!     let out = mapper.map_network(&topo, NodeId(3)).expect("maps");
//!     assert!(out.verify_against(&topo));
//!     assert!(out.rounds > 0);
//! }
//! ```

use gtd_baselines::{flood_echo, source_routed_dfs};
use gtd_core::{GtdError, GtdSession, VerifyError};
use gtd_netsim::{Edge, EngineMode, NodeId, Topology};

/// Why a mapper failed to produce a comparable edge set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MapperError {
    /// The underlying GTD run failed (budget, precondition, decode).
    Gtd(GtdError),
    /// The reconstructed map could not be resolved against ground truth
    /// (protocol bug — Theorem 4.1 promises this never happens).
    Unresolvable(VerifyError),
}

impl std::fmt::Display for MapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapperError::Gtd(e) => write!(f, "gtd run failed: {e}"),
            MapperError::Unresolvable(e) => write!(f, "map does not resolve: {e}"),
        }
    }
}

impl std::error::Error for MapperError {}

impl From<GtdError> for MapperError {
    fn from(e: GtdError) -> Self {
        MapperError::Gtd(e)
    }
}

/// What every mapper returns: the discovered wires in ground-truth
/// labels plus the cost of discovering them.
#[derive(Clone, Debug)]
pub struct MapperRun {
    /// Synchronous rounds (global clock ticks) until the collector had
    /// the complete map.
    pub rounds: u64,
    /// Messages sent, when the mapper counts them (`None` for GTD, which
    /// ships one constant-size character per wire per tick by design).
    pub messages: Option<u64>,
    /// Every discovered wire, sorted, in ground-truth node labels.
    pub edges: Vec<Edge>,
}

impl MapperRun {
    /// Did the mapper discover exactly the network's wires?
    pub fn verify_against(&self, topo: &Topology) -> bool {
        self.edges == topo.sorted_edges()
    }
}

/// A machine that maps an unknown directed network from one collector
/// processor. Implementations must return edges in **ground-truth
/// labels**, sorted, so outcomes are directly comparable.
pub trait TopologyMapper {
    /// Short display name (table rows, bench ids).
    fn name(&self) -> &'static str;

    /// Map `topo` from `root`.
    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError>;
}

/// The paper's finite-state protocol behind the common interface.
///
/// Runs a [`GtdSession`] (transcript capture off — the mapper interface
/// only needs the map and the cost) and resolves the canonical-path names
/// back to ground-truth labels.
#[derive(Clone, Copy, Debug)]
pub struct GtdMapper {
    /// Engine strategy for the run.
    pub mode: EngineMode,
    /// Optional tick budget (defaults to the generous protocol bound).
    pub tick_budget: Option<u64>,
}

impl Default for GtdMapper {
    fn default() -> Self {
        GtdMapper {
            mode: EngineMode::Sparse,
            tick_budget: None,
        }
    }
}

impl TopologyMapper for GtdMapper {
    fn name(&self) -> &'static str {
        "gtd"
    }

    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError> {
        let mut session = GtdSession::on(topo)
            .root(root)
            .mode(self.mode)
            .capture_transcript(false);
        if let Some(budget) = self.tick_budget {
            session = session.tick_budget(budget);
        }
        let outcome = session.run()?;
        let edges = outcome
            .map
            .resolve_edges(topo, root)
            .map_err(MapperError::Unresolvable)?;
        Ok(MapperRun {
            rounds: outcome.ticks,
            messages: None,
            edges,
        })
    }
}

/// Baseline B1: unbounded-message flood-echo (`gtd_baselines::flood_echo`).
#[derive(Clone, Copy, Debug, Default)]
pub struct FloodEchoMapper;

impl TopologyMapper for FloodEchoMapper {
    fn name(&self) -> &'static str {
        "flood-echo"
    }

    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError> {
        let out = flood_echo(topo, root);
        Ok(MapperRun {
            rounds: out.rounds,
            messages: Some(out.messages),
            edges: out.edges,
        })
    }
}

/// Baseline B2: unbounded-memory source-routed DFS
/// (`gtd_baselines::source_routed_dfs`).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoutedDfsMapper;

impl TopologyMapper for RoutedDfsMapper {
    fn name(&self) -> &'static str {
        "routed-dfs"
    }

    fn map_network(&self, topo: &Topology, root: NodeId) -> Result<MapperRun, MapperError> {
        let out = source_routed_dfs(topo, root);
        Ok(MapperRun {
            rounds: out.rounds,
            messages: Some(out.messages),
            edges: out.edges,
        })
    }
}

/// Every mapper, in descending cost order: GTD (finite-state), routed
/// DFS (unbounded memory), flood-echo (unbounded messages).
pub fn all_mappers() -> Vec<Box<dyn TopologyMapper>> {
    vec![
        Box::new(GtdMapper::default()),
        Box::new(RoutedDfsMapper),
        Box::new(FloodEchoMapper),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::generators;

    #[test]
    fn every_mapper_agrees_with_ground_truth_from_any_root() {
        let topo = generators::random_sc(18, 3, 5);
        for mapper in all_mappers() {
            for root in [0u32, 7, 17] {
                let out = mapper.map_network(&topo, NodeId(root)).unwrap();
                assert!(
                    out.verify_against(&topo),
                    "{} from root {root} disagrees",
                    mapper.name()
                );
            }
        }
    }

    #[test]
    fn gtd_mapper_budget_surfaces_as_mapper_error() {
        let topo = generators::ring(10);
        let mapper = GtdMapper {
            tick_budget: Some(5),
            ..GtdMapper::default()
        };
        match mapper.map_network(&topo, NodeId(0)) {
            Err(MapperError::Gtd(GtdError::BudgetExhausted { budget: 5, .. })) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn cost_ordering_holds_through_the_trait() {
        let topo = generators::random_sc(30, 3, 9);
        let rounds: Vec<u64> = all_mappers()
            .iter()
            .map(|m| m.map_network(&topo, NodeId(0)).unwrap().rounds)
            .collect();
        // gtd > routed-dfs > flood-echo
        assert!(
            rounds[0] > rounds[1],
            "gtd {} vs dfs {}",
            rounds[0],
            rounds[1]
        );
        assert!(
            rounds[1] > rounds[2],
            "dfs {} vs flood {}",
            rounds[1],
            rounds[2]
        );
    }
}
