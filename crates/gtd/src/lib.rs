//! # gtd — the facade crate
//!
//! One import for the whole reproduction of Goldstein's *Determination of
//! the Topology of a Directed Network* (IPPS 2002):
//!
//! * [`netsim`] — the lockstep simulator: port-labelled directed
//!   multigraphs ([`Topology`]), graph ground truth ([`algo`]), workload
//!   [`generators`] and their declarative [`TopologySpec`] layer, and the
//!   three-strategy synchronous engine;
//! * [`snake`] — the finite-state snake/token data structures (paper §2);
//! * [`protocol`] — the GTD protocol itself: [`GtdSession`] builder,
//!   [`RunOutcome`], the protocol automaton and the master computer;
//! * [`baselines`] — unbounded-memory comparison mappers, the §5
//!   lower-bound machinery, and the [`TopologyMapper`] trait that runs
//!   GTD, flood-echo and source-routed DFS through one
//!   probe-and-reconstruct interface;
//! * [`bench`] — the experiment layer: spec-backed workloads and the
//!   [`Campaign`] grid runner (specs × mappers × engine modes × roots ×
//!   repetitions, executed across a worker pool with deterministic,
//!   order-independent results);
//! * [`serve`] — the crash-tolerant campaign service: a coordinator that
//!   shards grid cells across worker processes over a line-delimited
//!   JSON protocol, with per-cell leases, heartbeats, bounded re-issue
//!   and a persistent cell cache (`harness serve` / `harness work` /
//!   `harness grid --via`).
//!
//! ```
//! use gtd::{Campaign, GtdSession, NodeId, TopologyMapper, TopologySpec};
//!
//! let spec: TopologySpec = "random-sc:n=20,delta=3,seed=1".parse().unwrap();
//! let topo = spec.build();
//!
//! // Run the protocol through the session builder…
//! let run = GtdSession::on(&topo).root(NodeId(2)).run().expect("terminates");
//! run.map.verify_against(&topo, NodeId(2)).expect("exact port-level map");
//!
//! // …or run *every* mapper through the common trait:
//! for mapper in gtd::all_mappers() {
//!     let out = mapper.map_network(&topo, NodeId(0)).expect("mapper succeeds");
//!     assert!(out.verify_against(&topo), "{} disagrees", mapper.name());
//! }
//!
//! // …or declare a whole experiment grid and let the campaign run it:
//! let report = Campaign::new()
//!     .spec(spec)
//!     .mappers(["gtd", "flood-echo"])
//!     .jobs(2)
//!     .run()
//!     .expect("grid is well-formed");
//! assert_eq!(report.records.len(), 2);
//! assert_eq!(report.error_count(), 0);
//! ```

pub use gtd_baselines as baselines;
pub use gtd_bench as bench;
pub use gtd_core as protocol;
pub use gtd_netsim as netsim;
pub use gtd_serve as serve;
pub use gtd_snake as snake;

pub use gtd_baselines::{
    all_mappers, mapper_by_name, mapper_names, DynamicRun, FloodEchoMapper, GtdMapper,
    MapperConfig, MapperError, MapperRun, RoutedDfsMapper, TopologyMapper,
};
pub use gtd_bench::{
    core_families, Campaign, CampaignError, CampaignReport, CellError, CellOutcome, GroupStat,
    RemapSummary, RunRecord, Workload,
};
pub use gtd_core::{
    default_tick_budget, phase_breakdown, AttemptOutcome, DecodeError, EpochOutcome, EpochStatus,
    GtdError, GtdSession, MasterComputer, MutationOutcome, NetworkMap, PhaseBreakdown,
    PreconditionViolation, ProtocolNode, RemapOutcome, RemapPolicy, ResilientOutcome, RunOutcome,
    RunStats, StartBehavior, TranscriptEvent, VerifyError,
};
pub use gtd_netsim::{
    algo, generators, mutation, spec, AppliedMutation, DynamicSpec, Edge, Engine, EngineMode,
    FaultPlane, MembershipChange, MutationError, MutationKind, MutationSchedule, NodeId,
    ParseSpecError, Port, ScheduledMutation, Topology, TopologyBuilder, TopologyMutation,
    TopologySpec,
};
