//! # gtd — the facade crate
//!
//! One import for the whole reproduction of Goldstein's *Determination of
//! the Topology of a Directed Network* (IPPS 2002):
//!
//! * [`netsim`] — the lockstep simulator: port-labelled directed
//!   multigraphs ([`Topology`]), graph ground truth ([`algo`]), workload
//!   [`generators`], and the three-strategy synchronous engine;
//! * [`snake`] — the finite-state snake/token data structures (paper §2);
//! * [`protocol`] — the GTD protocol itself: [`GtdSession`] builder,
//!   [`RunOutcome`], the protocol automaton and the master computer;
//! * [`baselines`] — unbounded-memory comparison mappers and the §5
//!   lower-bound machinery;
//! * [`mapper`] — the [`TopologyMapper`] trait that runs GTD, flood-echo
//!   and source-routed DFS through one probe-and-reconstruct interface.
//!
//! ```
//! use gtd::{generators, GtdSession, NodeId, TopologyMapper};
//!
//! let topo = generators::random_sc(20, 3, 1);
//!
//! // Run the protocol through the session builder…
//! let run = GtdSession::on(&topo).root(NodeId(2)).run().expect("terminates");
//! run.map.verify_against(&topo, NodeId(2)).expect("exact port-level map");
//!
//! // …or run *every* mapper through the common trait:
//! for mapper in gtd::all_mappers() {
//!     let out = mapper.map_network(&topo, NodeId(0)).expect("mapper succeeds");
//!     assert!(out.verify_against(&topo), "{} disagrees", mapper.name());
//! }
//! ```

pub mod mapper;

pub use gtd_baselines as baselines;
pub use gtd_core as protocol;
pub use gtd_netsim as netsim;
pub use gtd_snake as snake;

pub use gtd_core::{
    default_tick_budget, phase_breakdown, DecodeError, GtdError, GtdSession, MasterComputer,
    NetworkMap, PhaseBreakdown, PreconditionViolation, ProtocolNode, RunOutcome, RunStats,
    StartBehavior, TranscriptEvent, VerifyError,
};
pub use gtd_netsim::{
    algo, generators, Edge, Engine, EngineMode, NodeId, Port, Topology, TopologyBuilder,
};
pub use mapper::{
    all_mappers, FloodEchoMapper, GtdMapper, MapperError, MapperRun, RoutedDfsMapper,
    TopologyMapper,
};
