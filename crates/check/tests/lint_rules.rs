//! Per-rule lint tests: each rule fires on a minimal violating snippet
//! (and stays quiet on the clean twin), so a refactor that silently
//! disarms a rule fails here, not in a code review six months later.

use gtd_check::lint::{self, Workspace};
use gtd_check::{lint_with_allowlist, parse_allowlist};

/// Run the full lint over a synthetic workspace and keep one rule's hits.
fn findings(rule: &str, files: Vec<(&str, &str)>, readme: &str) -> Vec<lint::Violation> {
    lint::lint(&Workspace::synthetic(files, readme))
        .into_iter()
        .filter(|v| v.rule == rule)
        .collect()
}

/// A README that satisfies registry-sync (every registered name present),
/// so the other rules can be tested without registry noise.
fn full_readme() -> String {
    let mut readme = String::new();
    for m in gtd_netsim::MUTATION_REGISTRY {
        readme.push_str(m.name);
        readme.push('\n');
    }
    for f in gtd_netsim::spec::REGISTRY {
        readme.push_str(f.name);
        readme.push('\n');
    }
    for k in gtd_netsim::spec::FAULT_REGISTRY {
        readme.push_str(&format!("`{}`\n", k.name));
    }
    readme
}

/// An engine.rs snippet defining every scoped hot-path fn, with `tick`'s
/// body swappable so tests can plant a violation in it.
fn engine_with_tick(tick_body: &str) -> String {
    format!(
        r#"
        impl Engine {{
            pub fn new() -> Self {{ Engine {{ buf: Vec::new() }} }}
            pub fn tick(&mut self) {{ {tick_body} }}
            fn tick_dense(&mut self) {{}}
            fn tick_event(&mut self) {{}}
            fn tick_saturated(&mut self) {{}}
            fn rebuild_frontier(&mut self) {{}}
            fn run_phases(&mut self) {{}}
        }}
        unsafe fn shard_step(ctx: *const (), s: usize) {{}}
        unsafe fn shard_scatter(ctx: *const (), s: usize) {{}}
        unsafe fn shard_merge(ctx: *const (), s: usize) {{}}
        unsafe fn shard_step_all(ctx: *const (), s: usize) {{}}
        unsafe fn shard_gather(ctx: *const (), s: usize) {{}}
    "#
    )
}

#[test]
fn alloc_in_tick_path_is_flagged() {
    let engine = engine_with_tick("let v = vec![0u8; 4]; drop(v);");
    let hits = findings(
        "no-alloc-in-tick-path",
        vec![("crates/netsim/src/engine.rs", &engine)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("vec!"), "{}", hits[0]);
    assert!(hits[0].excerpt.contains("vec!"), "{}", hits[0]);
}

#[test]
fn alloc_outside_the_hot_path_is_fine() {
    // `Vec::new` in the constructor is out of scope; a clean tick passes.
    let engine = engine_with_tick("self.buf.clear();");
    let hits = findings(
        "no-alloc-in-tick-path",
        vec![("crates/netsim/src/engine.rs", &engine)],
        &full_readme(),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn moved_hot_path_is_itself_a_violation() {
    // The rule must not go quiet when the function it guards is renamed.
    let engine = "impl Engine { pub fn step_once(&mut self) {} }";
    let hits = findings(
        "no-alloc-in-tick-path",
        vec![("crates/netsim/src/engine.rs", engine)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 11, "one per scoped engine fn: {hits:?}");
    assert!(hits.iter().all(|v| v.message.contains("not found")));
}

#[test]
fn lock_in_pool_coordination_is_flagged_but_tests_are_exempt() {
    let pool = r#"
        use std::sync::Mutex;
        pub struct WorkerPool { guard: Mutex<()> }
        #[cfg(test)]
        mod tests {
            use std::sync::Mutex;
            #[test]
            fn test_side_lock() { let m = Mutex::new(()); drop(m.lock()); }
        }
    "#;
    let hits = findings(
        "no-lock-in-tick-path",
        vec![("crates/netsim/src/pool.rs", pool)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 2, "use + field; test mod exempt: {hits:?}");
    assert!(hits.iter().all(|v| v.message.contains("Mutex")));
}

#[test]
fn atomic_pool_coordination_is_clean() {
    let pool = r#"
        use std::sync::atomic::{AtomicU64, AtomicUsize};
        pub struct PoolShared { seq: AtomicU64, next: AtomicUsize }
    "#;
    let hits = findings(
        "no-lock-in-tick-path",
        vec![("crates/netsim/src/pool.rs", pool)],
        &full_readme(),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn lock_in_the_engine_dispatch_path_is_flagged() {
    let engine = engine_with_tick("self.guard.lock();");
    let hits = findings(
        "no-lock-in-tick-path",
        vec![("crates/netsim/src/engine.rs", &engine)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains(".lock()"), "{}", hits[0]);
}

#[test]
fn unwrap_on_a_wire_path_is_flagged_but_tests_are_exempt() {
    let protocol = r#"
        pub fn decode(line: &str) -> u64 {
            line.parse().unwrap()
        }
        #[cfg(test)]
        mod tests {
            #[test]
            fn ok() { assert_eq!(super::decode("7"), 7); }
            #[test]
            fn test_side_unwrap() { "9".parse::<u64>().unwrap(); }
        }
    "#;
    let hits = findings(
        "no-unwrap-in-wire-paths",
        vec![("crates/serve/src/protocol.rs", protocol)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 1, "test-mod unwrap must not count: {hits:?}");
    assert_eq!(hits[0].line, 3, "{}", hits[0]);
}

#[test]
fn panic_tokens_in_strings_and_comments_do_not_count() {
    let worker = r#"
        pub fn explain() -> &'static str {
            // a comment mentioning .unwrap() is documentation, not a panic
            "never call .unwrap() on wire input"
        }
    "#;
    let hits = findings(
        "no-unwrap-in-wire-paths",
        vec![("crates/serve/src/worker.rs", worker)],
        &full_readme(),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn clone_in_signal_code_is_flagged() {
    let snake = "pub fn forward(sig: &Signal) -> Signal { sig.clone() }";
    let hits = findings(
        "copy-sig-discipline",
        vec![("crates/snake/src/lib.rs", snake)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains(".clone()"));
}

#[test]
fn debug_assert_in_core_is_flagged() {
    let node = "pub fn on_signal(s: u8) { debug_assert!(s < 16); }";
    let hits = findings(
        "debug-assert-policy",
        vec![("crates/core/src/session.rs", node)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
}

#[test]
fn registry_drift_is_flagged() {
    // Two variants vs the real seven-entry registry: the counts disagree.
    let mutation = "pub enum MutationKind { DropEdge, AddEdge }";
    let hits = findings(
        "registry-sync",
        vec![("crates/netsim/src/mutation.rs", mutation)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert!(hits[0].message.contains("MUTATION_REGISTRY"), "{}", hits[0]);
}

#[test]
fn registry_names_missing_from_readme_are_flagged() {
    let hits = findings("registry-sync", vec![], "");
    let expected = gtd_netsim::MUTATION_REGISTRY.len()
        + gtd_netsim::spec::REGISTRY.len()
        + gtd_netsim::spec::FAULT_REGISTRY.len();
    assert_eq!(hits.len(), expected, "{hits:?}");
    assert!(hits.iter().all(|v| v.file == "README.md"));
}

#[test]
fn wallclock_in_the_brain_is_flagged() {
    let brain = r#"
        use std::time::Instant;
        pub struct State { started: Instant }
    "#;
    let hits = findings(
        "pure-brain-no-wallclock",
        vec![("crates/check/src/brain.rs", brain)],
        &full_readme(),
    );
    assert_eq!(hits.len(), 2, "use + field: {hits:?}");
    // Identifier boundaries: `Instant` must not fire inside a longer name.
    let clean = findings(
        "pure-brain-no-wallclock",
        vec![(
            "crates/check/src/brain.rs",
            "pub struct InstantaneousRate(f64);",
        )],
        &full_readme(),
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn every_registered_rule_has_a_firing_test() {
    // This file must grow with the registry: if a rule is added without a
    // violating-snippet test above, the count here goes stale on purpose.
    assert_eq!(lint::LINT_RULES.len(), 7);
}

#[test]
fn allowlist_suppresses_and_reports_stale() {
    let snake = "pub fn forward(sig: &Signal) -> Signal { sig.clone() }";
    let ws = Workspace::synthetic(vec![("crates/snake/src/lib.rs", snake)], &full_readme());
    let allow = parse_allowlist(
        "# comment\n\
         copy-sig-discipline crates/snake/src/lib.rs sig.clone\n\
         copy-sig-discipline crates/snake/src/gone.rs\n",
    );
    let outcome = lint_with_allowlist(&ws, &allow);
    assert_eq!(outcome.suppressed, 1);
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    assert_eq!(outcome.stale.len(), 1, "the gone.rs entry matches nothing");
    assert_eq!(outcome.stale[0].file, "crates/snake/src/gone.rs");
    assert!(!outcome.clean(), "stale entries fail the run");
}

#[test]
fn allowlist_substring_must_match() {
    let snake = "pub fn forward(sig: &Signal) -> Signal { sig.clone() }";
    let ws = Workspace::synthetic(vec![("crates/snake/src/lib.rs", snake)], &full_readme());
    let allow = parse_allowlist("copy-sig-discipline crates/snake/src/lib.rs other_site\n");
    let outcome = lint_with_allowlist(&ws, &allow);
    assert_eq!(outcome.suppressed, 0);
    assert_eq!(outcome.violations.len(), 1);
    assert_eq!(outcome.stale.len(), 1);
}
