//! The model checker's acceptance battery: the real brain survives an
//! exhaustive bounded sweep, and every invariant has teeth — each one
//! catches at least one deliberately broken coordinator (mutant).

use gtd_check::brain::Faults;
use gtd_check::model::{self, Config, INVARIANTS, MUTANT_MATRIX};

/// Debug-profile-sized sweep: still exhaustive over a meaningful space.
fn test_config() -> Config {
    Config {
        depth: 10,
        max_transitions: 120_000,
        ..Config::default()
    }
}

#[test]
fn real_coordinator_has_no_violations() {
    let report = model::sweep(test_config());
    assert!(
        report.violation.is_none(),
        "the fault-free brain violated an invariant:\n{}",
        report
            .violation
            .as_ref()
            .map(|v| v.to_string())
            .unwrap_or_default()
    );
    // Coverage floor: the sweep must be a real exploration, not a stub.
    assert!(
        report.transitions >= 10_000,
        "sweep too small to mean anything: {} transitions",
        report.transitions
    );
}

#[test]
fn every_mutant_is_caught_by_its_invariant() {
    for (mutant, arm, expected) in MUTANT_MATRIX {
        let mut cfg = test_config();
        arm(&mut cfg.faults);
        // A single re-issue must already overflow the cap for the
        // uncapped mutant to be reachable at small depth.
        if *mutant == "uncapped-reissue" {
            cfg.max_attempts = 1;
        }
        let report = model::sweep(cfg);
        let violation = report.violation.unwrap_or_else(|| {
            panic!(
                "mutant `{mutant}` survived {} transitions — invariant \
                 `{expected}` has no teeth",
                report.transitions
            )
        });
        assert_eq!(
            violation.invariant, *expected,
            "mutant `{mutant}` was caught, but by `{}` instead of `{expected}`:\n{violation}",
            violation.invariant
        );
        assert!(
            !violation.trace.is_empty(),
            "mutant `{mutant}`: violation carries no trace"
        );
    }
}

#[test]
fn matrix_covers_every_invariant() {
    for inv in INVARIANTS {
        assert!(
            MUTANT_MATRIX
                .iter()
                .any(|(_, _, caught)| caught == &inv.name),
            "invariant `{}` has no mutant proving it can fail",
            inv.name
        );
    }
    // And the faults the matrix arms are actually distinct.
    let mut seen = std::collections::BTreeSet::new();
    for (mutant, arm, _) in MUTANT_MATRIX {
        let mut faults = Faults::NONE;
        arm(&mut faults);
        assert_ne!(faults, Faults::NONE, "mutant `{mutant}` arms nothing");
        assert!(
            seen.insert(format!("{faults:?}")),
            "duplicate mutant `{mutant}`"
        );
    }
}
