//! Randomized property tests over the pure coordinator brain: seeded
//! [`DetRng`](gtd_netsim::rng::DetRng) event storms — joins, deaths,
//! duplicate and phantom results, clock jumps, overlapping grids — with
//! the safety invariants checked after every single step. No sockets,
//! no threads, no wall clock: a failure prints the seed that reproduces
//! it exactly.

use gtd_check::brain::{CellSeed, Effect, Event, Faults, Options, Slot, State};
use gtd_netsim::rng::DetRng;
use std::collections::BTreeMap;

const OPTS: Options = Options {
    max_attempts: 3,
    silence_ms: 25,
    grace_ms: 40,
};

/// Book-keeping mirrored from the observed effect stream (never from the
/// brain's internals), so the checks catch lies in the effects themselves.
#[derive(Default)]
struct Observed {
    /// CacheInsert count per (grid, slot).
    inserts: BTreeMap<(u64, usize), u32>,
    /// Next slot each grid is allowed to Emit.
    next_emit: BTreeMap<u64, usize>,
    /// Cells per grid still expected to finish.
    open: BTreeMap<u64, usize>,
    done: usize,
}

impl Observed {
    fn check(&mut self, state: &State, effects: &[Effect], seed: u64, step: usize) {
        let ctx = |extra: &dyn std::fmt::Display| format!("seed {seed}, step {step}: {extra}");
        for e in effects {
            match *e {
                Effect::GridStart { grid } => {
                    let cells = state.grid.as_ref().map_or(0, |g| g.slots.len());
                    self.open.insert(grid, cells);
                    self.next_emit.insert(grid, 0);
                }
                Effect::CacheInsert { grid, slot } => {
                    let n = self.inserts.entry((grid, slot)).or_insert(0);
                    *n += 1;
                    assert_eq!(*n, 1, "{}", ctx(&format_args!("slot {slot} cached twice")));
                }
                Effect::Emit { grid, slot } => {
                    let expect = self.next_emit.entry(grid).or_insert(0);
                    assert_eq!(
                        slot,
                        *expect,
                        "{}",
                        ctx(&format_args!("grid {grid} emitted out of order"))
                    );
                    *expect += 1;
                }
                Effect::GridDone { grid, cells, .. } => {
                    assert_eq!(
                        self.next_emit.get(&grid).copied().unwrap_or(0),
                        cells,
                        "{}",
                        ctx(&format_args!("grid {grid} done before its rows streamed"))
                    );
                    self.open.remove(&grid);
                    self.done += 1;
                }
                _ => {}
            }
        }
        // Lease-cap: no slot is ever attempted past the configured bound.
        if let Some(g) = &state.grid {
            for (slot, &a) in g.attempts.iter().enumerate() {
                assert!(
                    a <= state.opts.max_attempts,
                    "{}",
                    ctx(&format_args!(
                        "slot {slot} attempted {a} times (cap {})",
                        state.opts.max_attempts
                    ))
                );
            }
            // Every outstanding lease points at a currently-leased slot.
            for (&task, &slot) in &state.outstanding {
                assert!(
                    matches!(g.slots.get(slot), Some(Slot::Leased { task: t, .. }) if *t == task),
                    "{}",
                    ctx(&format_args!(
                        "lease {task} maps to a non-leased slot {slot}"
                    ))
                );
            }
        } else {
            assert!(
                state.outstanding.is_empty(),
                "{}",
                ctx(&"leases outstanding with no active grid")
            );
        }
    }
}

fn seeds(rng: &mut DetRng, cells: usize) -> Vec<CellSeed> {
    (0..cells)
        .map(|_| CellSeed {
            cached: rng.random_bool(0.25),
            lease_ms: 5 + u64::from(rng.random_range(0..20)),
        })
        .collect()
}

/// One random step: mostly plausible traffic, spiced with duplicates,
/// phantoms, and results from workers that never joined.
fn random_event(rng: &mut DetRng, state: &State, now_ms: &mut u64) -> Event {
    match rng.random_range(0..100) {
        0..15 => Event::WorkerJoin {
            id: u64::from(rng.random_range(1..6)),
        },
        15..25 => Event::WorkerSeen {
            id: u64::from(rng.random_range(1..6)),
        },
        25..35 => Event::WorkerGone {
            id: u64::from(rng.random_range(1..6)),
        },
        35..65 => {
            // A result: usually for a live lease, sometimes stale/phantom.
            let task = match state.outstanding.keys().next() {
                Some(&t) if rng.random_bool(0.8) => t,
                _ => u64::from(rng.random_range(0..50)),
            };
            let worker = match state.outstanding.get(&task) {
                Some(_) if rng.random_bool(0.9) => {
                    // The worker that actually holds a lease is busy.
                    state
                        .workers
                        .iter()
                        .find(|(_, w)| w.busy)
                        .map_or(99, |(&id, _)| id)
                }
                _ => u64::from(rng.random_range(1..8)),
            };
            Event::Result {
                worker,
                task,
                cacheable: rng.random_bool(0.7),
            }
        }
        65..80 => {
            *now_ms += u64::from(rng.random_range(1..30));
            Event::Tick { now_ms: *now_ms }
        }
        _ => {
            let cells = 1 + rng.random_range(0..3) as usize;
            Event::Submit {
                cells: seeds(rng, cells),
            }
        }
    }
}

#[test]
fn random_storms_preserve_every_safety_invariant() {
    for seed in 0..200 {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut state = State::new(OPTS, Faults::NONE);
        let mut obs = Observed::default();
        let mut now_ms = 0u64;
        for step in 0..400 {
            let event = random_event(&mut rng, &state, &mut now_ms);
            let effects = state.step(event);
            obs.check(&state, &effects, seed, step);
        }
        // Drain: every worker dies, the clock runs past every deadline
        // and the no-worker grace. All submitted grids must terminate.
        let ids: Vec<u64> = state.workers.keys().copied().collect();
        for (step, id) in ids.into_iter().enumerate() {
            let effects = state.step(Event::WorkerGone { id });
            obs.check(&state, &effects, seed, 1000 + step);
        }
        // Each backlogged grid needs its own no-worker grace window to
        // fail over, so tick until the brain goes idle (bounded).
        let mut round = 0;
        while state.grid.is_some() || !state.backlog.is_empty() {
            now_ms += OPTS.grace_ms + OPTS.silence_ms + 100;
            let effects = state.step(Event::Tick { now_ms });
            obs.check(&state, &effects, seed, 2000 + round);
            round += 1;
            assert!(round < 1000, "seed {seed}: drain did not converge");
        }
        assert!(
            state.grid.is_none() && state.backlog.is_empty(),
            "seed {seed}: grids survived the drain"
        );
        assert!(
            obs.open.is_empty(),
            "seed {seed}: grids started but never reported done: {:?}",
            obs.open
        );
    }
}

#[test]
fn storms_against_a_faulty_brain_still_terminate() {
    // Liveness only: with the safety faults armed the invariants are
    // expected to break (the model checker proves they do), but the
    // brain must never wedge or panic. `forget_revoked` is excluded
    // because losing a revoked cell from the queue genuinely kills
    // termination — that is the grid-terminates violation itself.
    let faults = Faults {
        accept_unleased: true,
        uncapped_reissue: true,
        forget_revoked: false,
        emit_on_completion: true,
        cache_uncacheable: true,
    };
    for seed in 0..50 {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut state = State::new(OPTS, faults);
        let mut now_ms = 0u64;
        for _ in 0..400 {
            let event = random_event(&mut rng, &state, &mut now_ms);
            state.step(event);
        }
        let ids: Vec<u64> = state.workers.keys().copied().collect();
        for id in ids {
            state.step(Event::WorkerGone { id });
        }
        let mut round = 0;
        while state.grid.is_some() || !state.backlog.is_empty() {
            now_ms += OPTS.grace_ms + OPTS.silence_ms + 100;
            state.step(Event::Tick { now_ms });
            round += 1;
            assert!(round < 1000, "seed {seed}: drain did not converge");
        }
        assert!(
            state.grid.is_none() && state.backlog.is_empty(),
            "seed {seed}: a faulty brain wedged instead of failing cells"
        );
    }
}

#[test]
fn identical_seeds_replay_identically() {
    // The checker's whole premise: the brain is a pure function of its
    // event sequence. Same seed, same storm, same effect stream.
    let run = |seed: u64| -> Vec<String> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut state = State::new(OPTS, Faults::NONE);
        let mut now_ms = 0;
        let mut log = Vec::new();
        for _ in 0..300 {
            let event = random_event(&mut rng, &state, &mut now_ms);
            log.extend(state.step(event).into_iter().map(|e| format!("{e:?}")));
        }
        log
    };
    for seed in [0, 7, 42] {
        assert_eq!(run(seed), run(seed), "seed {seed} diverged");
    }
}
