//! # gtd-check — correctness tooling for the gtd workspace
//!
//! Three pillars, std-only (this workspace builds fully offline):
//!
//! * [`brain`] — the campaign-service coordinator's decision core as a
//!   pure `step(&mut State, Event) -> Vec<Effect>` state machine.
//!   `gtd-serve` drives it against real sockets; the model checker
//!   drives it against every bounded event interleaving. Same code,
//!   both drivers.
//! * [`model`] — the bounded-exhaustive model checker: DFS over the
//!   adversarial event alphabet with state-hash pruning, an invariant
//!   battery ([`model::INVARIANTS`]), and a mutant matrix proving each
//!   invariant can actually fail.
//! * [`lint`] + [`lexer`] — `gtd-lint`, token-level repo-specific
//!   static analysis with a reviewed allowlist (`lint.allow`).
//!
//! Binaries: `gtd-lint` (the lint pass alone) and `gtd-check`
//! (`lint` / `model` / `sanitize` / `ci` / `list`).

pub mod brain;
pub mod lexer;
pub mod lint;
pub mod model;

pub use lint::{lint_with_allowlist, parse_allowlist, LintOutcome, LintRule, LINT_RULES};
pub use model::{Config as ModelConfig, Report as ModelReport, INVARIANTS};
