//! Exhaustive, bounded model checking of the coordinator brain.
//!
//! [`sweep`] explores every interleaving of an adversarial event
//! alphabet — worker joins, crashes, heartbeats, correct / duplicate /
//! phantom results, lease expiry, heartbeat silence, the no-worker
//! grace, and a second grid submission — over the *real* scheduling
//! code ([`brain::State::step`]), to a configurable depth, pruning
//! states already visited (DFS + state hashing). After every transition
//! it checks the invariant battery below; at every frontier state it
//! additionally runs a *drain*: crash all workers, let the failsafe
//! clock run, and require the grid to terminate.
//!
//! The checker has teeth: each invariant is paired with at least one
//! [`Faults`] toggle that re-introduces a historical bug, and the
//! mutant-matrix test asserts every toggle is caught (and the fault-free
//! brain is not). Liveness is checked under the fairness assumption
//! that a wedged worker eventually dies or answers — which is exactly
//! what the drain injects.

use crate::brain::{CellSeed, Effect, Event, Faults, Options, State};
use std::collections::{BTreeMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};

/// A machine-checked coordinator invariant. The registry feeds
/// `harness list` and the README table; the checks live in
/// [`Monitor::observe`] and [`drain`].
pub struct InvariantSpec {
    pub name: &'static str,
    pub summary: &'static str,
}

/// The invariant battery, in check order.
pub const INVARIANTS: &[InvariantSpec] = &[
    InvariantSpec {
        name: "grid-terminates",
        summary: "every submitted grid reaches done once wedged workers die, \
                  and finishes with zero outstanding leases",
    },
    InvariantSpec {
        name: "cache-discipline",
        summary: "a cell enters the cache at most once, and only from a \
                  cacheable accepted result",
    },
    InvariantSpec {
        name: "lease-cap",
        summary: "no cell is ever issued more than max_attempts leases",
    },
    InvariantSpec {
        name: "revoked-no-poison",
        summary: "a result for a revoked, completed, or never-issued lease is \
                  dropped — it cannot reach a slot or the cache",
    },
    InvariantSpec {
        name: "ordered-streaming",
        summary: "rows stream to the client in exact grid order, each exactly \
                  once, all before the done summary",
    },
];

/// Checker configuration. Times are logical quanta, deliberately tiny so
/// expiry/silence/grace interleavings appear within the depth bound.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Worker id universe (ids `1..=workers` may join, crash, rejoin).
    pub workers: u64,
    /// Cells in the primary grid.
    pub cells: usize,
    /// Leading cells of the primary grid marked as cache hits.
    pub cached: usize,
    /// Lease duration per cell.
    pub lease_ms: u64,
    pub max_attempts: u32,
    pub silence_ms: u64,
    pub grace_ms: u64,
    /// Maximum events along any single interleaving.
    pub depth: usize,
    /// Transition budget: exploration stops (reported as `truncated`)
    /// once this many `step` calls have been made.
    pub max_transitions: u64,
    /// Allow a second one-cell grid to be submitted mid-flight.
    pub second_grid: bool,
    pub faults: Faults,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            workers: 2,
            cells: 3,
            cached: 1,
            lease_ms: 10,
            silence_ms: 25,
            grace_ms: 40,
            max_attempts: 2,
            depth: 12,
            max_transitions: 200_000,
            second_grid: true,
            faults: Faults::NONE,
        }
    }
}

impl Config {
    fn options(&self) -> Options {
        Options {
            max_attempts: self.max_attempts,
            silence_ms: self.silence_ms,
            grace_ms: self.grace_ms,
        }
    }

    fn primary_seeds(&self) -> Vec<CellSeed> {
        (0..self.cells)
            .map(|i| CellSeed {
                cached: i < self.cached,
                lease_ms: self.lease_ms,
            })
            .collect()
    }
}

/// A failed invariant, with the event trace that reached it.
#[derive(Clone, Debug)]
pub struct Violation {
    pub invariant: &'static str,
    pub detail: String,
    /// The events from the initial state to the violation, rendered.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "invariant violated: {}", self.invariant)?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  trace ({} events):", self.trace.len())?;
        for (i, ev) in self.trace.iter().enumerate() {
            writeln!(f, "    {i:>3}. {ev}")?;
        }
        Ok(())
    }
}

/// What a sweep did and found.
#[derive(Debug)]
pub struct Report {
    /// Distinct states reached (after hashing/pruning).
    pub distinct_states: u64,
    /// `step` calls made — each extends a distinct event interleaving.
    pub transitions: u64,
    /// Drain procedures executed at frontier states.
    pub drains: u64,
    /// The transition budget ran out before the tree was exhausted.
    pub truncated: bool,
    /// The first invariant violation found, if any (exploration stops).
    pub violation: Option<Violation>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// The observer riding along with the state: everything the invariants
/// need to remember about effects already performed. Hashed together
/// with the state so pruning never merges observationally different
/// histories.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
struct Monitor {
    /// (grid, slot) → cache insertions seen.
    inserts: BTreeMap<(u64, usize), u32>,
    /// grid → next row the client must receive.
    next_emit: BTreeMap<u64, usize>,
    /// grid → cell count, recorded at GridStart, cleared at a clean
    /// GridDone. Anything left is a grid that never finished.
    open_grids: BTreeMap<u64, usize>,
}

impl Monitor {
    /// Check one transition's effects. `pre_live_lease` says whether a
    /// `Result` event's task id was outstanding before the step.
    fn observe(
        &mut self,
        after: &State,
        event: &Event,
        fx: &[Effect],
        pre_live_lease: bool,
    ) -> Result<(), (&'static str, String)> {
        if let Event::Result { task, .. } = event {
            if !pre_live_lease
                && fx
                    .iter()
                    .any(|e| matches!(e, Effect::Accept { .. } | Effect::CacheInsert { .. }))
            {
                return Err((
                    "revoked-no-poison",
                    format!("result for non-outstanding lease {task} was accepted"),
                ));
            }
        }
        for effect in fx {
            match *effect {
                Effect::GridStart { grid } => {
                    let cells = after
                        .grid
                        .as_ref()
                        .filter(|g| g.id == grid)
                        .map(|g| g.slots.len());
                    // GridStart for a grid that finished within the same
                    // step: the paired GridDone is in the same batch and
                    // will close it; record from the effect stream.
                    let cells = cells.unwrap_or_else(|| {
                        fx.iter()
                            .filter_map(|e| match e {
                                Effect::GridDone { grid: g, cells, .. } if *g == grid => {
                                    Some(*cells)
                                }
                                _ => None,
                            })
                            .next()
                            .unwrap_or(0)
                    });
                    self.open_grids.insert(grid, cells);
                }
                Effect::CacheInsert { grid, slot } => {
                    let seen = self.inserts.entry((grid, slot)).or_insert(0);
                    *seen += 1;
                    if *seen > 1 {
                        return Err((
                            "cache-discipline",
                            format!("grid {grid} slot {slot} cached {seen} times"),
                        ));
                    }
                    if !matches!(
                        event,
                        Event::Result {
                            cacheable: true,
                            ..
                        }
                    ) {
                        return Err((
                            "cache-discipline",
                            format!(
                                "grid {grid} slot {slot} cached from a non-cacheable result \
                                 (event {event:?})"
                            ),
                        ));
                    }
                }
                Effect::Emit { grid, slot } => {
                    let expected = self.next_emit.entry(grid).or_insert(0);
                    if slot != *expected {
                        return Err((
                            "ordered-streaming",
                            format!("grid {grid} emitted slot {slot}, client expected {expected}"),
                        ));
                    }
                    *expected += 1;
                }
                Effect::GridDone { grid, cells, .. } => {
                    let emitted = self.next_emit.get(&grid).copied().unwrap_or(0);
                    if emitted != cells {
                        return Err((
                            "ordered-streaming",
                            format!("grid {grid} done after {emitted}/{cells} rows"),
                        ));
                    }
                    if !after.outstanding.is_empty() && after.grid.is_none() {
                        return Err((
                            "grid-terminates",
                            format!(
                                "grid {grid} finished with {} outstanding lease(s)",
                                after.outstanding.len()
                            ),
                        ));
                    }
                    self.open_grids.remove(&grid);
                }
                _ => {}
            }
        }
        if let Some(grid) = &after.grid {
            if let Some(slot) = grid
                .attempts
                .iter()
                .position(|&a| a > after.opts.max_attempts)
            {
                return Err((
                    "lease-cap",
                    format!(
                        "slot {slot} reached {} leases (cap {})",
                        grid.attempts[slot], after.opts.max_attempts
                    ),
                ));
            }
        }
        Ok(())
    }
}

struct Explorer {
    cfg: Config,
    visited: HashSet<u64>,
    transitions: u64,
    drains: u64,
    truncated: bool,
    trace: Vec<String>,
    violation: Option<Violation>,
}

fn fingerprint(state: &State, monitor: &Monitor) -> u64 {
    // DefaultHasher is keyed with constants: fingerprints are stable
    // within and across runs. A 64-bit digest over ~1e6 states leaves
    // collision odds around 1e-7 — acceptable for a pruning set.
    let mut h = DefaultHasher::new();
    state.hash(&mut h);
    monitor.hash(&mut h);
    h.finish()
}

fn describe(event: &Event) -> String {
    match event {
        Event::WorkerJoin { id } => format!("worker {id} joins"),
        Event::WorkerSeen { id } => format!("worker {id} heartbeats"),
        Event::WorkerGone { id } => format!("worker {id} crashes (EOF)"),
        Event::Result {
            worker,
            task,
            cacheable,
        } => format!(
            "worker {worker} answers lease {task} ({})",
            if *cacheable { "ok" } else { "uncacheable" }
        ),
        Event::Submit { cells } => format!("client submits a {}-cell grid", cells.len()),
        Event::Tick { now_ms } => format!("clock reaches {now_ms} ms"),
    }
}

impl Explorer {
    /// One checked transition: step a cloned state, run the monitor,
    /// record a violation (with trace) if any.
    fn check_step(
        &mut self,
        state: &mut State,
        monitor: &mut Monitor,
        event: Event,
    ) -> Result<(), ()> {
        let pre_live_lease = match &event {
            Event::Result { task, .. } => state.outstanding.contains_key(task),
            _ => false,
        };
        let fx = state.step(event.clone());
        self.transitions += 1;
        if let Err((invariant, detail)) = monitor.observe(state, &event, &fx, pre_live_lease) {
            let mut trace = self.trace.clone();
            trace.push(describe(&event));
            self.violation = Some(Violation {
                invariant,
                detail,
                trace,
            });
            return Err(());
        }
        Ok(())
    }

    /// Fairness-closure at a frontier state: every wedged worker
    /// eventually dies, after which the failsafe clock must finish every
    /// grid that was ever submitted. This is the liveness check — a
    /// coordinator that can strand a cell (or a whole grid) fails here.
    fn drain(&mut self, state: &State, monitor: &Monitor) {
        self.drains += 1;
        let mut state = state.clone();
        let mut monitor = monitor.clone();
        let ids: Vec<u64> = state.workers.keys().copied().collect();
        for id in ids {
            self.trace.push("drain".into());
            let r = self.check_step(&mut state, &mut monitor, Event::WorkerGone { id });
            self.trace.pop();
            if r.is_err() {
                return;
            }
        }
        // Two ticks per grid arm + fire the no-worker grace; backlogged
        // grids start as each one fails out, so allow a few rounds.
        let mut rounds = 0usize;
        while state.grid.is_some() || !state.backlog.is_empty() {
            rounds += 1;
            if rounds > 4 * (2 + state.backlog.len() + self.cfg.cells) {
                self.violation = Some(Violation {
                    invariant: "grid-terminates",
                    detail: format!(
                        "grid stuck after all workers died and the grace period ran out \
                         ({} slot(s) unreachable)",
                        state
                            .grid
                            .as_ref()
                            .map(|g| {
                                g.slots
                                    .iter()
                                    .filter(|s| !matches!(s, crate::brain::Slot::Done))
                                    .count()
                            })
                            .unwrap_or(0)
                    ),
                    trace: {
                        let mut t = self.trace.clone();
                        t.push("drain: all workers die, grace elapses".into());
                        t
                    },
                });
                return;
            }
            let now = state.now_ms + self.cfg.grace_ms + 1;
            self.trace.push("drain".into());
            let r = self.check_step(&mut state, &mut monitor, Event::Tick { now_ms: now });
            self.trace.pop();
            if r.is_err() {
                return;
            }
        }
        if !monitor.open_grids.is_empty() {
            self.violation = Some(Violation {
                invariant: "grid-terminates",
                detail: format!("{} grid(s) never reached done", monitor.open_grids.len()),
                trace: self.trace.clone(),
            });
        }
    }

    /// The adversary: every event that could plausibly arrive now.
    fn enabled_events(&self, state: &State) -> Vec<Event> {
        let cfg = &self.cfg;
        let mut events = Vec::new();
        for id in 1..=cfg.workers {
            if !state.workers.contains_key(&id) {
                events.push(Event::WorkerJoin { id });
            }
        }
        for &id in state.workers.keys() {
            events.push(Event::WorkerSeen { id });
            events.push(Event::WorkerGone { id });
        }
        // Correct results for live leases, both cacheable and not.
        for (&task, &slot) in &state.outstanding {
            if let Some(grid) = &state.grid {
                if let crate::brain::Slot::Leased { worker, .. } = grid.slots[slot] {
                    events.push(Event::Result {
                        worker,
                        task,
                        cacheable: true,
                    });
                    events.push(Event::Result {
                        worker,
                        task,
                        cacheable: false,
                    });
                }
            }
        }
        // Duplicates / late answers: replay the two most recent retired
        // lease ids. Phantom: an id never issued.
        let from = state.workers.keys().next().copied().unwrap_or(7);
        let mut replayed = 0;
        for task in (1..state.next_task).rev() {
            if state.outstanding.contains_key(&task) {
                continue;
            }
            events.push(Event::Result {
                worker: from,
                task,
                cacheable: true,
            });
            replayed += 1;
            if replayed == 2 {
                break;
            }
        }
        events.push(Event::Result {
            worker: from,
            task: state.next_task + 999,
            cacheable: true,
        });
        // Clock jumps that cross each threshold.
        for dt in [cfg.lease_ms + 1, cfg.silence_ms + 1, cfg.grace_ms + 1] {
            events.push(Event::Tick {
                now_ms: state.now_ms + dt,
            });
        }
        // A second grid submitted mid-flight.
        if cfg.second_grid && state.next_grid + state.backlog.len() as u64 <= 2 {
            events.push(Event::Submit {
                cells: vec![CellSeed {
                    cached: false,
                    lease_ms: cfg.lease_ms,
                }],
            });
        }
        events
    }

    fn explore(&mut self, state: &State, monitor: &Monitor, depth: usize) {
        if self.violation.is_some() {
            return;
        }
        if self.transitions >= self.cfg.max_transitions {
            self.truncated = true;
            return;
        }
        if depth >= self.cfg.depth {
            self.drain(state, monitor);
            return;
        }
        for event in self.enabled_events(state) {
            if self.violation.is_some() || self.transitions >= self.cfg.max_transitions {
                return;
            }
            let mut next = state.clone();
            let mut next_monitor = monitor.clone();
            if self
                .check_step(&mut next, &mut next_monitor, event.clone())
                .is_err()
            {
                return;
            }
            if self.visited.insert(fingerprint(&next, &next_monitor)) {
                self.trace.push(describe(&event));
                self.explore(&next, &next_monitor, depth + 1);
                self.trace.pop();
            }
        }
    }
}

/// Run a bounded-exhaustive sweep and report what it found.
pub fn sweep(cfg: Config) -> Report {
    let mut explorer = Explorer {
        cfg,
        visited: HashSet::new(),
        transitions: 0,
        drains: 0,
        truncated: false,
        trace: Vec::new(),
        violation: None,
    };
    let mut state = State::new(cfg.options(), cfg.faults);
    let mut monitor = Monitor::default();
    if explorer
        .check_step(
            &mut state,
            &mut monitor,
            Event::Submit {
                cells: cfg.primary_seeds(),
            },
        )
        .is_ok()
    {
        explorer.visited.insert(fingerprint(&state, &monitor));
        explorer.trace.push(describe(&Event::Submit {
            cells: cfg.primary_seeds(),
        }));
        explorer.explore(&state, &monitor, 0);
        explorer.trace.pop();
    }
    Report {
        distinct_states: explorer.visited.len() as u64,
        transitions: explorer.transitions,
        drains: explorer.drains,
        truncated: explorer.truncated,
        violation: explorer.violation,
    }
}

/// One mutant: its name, the fault toggle that arms it, and the
/// invariant expected to catch it.
pub type MutantArm = (&'static str, fn(&mut Faults), &'static str);

/// The fault → invariant pairing the mutant-matrix test asserts. Every
/// invariant name in [`INVARIANTS`] appears at least once on the right.
pub const MUTANT_MATRIX: &[MutantArm] = &[
    (
        "accept-unleased",
        |f| f.accept_unleased = true,
        "revoked-no-poison",
    ),
    (
        "uncapped-reissue",
        |f| f.uncapped_reissue = true,
        "lease-cap",
    ),
    (
        "forget-revoked",
        |f| f.forget_revoked = true,
        "grid-terminates",
    ),
    (
        "emit-on-completion",
        |f| f.emit_on_completion = true,
        "ordered-streaming",
    ),
    (
        "cache-uncacheable",
        |f| f.cache_uncacheable = true,
        "cache-discipline",
    ),
];
