//! A deliberately small Rust source scrubber for token-level lints.
//!
//! [`scrub`] returns a same-length copy of the source with comment
//! bodies and string/char literal contents blanked (delimiters kept), so
//! byte offsets and line numbers survive and a token search cannot be
//! fooled by `// .unwrap() is banned here` or `"format!"` in a message.
//! [`fn_body`] and [`test_regions`] then carve out the byte ranges rules
//! scope themselves to, by brace matching over the scrubbed text.
//!
//! This is not a parser — macros, `cfg_attr`, and exotic raw-identifier
//! tricks can evade it. That is fine: the lint is a tripwire for honest
//! drift, not a security boundary, and the rules it backs are also
//! covered by clippy policy and runtime asserts.

use std::ops::Range;

/// Blank comments and literal contents, preserving length and newlines.
pub fn scrub(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    blank(&mut out, i);
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                blank(&mut out, i);
                blank(&mut out, i + 1);
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        blank(&mut out, i + 1);
                        i += 1;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        blank(&mut out, i + 1);
                        i += 1;
                    }
                    blank(&mut out, i.min(bytes.len() - 1));
                    i += 1;
                }
            }
            b'r' | b'b' if raw_string_hashes(bytes, i).is_some() => {
                // r"..", r#".."#, br".." — blank through the matching
                // closing quote + hashes.
                let (start, hashes) = raw_string_hashes(bytes, i).unwrap_or((i, 0));
                i = start + 1; // past the opening quote
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    if bytes[i] == b'"' && closes_raw(bytes, i, hashes) {
                        i += 1 + hashes;
                        break;
                    }
                    blank(&mut out, i);
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        blank(&mut out, i);
                        i += 1;
                    }
                    if i < bytes.len() {
                        blank(&mut out, i);
                    }
                    i += 1;
                }
                i += 1;
            }
            b'\'' => {
                // Char literal or lifetime. A lifetime has no closing
                // quote within a couple of characters.
                if bytes.get(i + 1) == Some(&b'\\') {
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        blank(&mut out, i);
                        i += 1;
                    }
                    i += 1;
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    blank(&mut out, i + 1);
                    i += 3;
                } else {
                    i += 1; // lifetime: leave as-is
                }
            }
            _ => i += 1,
        }
    }
    // Blanking replaced bytes with spaces; the vec is valid ASCII where
    // modified and untouched UTF-8 elsewhere.
    String::from_utf8(out).unwrap_or_default()
}

fn blank(out: &mut [u8], i: usize) {
    if out[i] != b'\n' {
        out[i] = b' ';
    }
}

/// If `i` starts a raw (byte) string, return (index of the opening
/// quote, number of hashes).
fn raw_string_hashes(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some((j, hashes))
}

fn closes_raw(bytes: &[u8], quote: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(quote + k) == Some(&b'#'))
}

/// 1-based line number of a byte offset.
pub fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// The body range `{ ... }` of the first function named `name` in
/// scrubbed source. `None` when the function is missing (rules treat
/// that as a violation: a renamed hot path silently un-scopes the lint).
pub fn fn_body(scrubbed: &str, name: &str) -> Option<Range<usize>> {
    let bytes = scrubbed.as_bytes();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find("fn ") {
        let at = from + pos;
        from = at + 3;
        // `fn` must be a word of its own (not `crate_fn `).
        if at > 0 && is_ident(bytes[at - 1]) {
            continue;
        }
        let mut j = at + 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let start = j;
        while j < bytes.len() && is_ident(bytes[j]) {
            j += 1;
        }
        if &scrubbed[start..j] != name {
            continue;
        }
        // Find the body's opening brace; a `;` first means a declaration.
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] == b';' {
            continue;
        }
        if let Some(close) = match_brace(bytes, k) {
            return Some(k..close + 1);
        }
    }
    None
}

/// Byte ranges of `#[cfg(test)] mod … { … }` blocks: rules about
/// production code skip these.
pub fn test_regions(scrubbed: &str) -> Vec<Range<usize>> {
    let bytes = scrubbed.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = scrubbed[from..].find("#[cfg(test)]") {
        let at = from + pos;
        from = at + 12;
        // Skip whitespace and further attributes, then require `mod`.
        let mut j = from;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') {
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
                continue;
            }
            break;
        }
        if !scrubbed[j..].starts_with("mod") {
            continue;
        }
        let mut k = j;
        while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
            k += 1;
        }
        if k >= bytes.len() || bytes[k] == b';' {
            continue;
        }
        if let Some(close) = match_brace(bytes, k) {
            regions.push(at..close + 1);
            from = close + 1;
        }
    }
    regions
}

/// Count the top-level (depth-0 comma) variants of `enum name { … }`.
pub fn enum_variants(scrubbed: &str, name: &str) -> Option<usize> {
    let probe = format!("enum {name}");
    let at = scrubbed.find(&probe)?;
    let bytes = scrubbed.as_bytes();
    let mut k = at + probe.len();
    if k < bytes.len() && is_ident(bytes[k]) {
        return None; // matched a longer name
    }
    while k < bytes.len() && bytes[k] != b'{' {
        k += 1;
    }
    let close = match_brace(bytes, k)?;
    let body = &scrubbed[k + 1..close];
    let mut depth = 0usize;
    let mut count = 0usize;
    let mut seen_token = false;
    for b in body.bytes() {
        match b {
            b'{' | b'(' | b'[' | b'<' => depth += 1,
            b'}' | b')' | b']' | b'>' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                if seen_token {
                    count += 1;
                }
                seen_token = false;
            }
            b if !b.is_ascii_whitespace() => seen_token = true,
            _ => {}
        }
    }
    if seen_token {
        count += 1; // no trailing comma
    }
    Some(count)
}

fn match_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let a = \"x.unwrap()\"; // .clone() here\nlet b = 1;";
        let s = scrub(src);
        assert_eq!(s.len(), src.len());
        assert!(!s.contains(".unwrap()"));
        assert!(!s.contains(".clone()"));
        assert!(s.contains("let b = 1;"));
    }

    #[test]
    fn scrub_handles_raw_strings_chars_and_lifetimes() {
        let src = "let r = r#\"Vec::new()\"#; let c = '\\n'; fn f<'a>(x: &'a str) {}";
        let s = scrub(src);
        assert!(!s.contains("Vec::new"));
        assert!(s.contains("fn f<'a>(x: &'a str) {}"));
    }

    #[test]
    fn fn_body_requires_exact_name() {
        let src = "fn tick_count() { a(); } fn tick() { b(); }";
        let body = fn_body(src, "tick").expect("found");
        assert!(src[body].contains("b()"));
        assert!(fn_body(src, "missing").is_none());
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        let regions = test_regions(src);
        assert_eq!(regions.len(), 1);
        let at = src.find(".unwrap").expect("present");
        assert!(regions[0].contains(&at));
    }

    #[test]
    fn enum_variants_counts_payload_variants() {
        let src = "pub enum Kind { A, B { n: u32, m: u32 }, C(usize), D }";
        assert_eq!(enum_variants(src, "Kind"), Some(4));
    }
}
