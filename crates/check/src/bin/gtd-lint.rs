//! `gtd-lint` — run the repo-specific lint rules over the workspace.
//!
//! Exit status 0 only when the tree is clean: zero unsuppressed
//! violations *and* zero stale `lint.allow` entries. Failure output
//! names `rule: file:line` so CI logs point straight at the finding.

use gtd_check::lint;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "gtd-lint [--root DIR] [--allow FILE]\n\n\
                     Repo-specific static analysis. Rules and rationale: \
                     `gtd-check list`, or the README's Correctness tooling section."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gtd-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));
    run(&root, &allow_path)
}

/// Default to the workspace this binary was built from.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run(root: &std::path::Path, allow_path: &std::path::Path) -> ExitCode {
    let ws = match lint::Workspace::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("gtd-lint: cannot load workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let allow_text = std::fs::read_to_string(allow_path).unwrap_or_default();
    let allow = lint::parse_allowlist(&allow_text);
    let outcome = lint::lint_with_allowlist(&ws, &allow);
    for v in &outcome.violations {
        println!("{v}");
    }
    for a in &outcome.stale {
        println!(
            "stale-allow: lint.allow:{}: `{} {}{}` matched nothing — remove it",
            a.line,
            a.rule,
            a.file,
            a.substring
                .as_deref()
                .map(|s| format!(" {s}"))
                .unwrap_or_default()
        );
    }
    println!(
        "gtd-lint: {} file(s), {} rule(s), {} violation(s), {} suppressed, {} stale allow(s)",
        outcome.files_scanned,
        gtd_check::LINT_RULES.len(),
        outcome.violations.len(),
        outcome.suppressed,
        outcome.stale.len()
    );
    if outcome.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
