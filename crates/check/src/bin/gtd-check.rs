//! `gtd-check` — the correctness-tooling driver.
//!
//! Subcommands:
//!
//! * `lint` — the repo-specific lint pass (same as `gtd-lint`).
//! * `model` — bounded-exhaustive model check of the coordinator brain.
//! * `sanitize` — Miri and ThreadSanitizer passes, detected at runtime
//!   and skipped with a visible notice when the toolchain lacks them.
//! * `ci` — lint + model + sanitize, the order CI runs them.
//! * `list` — the lint-rule and invariant registries.

use gtd_check::model;
use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ok = match args.first().map(String::as_str) {
        Some("lint") => run_lint(&workspace_root()),
        Some("model") => match parse_model_args(&args[1..]) {
            Some((cfg, floor)) => run_model(cfg, floor),
            None => false,
        },
        Some("sanitize") => run_sanitize(&workspace_root()),
        Some("ci") => run_ci(&args[1..]),
        Some("list") => {
            list();
            true
        }
        _ => {
            println!(
                "gtd-check <command>\n\n\
                 commands:\n  \
                 lint      run the repo-specific lint rules (also: gtd-lint)\n  \
                 model     bounded-exhaustive model check of the coordinator brain\n  \
                 sanitize  Miri + ThreadSanitizer passes (skipped without the toolchain)\n  \
                 ci        lint + model + sanitize\n  \
                 list      lint rules and model-checker invariants"
            );
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace this binary was built from.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(root: &std::path::Path) -> bool {
    let ws = match gtd_check::lint::Workspace::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("gtd-check lint: cannot load workspace: {e}");
            return false;
        }
    };
    let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allow = gtd_check::parse_allowlist(&allow_text);
    let outcome = gtd_check::lint_with_allowlist(&ws, &allow);
    for v in &outcome.violations {
        println!("{v}");
    }
    for a in &outcome.stale {
        println!(
            "stale-allow: lint.allow:{}: `{} {}` matched nothing — remove it",
            a.line, a.rule, a.file
        );
    }
    println!(
        "lint: {} file(s), {} violation(s), {} suppressed, {} stale",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.suppressed,
        outcome.stale.len()
    );
    outcome.clean()
}

/// Parse `model` flags into a config plus a coverage floor
/// (`--min-transitions`): fail the run if exploration stayed smaller.
fn parse_model_args(args: &[String]) -> Option<(model::Config, u64)> {
    // CI-sized default: exhaust a deeper space than the in-test sweep.
    let mut cfg = model::Config {
        depth: 14,
        max_transitions: 2_000_000,
        ..model::Config::default()
    };
    let mut floor = 0u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--no-second-grid" {
            cfg.second_grid = false;
            continue;
        }
        let Some(value) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
            eprintln!("gtd-check model: `{arg}` needs a numeric value");
            return None;
        };
        match arg.as_str() {
            "--cells" => cfg.cells = value as usize,
            "--cached" => cfg.cached = value as usize,
            "--workers" => cfg.workers = value,
            "--depth" => cfg.depth = value as usize,
            "--max-attempts" => cfg.max_attempts = value as u32,
            "--max-transitions" => cfg.max_transitions = value,
            "--min-transitions" => floor = value,
            other => {
                eprintln!("gtd-check model: unknown argument `{other}`");
                return None;
            }
        }
    }
    Some((cfg, floor))
}

fn run_model(cfg: model::Config, floor: u64) -> bool {
    println!(
        "model: exploring <={} events deep, {} worker id(s), {}-cell grid ({} cached){}",
        cfg.depth,
        cfg.workers,
        cfg.cells,
        cfg.cached,
        if cfg.second_grid {
            ", second grid enabled"
        } else {
            ""
        }
    );
    let t0 = Instant::now();
    let report = model::sweep(cfg);
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "model: {} transition(s) over {} distinct state(s), {} drain(s), {secs:.1}s{}",
        report.transitions,
        report.distinct_states,
        report.drains,
        if report.truncated {
            " (transition budget reached)"
        } else {
            " (state space exhausted)"
        }
    );
    if let Some(v) = &report.violation {
        println!("{v}");
        return false;
    }
    println!("model: all {} invariant(s) hold", model::INVARIANTS.len());
    if report.transitions < floor {
        println!(
            "model: FAILED coverage floor: {} < required {floor} transitions",
            report.transitions
        );
        return false;
    }
    true
}

/// Result of trying one sanitizer pass.
enum Sanitizer {
    Ran(bool),
    Skipped(String),
}

fn run_sanitize(root: &std::path::Path) -> bool {
    let mut ok = true;
    for (name, result) in [("miri", miri(root)), ("tsan", tsan(root))] {
        match result {
            Sanitizer::Ran(true) => println!("sanitize: {name}: PASS"),
            Sanitizer::Ran(false) => {
                println!("sanitize: {name}: FAIL");
                ok = false;
            }
            Sanitizer::Skipped(why) => {
                println!("sanitize: {name}: SKIPPED — {why} (advisory pass, not a failure)");
            }
        }
    }
    ok
}

/// Miri over the snake/netsim unit suites (UB detection on the engine's
/// index-heavy inner loops).
fn miri(root: &std::path::Path) -> Sanitizer {
    let probe = Command::new("cargo")
        .args(["miri", "--version"])
        .current_dir(root)
        .output();
    match probe {
        Ok(out) if out.status.success() => {}
        _ => {
            return Sanitizer::Skipped(
                "cargo miri not installed (rustup +nightly component add miri)".into(),
            )
        }
    }
    let status = Command::new("cargo")
        .args([
            "miri",
            "test",
            "-p",
            "gtd-snake",
            "-p",
            "gtd-netsim",
            "--lib",
        ])
        .current_dir(root)
        .status();
    Sanitizer::Ran(status.map(|s| s.success()).unwrap_or(false))
}

/// ThreadSanitizer build of the serve fault-injection test (the one
/// place real threads, sockets, and kill -9 meet).
fn tsan(root: &std::path::Path) -> Sanitizer {
    let nightly = Command::new("cargo")
        .args(["+nightly", "--version"])
        .current_dir(root)
        .output();
    match nightly {
        Ok(out) if out.status.success() => {}
        _ => return Sanitizer::Skipped("nightly toolchain not installed (-Zsanitizer)".into()),
    }
    let host = Command::new("rustc")
        .arg("-vV")
        .output()
        .ok()
        .and_then(|o| {
            String::from_utf8(o.stdout).ok().and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
            })
        });
    let Some(host) = host else {
        return Sanitizer::Skipped("cannot determine host triple from rustc -vV".into());
    };
    // TSan must instrument std too, which means -Zbuild-std — and that
    // needs the nightly rust-src component on disk.
    let sysroot = Command::new("rustc")
        .args(["+nightly", "--print", "sysroot"])
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string());
    let has_src = sysroot.as_ref().is_some_and(|s| {
        std::path::Path::new(s)
            .join("lib/rustlib/src/rust/library/std/Cargo.toml")
            .exists()
    });
    if !has_src {
        return Sanitizer::Skipped(
            "nightly rust-src not installed (rustup +nightly component add rust-src)".into(),
        );
    }
    let status = Command::new("cargo")
        .args([
            "+nightly",
            "test",
            "-Zbuild-std",
            "-p",
            "gtd-serve",
            "--test",
            "fault_injection",
            "--target",
            &host,
        ])
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        .current_dir(root)
        .status();
    Sanitizer::Ran(status.map(|s| s.success()).unwrap_or(false))
}

fn run_ci(args: &[String]) -> bool {
    let root = workspace_root();
    println!("== gtd-check ci: lint ==");
    let lint_ok = run_lint(&root);
    println!("== gtd-check ci: model ==");
    let model_ok = match parse_model_args(args) {
        Some((cfg, floor)) => run_model(cfg, floor),
        None => false,
    };
    println!("== gtd-check ci: sanitize ==");
    let san_ok = run_sanitize(&root);
    let ok = lint_ok && model_ok && san_ok;
    println!(
        "gtd-check ci: {}",
        if ok {
            "all passes green"
        } else {
            "FAILED (see passes above)"
        }
    );
    ok
}

fn list() {
    println!("lint rules (gtd-lint, allowlist: lint.allow):");
    for rule in gtd_check::LINT_RULES {
        println!("  {:<24} {}", rule.name, rule.summary);
    }
    println!();
    println!("model-checker invariants (gtd-check model):");
    for inv in model::INVARIANTS {
        println!("  {:<24} {}", inv.name, inv.summary);
    }
}
