//! The coordinator's decision core as a pure, deterministic state
//! machine.
//!
//! [`State::step`] *is* the scheduling brain of the campaign service:
//! the worker registry, leases, quarantine, bounded re-issue, the
//! no-worker failsafe, and grid-order streaming are all decided here,
//! with I/O expressed as returned [`Effect`]s. Two drivers share it:
//!
//! * `gtd-serve`'s coordinator thread is a thin shell that translates
//!   sockets and timers into [`Event`]s and performs the effects on
//!   real streams and files;
//! * the [model checker](crate::model) exhaustively explores the same
//!   transitions under adversarial event interleavings.
//!
//! One implementation, two drivers — which is what makes the checker's
//! verdict about the live service meaningful.
//!
//! # Purity rules
//!
//! Enforced by the `pure-brain-no-wallclock` lint rule: no wall clock
//! (time is a millisecond counter fed in through [`Event::Tick`]), no
//! threads, no sockets, and only deterministically ordered containers
//! (`BTreeMap`/`VecDeque`, never `HashMap`) so state hashing and event
//! replay are exact.
//!
//! # Known abstractions (shell ↔ brain)
//!
//! * Time has tick granularity (the shell ticks every 200 ms); real
//!   lease and silence windows are ≥ 2 s, so the coarsening is safe.
//! * The shell decides cache hits (`CellSeed::cached`) when a grid
//!   *starts*, exactly like the pre-extraction coordinator.
//! * A lease id is consumed even if the assignment write fails (the
//!   shell reports the failure as a `WorkerGone`, which revokes and
//!   re-queues the cell). The pre-extraction coordinator retried the
//!   write without burning an attempt; the observable difference is one
//!   extra unit of `attempts`/`retries` on a write race, never a lost
//!   or reordered row.

use std::collections::{BTreeMap, VecDeque};

/// Scheduling knobs, in logical milliseconds. The shell fills these from
/// `ServeOptions`; the model checker shrinks them to single-digit quanta
/// so interesting interleavings appear at small depths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Options {
    /// Total leases per cell before it fails as `worker-lost`.
    pub max_attempts: u32,
    /// A worker silent longer than this is declared dead.
    pub silence_ms: u64,
    /// How long live cells may starve with zero workers connected.
    pub grace_ms: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_attempts: 3,
            silence_ms: 5_000,
            grace_ms: 15_000,
        }
    }
}

/// Mutation-testing switches: each one re-introduces a scheduling bug
/// the coordinator is supposed to be immune to. The live service always
/// runs with [`Faults::NONE`]; the model checker flips them one at a
/// time to prove every invariant can actually fail (`teeth` — see the
/// mutant matrix test).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Faults {
    /// Skip the outstanding-lease gate: accept any result whose lease id
    /// was *ever* issued, even after revocation (PR 6's phantom/duplicate
    /// cache-poisoning hazard).
    pub accept_unleased: bool,
    /// Ignore `max_attempts` when revoking: re-queue forever.
    pub uncapped_reissue: bool,
    /// Drop a revoked cell on the floor instead of re-queueing it.
    pub forget_revoked: bool,
    /// Stream rows the moment they complete instead of in grid order.
    pub emit_on_completion: bool,
    /// Cache results even when the record is not cacheable (errors,
    /// timeouts).
    pub cache_uncacheable: bool,
}

impl Faults {
    /// No faults: the production configuration.
    pub const NONE: Faults = Faults {
        accept_unleased: false,
        uncapped_reissue: false,
        forget_revoked: false,
        emit_on_completion: false,
        cache_uncacheable: false,
    };
}

/// What the brain needs to know about one grid cell: whether the shell
/// found it in cache at grid start, and its lease duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellSeed {
    /// Cache hit at grid start: the slot is born `Done`.
    pub cached: bool,
    /// Lease duration when issued (tick-budget derivation or override).
    pub lease_ms: u64,
}

/// Why a cell's lease was taken back or abandoned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoseReason {
    /// The holding worker died (EOF, heartbeat silence, or write error).
    WorkerDied,
    /// The lease deadline passed with no answer.
    LeaseExpired,
    /// The no-worker grace period ran out.
    NoWorkers,
}

impl LoseReason {
    /// The phrasing the service journal and `worker-lost` records use.
    pub fn why(self) -> &'static str {
        match self {
            LoseReason::WorkerDied => "its worker died",
            LoseReason::LeaseExpired => "its lease expired",
            LoseReason::NoWorkers => "no workers are connected",
        }
    }
}

/// An input to the brain. The shell translates I/O into these; the model
/// checker enumerates them adversarially.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Event {
    /// A worker connection greeted successfully.
    WorkerJoin { id: u64 },
    /// The worker sent *something* (heartbeat, error chatter): liveness.
    WorkerSeen { id: u64 },
    /// EOF / connection error / write failure: the worker is gone.
    WorkerGone { id: u64 },
    /// A result message carrying lease id `task`.
    Result {
        worker: u64,
        task: u64,
        cacheable: bool,
    },
    /// A planned grid joins the queue (one seed per cell, grid order).
    Submit { cells: Vec<CellSeed> },
    /// The clock advanced. `now_ms` is monotone; stale ticks are no-ops.
    Tick { now_ms: u64 },
}

/// An output of the brain: the I/O the shell must now perform. Grid ids
/// are carried so the model checker can attribute effects across
/// back-to-back grids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Effect {
    /// Send the welcome handshake to a freshly joined worker.
    Welcome { worker: u64 },
    /// Send cell `slot` of the active grid to `worker` as lease `task`.
    Assign {
        grid: u64,
        worker: u64,
        task: u64,
        slot: usize,
    },
    /// A result for live lease `task` was accepted into `slot`.
    Accept {
        grid: u64,
        worker: u64,
        task: u64,
        slot: usize,
    },
    /// Insert the accepted record into the cell cache (and journal).
    CacheInsert { grid: u64, slot: usize },
    /// A result arrived for a lease that is not outstanding (late,
    /// duplicate, or phantom): ignore it.
    DropResult { worker: u64, task: u64 },
    /// Cell `slot` is abandoned as a `worker-lost` record.
    Fail {
        grid: u64,
        slot: usize,
        attempts: u32,
        reason: LoseReason,
    },
    /// A queued grid became the active grid.
    GridStart { grid: u64 },
    /// Stream row `slot` to the grid's client.
    Emit { grid: u64, slot: usize },
    /// The active grid finished; send the done summary and retire it.
    GridDone {
        grid: u64,
        cells: usize,
        cached: usize,
        retries: u64,
    },
}

/// One grid slot's lifecycle, minus the record payload (the shell keeps
/// records; the brain only schedules).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Slot {
    Pending,
    Leased {
        task: u64,
        worker: u64,
        deadline_ms: u64,
    },
    Done,
}

/// A connected worker, as the brain sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WorkerState {
    /// Has an outstanding assignment. Stays `true` after a lease is
    /// revoked (quarantine): a stalled worker gets no new cells until it
    /// answers *something* or dies.
    pub busy: bool,
    pub last_seen_ms: u64,
}

/// The active grid's scheduling state.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Grid {
    pub id: u64,
    pub seeds: Vec<CellSeed>,
    pub slots: Vec<Slot>,
    /// Leases issued per slot (first issue + re-issues).
    pub attempts: Vec<u32>,
    /// Slots awaiting assignment. Revoked cells re-enter at the front:
    /// the client is likely blocked on them (rows stream in grid order).
    pub queue: VecDeque<usize>,
    /// Which rows have streamed to the client.
    pub emitted: Vec<bool>,
    /// The next row to stream (grid order).
    pub next_emit: usize,
    /// Cells served from cache at grid start.
    pub cached: usize,
    /// Total lease revocations.
    pub retries: u64,
}

/// The complete coordinator state. `Hash`/`Eq` are exact (every field is
/// deterministic data), which is what lets the model checker prune
/// revisited states.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct State {
    pub opts: Options,
    pub faults: Faults,
    /// Logical clock; advances only via [`Event::Tick`].
    pub now_ms: u64,
    pub workers: BTreeMap<u64, WorkerState>,
    pub grid: Option<Grid>,
    pub backlog: VecDeque<Vec<CellSeed>>,
    /// Live lease id → slot of the active grid. A result whose id is not
    /// here is late or duplicated and is ignored.
    pub outstanding: BTreeMap<u64, usize>,
    /// Every lease ever issued → (grid, slot). Populated only under the
    /// `accept_unleased` fault, where it models a coordinator that never
    /// forgets a lease; empty (zero cost) in production.
    pub issued: BTreeMap<u64, (u64, usize)>,
    pub next_task: u64,
    pub next_grid: u64,
    pub no_workers_since_ms: Option<u64>,
}

impl State {
    pub fn new(opts: Options, faults: Faults) -> State {
        State {
            opts,
            faults,
            now_ms: 0,
            workers: BTreeMap::new(),
            grid: None,
            backlog: VecDeque::new(),
            outstanding: BTreeMap::new(),
            issued: BTreeMap::new(),
            next_task: 1,
            next_grid: 1,
            no_workers_since_ms: None,
        }
    }

    /// Apply one event and return the I/O it implies, in order. This is
    /// the whole coordinator: every scheduling decision the service
    /// makes goes through here.
    pub fn step(&mut self, event: Event) -> Vec<Effect> {
        let mut fx = Vec::new();
        match event {
            Event::WorkerJoin { id } => {
                self.workers.insert(
                    id,
                    WorkerState {
                        busy: false,
                        last_seen_ms: self.now_ms,
                    },
                );
                fx.push(Effect::Welcome { worker: id });
            }
            Event::WorkerSeen { id } => {
                if let Some(w) = self.workers.get_mut(&id) {
                    w.last_seen_ms = self.now_ms;
                }
            }
            Event::WorkerGone { id } => self.drop_worker(id, &mut fx),
            Event::Result {
                worker,
                task,
                cacheable,
            } => self.result(worker, task, cacheable, &mut fx),
            Event::Submit { cells } => self.backlog.push_back(cells),
            Event::Tick { now_ms } => {
                self.now_ms = self.now_ms.max(now_ms);
                self.expire(&mut fx);
            }
        }
        self.advance(&mut fx);
        fx
    }

    /// Declare a worker dead: revoke its leases and forget it.
    fn drop_worker(&mut self, id: u64, fx: &mut Vec<Effect>) {
        if self.workers.remove(&id).is_none() {
            return;
        }
        let lost: Vec<usize> = match &self.grid {
            Some(grid) => grid
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Slot::Leased { worker, .. } if *worker == id => Some(i),
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        };
        for slot in lost {
            self.revoke(slot, LoseReason::WorkerDied, fx);
        }
    }

    /// Take a lease back from its worker: re-queue the cell or, past the
    /// attempt budget, fail it as `worker-lost`.
    fn revoke(&mut self, slot: usize, reason: LoseReason, fx: &mut Vec<Effect>) {
        let Some(grid) = &mut self.grid else { return };
        let Slot::Leased { task, .. } = grid.slots[slot] else {
            return;
        };
        self.outstanding.remove(&task);
        grid.retries += 1;
        if grid.attempts[slot] >= self.opts.max_attempts && !self.faults.uncapped_reissue {
            grid.slots[slot] = Slot::Done;
            fx.push(Effect::Fail {
                grid: grid.id,
                slot,
                attempts: grid.attempts[slot],
                reason,
            });
        } else {
            grid.slots[slot] = Slot::Pending;
            if !self.faults.forget_revoked {
                grid.queue.push_front(slot);
            }
        }
    }

    fn result(&mut self, worker: u64, task: u64, cacheable: bool, fx: &mut Vec<Effect>) {
        if let Some(w) = self.workers.get_mut(&worker) {
            w.last_seen_ms = self.now_ms;
            // Any answer lifts the quarantine: the worker is responsive.
            w.busy = false;
        }
        let slot = match self.outstanding.remove(&task) {
            Some(slot) => slot,
            None => {
                // Late result for a revoked lease, a duplicate, or a
                // phantom id: the lease no longer exists. Ignore — the
                // fault toggle re-creates the coordinator that trusted
                // any id it ever issued.
                let replay = self.issued.get(&task).copied().filter(|&(g, _)| {
                    self.faults.accept_unleased
                        && self.grid.as_ref().is_some_and(|grid| grid.id == g)
                });
                match replay {
                    Some((_, slot)) => slot,
                    None => {
                        fx.push(Effect::DropResult { worker, task });
                        return;
                    }
                }
            }
        };
        let Some(grid) = &mut self.grid else { return };
        // Fault-free, `outstanding` only ever maps live leases to slots
        // of the *current* grid, so this guard never fires. Under fault
        // toggles a stale mapping can survive a grid boundary; dropping
        // it keeps the modeled bug a cache-poisoning bug, not a crash.
        let live = matches!(grid.slots.get(slot), Some(Slot::Leased { task: t, .. }) if *t == task);
        if !live && slot >= grid.slots.len() {
            fx.push(Effect::DropResult { worker, task });
            return;
        }
        fx.push(Effect::Accept {
            grid: grid.id,
            worker,
            task,
            slot,
        });
        if cacheable || self.faults.cache_uncacheable {
            fx.push(Effect::CacheInsert {
                grid: grid.id,
                slot,
            });
        }
        grid.slots[slot] = Slot::Done;
    }

    /// Clock-driven duties: heartbeat liveness, lease expiry, and the
    /// no-worker failsafe.
    fn expire(&mut self, fx: &mut Vec<Effect>) {
        let now = self.now_ms;
        // A worker silent for too long is dead even if its socket never
        // closed (half-open network, SIGSTOP).
        let silent: Vec<u64> = self
            .workers
            .iter()
            .filter(|(_, w)| now.saturating_sub(w.last_seen_ms) > self.opts.silence_ms)
            .map(|(&id, _)| id)
            .collect();
        for id in silent {
            self.drop_worker(id, fx);
        }
        // Lease expiry: revoke cells whose deadline passed. The holding
        // worker stays quarantined until it answers or dies.
        let expired: Vec<usize> = match &self.grid {
            Some(grid) => grid
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Slot::Leased { deadline_ms, .. } if *deadline_ms < now => Some(i),
                    _ => None,
                })
                .collect(),
            None => Vec::new(),
        };
        for slot in expired {
            self.revoke(slot, LoseReason::LeaseExpired, fx);
        }
        // No-worker failsafe: live cells with nobody to run them fail
        // after a grace period instead of hanging the grid forever.
        let starving = self
            .grid
            .as_ref()
            .is_some_and(|g| !g.queue.is_empty() || !self.outstanding.is_empty());
        if starving && self.workers.is_empty() {
            let since = *self.no_workers_since_ms.get_or_insert(now);
            if now.saturating_sub(since) > self.opts.grace_ms {
                if let Some(grid) = &mut self.grid {
                    while let Some(slot) = grid.queue.pop_front() {
                        grid.slots[slot] = Slot::Done;
                        fx.push(Effect::Fail {
                            grid: grid.id,
                            slot,
                            attempts: grid.attempts[slot],
                            reason: LoseReason::NoWorkers,
                        });
                    }
                }
            }
        } else {
            self.no_workers_since_ms = None;
        }
    }

    /// Make progress: start a grid if idle, assign pending cells to idle
    /// workers, stream completed rows in grid order, finish the grid.
    fn advance(&mut self, fx: &mut Vec<Effect>) {
        loop {
            if self.grid.is_none() {
                let Some(seeds) = self.backlog.pop_front() else {
                    return;
                };
                self.start_grid(seeds, fx);
            }
            self.pump(fx);
            self.emit(fx);
            let finished = self
                .grid
                .as_ref()
                .is_some_and(|g| g.emitted.iter().all(|&e| e));
            if !finished {
                return;
            }
            if let Some(grid) = self.grid.take() {
                fx.push(Effect::GridDone {
                    grid: grid.id,
                    cells: grid.slots.len(),
                    cached: grid.cached,
                    retries: grid.retries,
                });
            }
            // A queued request can start (and complete, if fully cached)
            // right away.
        }
    }

    fn start_grid(&mut self, seeds: Vec<CellSeed>, fx: &mut Vec<Effect>) {
        let id = self.next_grid;
        self.next_grid += 1;
        let n = seeds.len();
        let mut grid = Grid {
            id,
            slots: Vec::with_capacity(n),
            attempts: vec![0; n],
            queue: VecDeque::new(),
            emitted: vec![false; n],
            next_emit: 0,
            cached: 0,
            retries: 0,
            seeds,
        };
        for (i, seed) in grid.seeds.iter().enumerate() {
            if seed.cached {
                grid.cached += 1;
                grid.slots.push(Slot::Done);
            } else {
                grid.slots.push(Slot::Pending);
                grid.queue.push_back(i);
            }
        }
        self.grid = Some(grid);
        fx.push(Effect::GridStart { grid: id });
    }

    /// Assign queued cells to idle live workers, in worker-id order.
    fn pump(&mut self, fx: &mut Vec<Effect>) {
        let Some(grid) = &mut self.grid else { return };
        while let Some(&slot) = grid.queue.front() {
            let Some((&wid, worker)) = self.workers.iter_mut().find(|(_, w)| !w.busy) else {
                return;
            };
            grid.queue.pop_front();
            grid.attempts[slot] += 1;
            let task = self.next_task;
            self.next_task += 1;
            grid.slots[slot] = Slot::Leased {
                task,
                worker: wid,
                deadline_ms: self.now_ms.saturating_add(grid.seeds[slot].lease_ms),
            };
            worker.busy = true;
            self.outstanding.insert(task, slot);
            if self.faults.accept_unleased {
                self.issued.insert(task, (grid.id, slot));
            }
            fx.push(Effect::Assign {
                grid: grid.id,
                worker: wid,
                task,
                slot,
            });
        }
    }

    /// Stream the completed prefix of the grid, in grid order.
    fn emit(&mut self, fx: &mut Vec<Effect>) {
        let Some(grid) = &mut self.grid else { return };
        if self.faults.emit_on_completion {
            // The fault: stream rows as they land, order be damned.
            for slot in 0..grid.slots.len() {
                if matches!(grid.slots[slot], Slot::Done) && !grid.emitted[slot] {
                    grid.emitted[slot] = true;
                    fx.push(Effect::Emit {
                        grid: grid.id,
                        slot,
                    });
                }
            }
            return;
        }
        while grid.next_emit < grid.slots.len() && matches!(grid.slots[grid.next_emit], Slot::Done)
        {
            grid.emitted[grid.next_emit] = true;
            fx.push(Effect::Emit {
                grid: grid.id,
                slot: grid.next_emit,
            });
            grid.next_emit += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            max_attempts: 2,
            silence_ms: 30,
            grace_ms: 50,
        }
    }

    fn seeds(n: usize) -> Vec<CellSeed> {
        vec![
            CellSeed {
                cached: false,
                lease_ms: 10,
            };
            n
        ]
    }

    #[test]
    fn happy_path_streams_in_order() {
        let mut s = State::new(opts(), Faults::NONE);
        s.step(Event::WorkerJoin { id: 1 });
        let fx = s.step(Event::Submit { cells: seeds(2) });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::GridStart { grid: 1 })));
        let task = match fx
            .iter()
            .find(|e| matches!(e, Effect::Assign { .. }))
            .expect("cell assigned")
        {
            Effect::Assign { task, .. } => *task,
            _ => unreachable!(),
        };
        // Answer the first cell: its row must stream immediately.
        let fx = s.step(Event::Result {
            worker: 1,
            task,
            cacheable: true,
        });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Emit { grid: 1, slot: 0 })));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::CacheInsert { grid: 1, slot: 0 })));
        // Second cell answered: emit + done.
        let fx = s.step(Event::Result {
            worker: 1,
            task: task + 1,
            cacheable: true,
        });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Emit { grid: 1, slot: 1 })));
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::GridDone {
                grid: 1,
                cells: 2,
                ..
            }
        )));
        assert!(s.grid.is_none());
        assert!(s.outstanding.is_empty());
    }

    #[test]
    fn out_of_order_results_wait_for_the_prefix() {
        let mut s = State::new(opts(), Faults::NONE);
        s.step(Event::WorkerJoin { id: 1 });
        s.step(Event::WorkerJoin { id: 2 });
        s.step(Event::Submit { cells: seeds(2) });
        // Worker 2 (slot 1, task 2) answers first: no emission yet.
        let fx = s.step(Event::Result {
            worker: 2,
            task: 2,
            cacheable: true,
        });
        assert!(!fx.iter().any(|e| matches!(e, Effect::Emit { .. })));
        // Slot 0 lands: both rows stream, in order.
        let fx = s.step(Event::Result {
            worker: 1,
            task: 1,
            cacheable: true,
        });
        let emits: Vec<usize> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Emit { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(emits, vec![0, 1]);
    }

    #[test]
    fn expired_lease_requeues_then_fails_at_cap() {
        let mut s = State::new(opts(), Faults::NONE);
        s.step(Event::WorkerJoin { id: 1 });
        s.step(Event::Submit { cells: seeds(1) });
        // First lease expires; the cell re-queues but worker 1 is
        // quarantined (busy), so it waits for worker 2.
        let fx = s.step(Event::Tick { now_ms: 11 });
        assert!(!fx.iter().any(|e| matches!(e, Effect::Assign { .. })));
        s.step(Event::WorkerJoin { id: 2 });
        assert_eq!(s.grid.as_ref().map(|g| g.attempts[0]), Some(2));
        // Second lease expires too: attempt cap reached, cell fails.
        let fx = s.step(Event::Tick { now_ms: 23 });
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::Fail {
                slot: 0,
                attempts: 2,
                reason: LoseReason::LeaseExpired,
                ..
            }
        )));
        assert!(fx.iter().any(|e| matches!(e, Effect::GridDone { .. })));
    }

    #[test]
    fn late_result_is_dropped_by_lease_id() {
        let mut s = State::new(opts(), Faults::NONE);
        s.step(Event::WorkerJoin { id: 1 });
        s.step(Event::Submit { cells: seeds(1) });
        s.step(Event::Tick { now_ms: 11 }); // revoke lease 1
        let fx = s.step(Event::Result {
            worker: 1,
            task: 1,
            cacheable: true,
        });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::DropResult { task: 1, .. })));
        assert!(!fx.iter().any(|e| matches!(e, Effect::CacheInsert { .. })));
        // ... but the answer lifted the quarantine: the re-queued cell
        // goes straight back to worker 1 as a new lease.
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Assign { task: 2, .. })));
    }

    #[test]
    fn no_worker_grace_fails_the_queue() {
        let mut s = State::new(opts(), Faults::NONE);
        s.step(Event::Submit { cells: seeds(2) });
        s.step(Event::Tick { now_ms: 1 }); // arms the failsafe
        let fx = s.step(Event::Tick { now_ms: 52 });
        let fails = fx
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Effect::Fail {
                        reason: LoseReason::NoWorkers,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(fails, 2);
        assert!(fx.iter().any(|e| matches!(e, Effect::GridDone { .. })));
    }

    #[test]
    fn slow_but_heartbeating_worker_keeps_huge_lease() {
        // A million-node cell's lease (n-scaled cap) outlives the old
        // flat 120s ceiling many times over; liveness must come from
        // heartbeats, not from the lease running out.
        let mut s = State::new(Options::default(), Faults::NONE);
        s.step(Event::WorkerJoin { id: 1 });
        let fx = s.step(Event::Submit {
            cells: vec![CellSeed {
                cached: false,
                lease_ms: 1_200_000,
            }],
        });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Assign { task: 1, .. })));
        // Tick far past 120s, heartbeating inside silence_ms (5s).
        let mut now = 0;
        while now < 400_000 {
            now += 4_000;
            s.step(Event::WorkerSeen { id: 1 });
            let fx = s.step(Event::Tick { now_ms: now });
            assert!(
                !fx.iter().any(|e| matches!(e, Effect::Fail { .. })),
                "heartbeating worker revoked at t={now}ms"
            );
        }
        assert_eq!(s.grid.as_ref().map(|g| g.retries), Some(0));
        // The slow answer is still accepted on the original lease.
        let fx = s.step(Event::Result {
            worker: 1,
            task: 1,
            cacheable: true,
        });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Accept { task: 1, .. })));
        assert!(fx.iter().any(|e| matches!(e, Effect::GridDone { .. })));
    }

    #[test]
    fn cached_seeds_complete_without_workers() {
        let mut s = State::new(opts(), Faults::NONE);
        let cells = vec![
            CellSeed {
                cached: true,
                lease_ms: 10,
            };
            3
        ];
        let fx = s.step(Event::Submit { cells });
        assert!(fx.iter().any(|e| matches!(
            e,
            Effect::GridDone {
                cells: 3,
                cached: 3,
                retries: 0,
                ..
            }
        )));
        // A second grid queued behind it starts in the same step.
        let fx = s.step(Event::Submit {
            cells: vec![
                CellSeed {
                    cached: true,
                    lease_ms: 10,
                };
                1
            ],
        });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::GridStart { grid: 2 })));
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::GridDone { grid: 2, .. })));
    }
}
