//! `gtd-lint`: repo-specific, token-level static analysis.
//!
//! Each rule in [`LINT_RULES`] encodes an invariant of *this* codebase
//! that the compiler cannot see — hot paths that must not allocate,
//! wire-facing modules that must not panic on untrusted bytes,
//! registries that must stay in sync with the grammars and docs that
//! describe them. Rules scan [scrubbed](crate::lexer::scrub) source, so
//! comments and string literals cannot trip (or hide) a finding.
//!
//! Suppressions live in a reviewed `lint.allow` file at the workspace
//! root, one entry per line (`rule path [substring]`); entries that
//! match nothing are themselves errors, so the allowlist cannot rot.

use crate::lexer;
use std::fmt;
use std::path::{Path, PathBuf};

/// A registered lint rule (the registry feeds `harness list`, the README
/// table, and `gtd-lint`'s own output).
pub struct LintRule {
    pub name: &'static str,
    pub summary: &'static str,
    pub rationale: &'static str,
}

/// Every rule, in run order.
pub const LINT_RULES: &[LintRule] = &[
    LintRule {
        name: "no-alloc-in-tick-path",
        summary: "no allocating calls inside Engine::tick and its mode bodies \
                  (tick_dense/tick_event/tick_saturated), the shard phases, the \
                  worker-pool dispatch path, Node::flush_due, or the per-epoch \
                  topology queries (CSR views, masks, rewire hooks)",
        rationale: "the per-tick path is the O(N*D) inner loop the paper's cost model \
                    measures; one stray format!/clone turns the profile to noise — \
                    and the remap/verify paths re-query the topology every epoch, \
                    so its connectivity views must stay allocation-free too",
    },
    LintRule {
        name: "no-lock-in-tick-path",
        summary: "no Mutex/RwLock/Condvar/Barrier/mpsc in the worker-pool \
                  coordination path or the parallel tick functions",
        rationale: "the pool's per-tick handshake is a seqlock-style epoch counter by \
                    design; a blocking primitive reintroduces the exact dispatch tax \
                    the sharded engine exists to remove",
    },
    LintRule {
        name: "no-unwrap-in-wire-paths",
        summary: "no unwrap/expect/panic!/unreachable! in serve's protocol, \
                  coordinator, worker, or client modules",
        rationale: "these modules parse untrusted bytes from the network; malformed \
                    input must land as a structured ProtocolError, not a panic",
    },
    LintRule {
        name: "copy-sig-discipline",
        summary: "no .clone()/.to_owned()/.to_vec() in the snake crate or the node \
                  automaton",
        rationale: "signals are Copy by design (PR 5 made routing copy-free); a clone \
                    that compiles is a silent performance regression",
    },
    LintRule {
        name: "debug-assert-policy",
        summary: "no debug_assert! in core or snake production code",
        rationale: "mutation-era inputs (mid-run joins, stale signals) must be \
                    recoverably dropped; a debug_assert papers over a path release \
                    builds will take",
    },
    LintRule {
        name: "registry-sync",
        summary: "MutationKind/TopologySpec/FaultPlane knobs match their registry \
                  tables, examples parse, and every family and knob is in the README",
        rationale: "the registries are the source of truth for harness list, the \
                    suffix grammar, and the docs; the compiler cannot see a missing \
                    row",
    },
    LintRule {
        name: "pure-brain-no-wallclock",
        summary: "the coordinator brain stays free of Instant/SystemTime/threads/\
                  sockets/HashMap",
        rationale: "the model checker's verdict is only valid if the brain it explores \
                    is deterministic and replayable; wall-clock or iteration-order \
                    nondeterminism would quietly invalidate every proof",
    },
];

/// One finding.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}\n    {}",
            self.rule, self.file, self.line, self.message, self.excerpt
        )
    }
}

/// A loaded source file: raw text plus its scrubbed twin.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    pub raw: String,
    pub scrubbed: String,
}

/// The lintable slice of the repository.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    pub readme: String,
}

impl Workspace {
    /// Load every `.rs` file under `crates/*/{src,tests,examples}` (the
    /// code this repo owns; `third_party/` shims are not ours to lint).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let crates = root.join("crates");
        let mut dirs: Vec<PathBuf> = Vec::new();
        if crates.is_dir() {
            for entry in std::fs::read_dir(&crates)? {
                let dir = entry?.path();
                for sub in ["src", "tests", "examples"] {
                    let d = dir.join(sub);
                    if d.is_dir() {
                        dirs.push(d);
                    }
                }
            }
        }
        while let Some(dir) = dirs.pop() {
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.is_dir() {
                    dirs.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let raw = std::fs::read_to_string(&path)?;
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/");
                    files.push(SourceFile {
                        rel,
                        scrubbed: lexer::scrub(&raw),
                        raw,
                    });
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            readme,
        })
    }

    /// In-memory workspace for rule unit tests.
    pub fn synthetic(files: Vec<(&str, &str)>, readme: &str) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(rel, raw)| SourceFile {
                    rel: rel.to_string(),
                    scrubbed: lexer::scrub(raw),
                    raw: raw.to_string(),
                })
                .collect(),
            readme: readme.to_string(),
        }
    }

    fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Run every rule. Findings come back sorted by (file, line).
pub fn lint(ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    no_alloc_in_tick_path(ws, &mut out);
    no_lock_in_tick_path(ws, &mut out);
    no_unwrap_in_wire_paths(ws, &mut out);
    copy_sig_discipline(ws, &mut out);
    debug_assert_policy(ws, &mut out);
    registry_sync(ws, &mut out);
    pure_brain_no_wallclock(ws, &mut out);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

// ---------------------------------------------------------------- rules

/// Tokens that allocate (or deep-copy) on the heap.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec!",
    ".to_vec()",
    ".clone()",
    "format!",
    "String::new",
    "String::from",
    ".to_string()",
    "Box::new",
    ".collect()",
];

/// Scan each named fn body in `rel` for `tokens`; a scoped fn that no
/// longer exists is itself a violation (a renamed or split hot path must
/// not silently disarm the rule). A missing *file* is skipped so rule
/// unit tests can build partial synthetic workspaces.
fn scan_scoped_fns(
    ws: &Workspace,
    rel: &str,
    fns: &[&str],
    tokens: &[&str],
    rule: &'static str,
    message: &str,
    out: &mut Vec<Violation>,
) {
    let Some(file) = ws.file(rel) else {
        return;
    };
    for name in fns {
        let Some(body) = lexer::fn_body(&file.scrubbed, name) else {
            out.push(Violation {
                rule,
                file: rel.to_string(),
                line: 1,
                message: format!(
                    "scoped function `{name}` not found — the hot path moved; \
                     update the rule's scope"
                ),
                excerpt: String::new(),
            });
            continue;
        };
        scan_tokens(
            file,
            body.clone(),
            &[],
            tokens,
            rule,
            &format!("{message} (fn `{name}`)"),
            out,
        );
    }
}

/// The per-tick hot path: `Engine::tick`, the three mode bodies, the
/// shard phase functions the pool fans out, the frontier rebuild, and
/// the pool's own dispatch/claim/worker loop — plus the per-epoch paths:
/// the topology's CSR connectivity views (iterator/mask forms, queried
/// on every remap and verify) and the automaton's rewire hooks.
const TICK_PATH_SCOPES: &[(&str, &[&str])] = &[
    (
        "crates/netsim/src/engine.rs",
        &[
            "tick",
            "tick_dense",
            "tick_event",
            "tick_saturated",
            "shard_step",
            "shard_scatter",
            "shard_merge",
            "shard_step_all",
            "shard_gather",
            "rebuild_frontier",
            "run_phases",
        ],
    ),
    (
        "crates/netsim/src/pool.rs",
        &["dispatch", "run_claims", "worker_loop"],
    ),
    (
        "crates/netsim/src/topology.rs",
        &[
            "out_endpoint",
            "in_endpoint",
            "out_mask",
            "in_mask",
            "out_connected",
            "in_connected",
            "edges",
        ],
    ),
    (
        "crates/core/src/node.rs",
        &["flush_due", "on_rewire", "on_join"],
    ),
];

fn no_alloc_in_tick_path(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "no-alloc-in-tick-path";
    for &(rel, fns) in TICK_PATH_SCOPES {
        scan_scoped_fns(
            ws,
            rel,
            fns,
            ALLOC_TOKENS,
            RULE,
            "allocation in the per-tick hot path",
            out,
        );
    }
}

/// Blocking-synchronisation primitives (the pool is pure atomics).
const LOCK_TOKENS: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc", ".lock()"];

fn no_lock_in_tick_path(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "no-lock-in-tick-path";
    const MESSAGE: &str = "blocking synchronisation on the per-tick coordination path \
                           (the worker pool is a lock-free epoch handshake by design)";
    // The whole pool module is coordination path; only its test mod is
    // exempt.
    if let Some(file) = ws.file("crates/netsim/src/pool.rs") {
        let tests = lexer::test_regions(&file.scrubbed);
        scan_tokens(
            file,
            0..file.raw.len(),
            &tests,
            LOCK_TOKENS,
            RULE,
            MESSAGE,
            out,
        );
    }
    // Plus the engine functions that drive pooled dispatch every tick.
    scan_scoped_fns(
        ws,
        "crates/netsim/src/engine.rs",
        &["tick", "tick_event", "tick_saturated", "run_phases"],
        LOCK_TOKENS,
        RULE,
        MESSAGE,
        out,
    );
}

/// Tokens that can panic on malformed input.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn no_unwrap_in_wire_paths(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "no-unwrap-in-wire-paths";
    for rel in [
        "crates/serve/src/protocol.rs",
        "crates/serve/src/coordinator.rs",
        "crates/serve/src/worker.rs",
        "crates/serve/src/client.rs",
    ] {
        let Some(file) = ws.file(rel) else { continue };
        let tests = lexer::test_regions(&file.scrubbed);
        scan_tokens(
            file,
            0..file.raw.len(),
            &tests,
            PANIC_TOKENS,
            RULE,
            "possible panic on a wire path (untrusted bytes must become ProtocolError)",
            out,
        );
    }
}

fn copy_sig_discipline(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "copy-sig-discipline";
    const TOKENS: &[&str] = &[".clone()", ".to_owned()", ".to_vec()"];
    for file in &ws.files {
        let in_scope =
            file.rel.starts_with("crates/snake/src/") || file.rel == "crates/core/src/node.rs";
        if !in_scope {
            continue;
        }
        let tests = lexer::test_regions(&file.scrubbed);
        scan_tokens(
            file,
            0..file.raw.len(),
            &tests,
            TOKENS,
            RULE,
            "deep copy in signal-handling code (signals are Copy by design)",
            out,
        );
    }
}

fn debug_assert_policy(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "debug-assert-policy";
    for file in &ws.files {
        let in_scope =
            file.rel.starts_with("crates/core/src/") || file.rel.starts_with("crates/snake/src/");
        if !in_scope {
            continue;
        }
        let tests = lexer::test_regions(&file.scrubbed);
        scan_tokens(
            file,
            0..file.raw.len(),
            &tests,
            &["debug_assert"],
            RULE,
            "debug_assert on a mutation-era input path (drop recoverably instead: \
             release builds skip this check)",
            out,
        );
    }
}

fn registry_sync(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "registry-sync";
    let mut push = |file: &str, line: usize, message: String| {
        out.push(Violation {
            rule: RULE,
            file: file.to_string(),
            line,
            message,
            excerpt: String::new(),
        });
    };
    // MutationKind ↔ MUTATION_REGISTRY ↔ suffix grammar ↔ README.
    let mutation_rs = "crates/netsim/src/mutation.rs";
    if let Some(file) = ws.file(mutation_rs) {
        let enum_at = file.raw.find("enum MutationKind").unwrap_or(0);
        let line = lexer::line_of(&file.raw, enum_at);
        match lexer::enum_variants(&file.scrubbed, "MutationKind") {
            Some(n) if n == gtd_netsim::MUTATION_REGISTRY.len() => {}
            Some(n) => push(
                mutation_rs,
                line,
                format!(
                    "enum MutationKind has {n} variants but MUTATION_REGISTRY lists {}",
                    gtd_netsim::MUTATION_REGISTRY.len()
                ),
            ),
            None => push(mutation_rs, line, "enum MutationKind not found".into()),
        }
    }
    for spec in gtd_netsim::MUTATION_REGISTRY {
        if spec
            .example
            .parse::<gtd_netsim::ScheduledMutation>()
            .is_err()
        {
            push(
                mutation_rs,
                1,
                format!(
                    "registry example `{}` does not parse under the suffix grammar",
                    spec.example
                ),
            );
        }
        if !spec.example.starts_with(spec.name) {
            push(
                mutation_rs,
                1,
                format!(
                    "registry example `{}` is not a `{}` suffix",
                    spec.example, spec.name
                ),
            );
        }
        if !ws.readme.contains(spec.name) {
            push(
                "README.md",
                1,
                format!(
                    "mutation kind `{}` is missing from the README table",
                    spec.name
                ),
            );
        }
    }
    // TopologySpec ↔ spec::REGISTRY ↔ spec grammar ↔ README.
    let spec_rs = "crates/netsim/src/spec.rs";
    if let Some(file) = ws.file(spec_rs) {
        let enum_at = file.raw.find("enum TopologySpec").unwrap_or(0);
        let line = lexer::line_of(&file.raw, enum_at);
        match lexer::enum_variants(&file.scrubbed, "TopologySpec") {
            Some(n) if n == gtd_netsim::spec::REGISTRY.len() => {}
            Some(n) => push(
                spec_rs,
                line,
                format!(
                    "enum TopologySpec has {n} variants but spec::REGISTRY lists {}",
                    gtd_netsim::spec::REGISTRY.len()
                ),
            ),
            None => push(spec_rs, line, "enum TopologySpec not found".into()),
        }
    }
    for fam in gtd_netsim::spec::REGISTRY {
        if fam.example.parse::<gtd_netsim::TopologySpec>().is_err() {
            push(
                spec_rs,
                1,
                format!("registry example `{}` does not parse", fam.example),
            );
        }
        if !fam.example.starts_with(fam.name) {
            push(
                spec_rs,
                1,
                format!(
                    "registry example `{}` is not a `{}` spec",
                    fam.example, fam.name
                ),
            );
        }
        if !ws.readme.contains(fam.name) {
            push(
                "README.md",
                1,
                format!(
                    "topology family `{}` is missing from the README table",
                    fam.name
                ),
            );
        }
    }
    // FaultPlane knobs ↔ FAULT_REGISTRY ↔ suffix grammar ↔ README.
    for knob in gtd_netsim::spec::FAULT_REGISTRY {
        if knob.example.parse::<gtd_netsim::DynamicSpec>().is_err() {
            push(
                spec_rs,
                1,
                format!(
                    "fault registry example `{}` does not parse under the \
                     suffix grammar",
                    knob.example
                ),
            );
        }
        if !knob.example.contains(&format!("~{}=", knob.name)) {
            push(
                spec_rs,
                1,
                format!(
                    "fault registry example `{}` does not use the `{}` knob",
                    knob.example, knob.name
                ),
            );
        }
        if !ws.readme.contains(&format!("`{}`", knob.name)) && !ws.readme.contains(knob.example) {
            push(
                "README.md",
                1,
                format!(
                    "fault knob `{}` is missing from the README fault-model table",
                    knob.name
                ),
            );
        }
    }
}

fn pure_brain_no_wallclock(ws: &Workspace, out: &mut Vec<Violation>) {
    const RULE: &str = "pure-brain-no-wallclock";
    const TOKENS: &[&str] = &[
        "Instant",
        "SystemTime",
        "std::thread",
        "TcpStream",
        "TcpListener",
        "HashMap",
        "HashSet",
    ];
    let Some(file) = ws.file("crates/check/src/brain.rs") else {
        return;
    };
    let tests = lexer::test_regions(&file.scrubbed);
    scan_tokens(
        file,
        0..file.raw.len(),
        &tests,
        TOKENS,
        RULE,
        "nondeterminism in the pure coordinator brain (the model checker's \
         verdict depends on exact replay)",
        out,
    );
}

/// Scan `range` of a scrubbed file for `tokens`, skipping `holes`
/// (test-mod regions), with identifier-boundary checks so `Instant`
/// cannot match inside `InstantiationError`.
fn scan_tokens(
    file: &SourceFile,
    range: std::ops::Range<usize>,
    holes: &[std::ops::Range<usize>],
    tokens: &[&str],
    rule: &'static str,
    message: &str,
    out: &mut Vec<Violation>,
) {
    let hay = &file.scrubbed[range.clone()];
    for token in tokens {
        let mut from = 0;
        while let Some(pos) = hay[from..].find(token) {
            let at = range.start + from + pos;
            from += pos + token.len();
            if holes.iter().any(|h| h.contains(&at)) {
                continue;
            }
            if !boundary_ok(&file.scrubbed, at, token) {
                continue;
            }
            let line = lexer::line_of(&file.raw, at);
            let excerpt = file
                .raw
                .lines()
                .nth(line - 1)
                .unwrap_or("")
                .trim()
                .to_string();
            out.push(Violation {
                rule,
                file: file.rel.clone(),
                line,
                message: format!("`{token}`: {message}"),
                excerpt,
            });
        }
    }
}

fn boundary_ok(scrubbed: &str, at: usize, token: &str) -> bool {
    let bytes = scrubbed.as_bytes();
    let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let head = token.as_bytes()[0];
    let tail = token.as_bytes()[token.len() - 1];
    if ident(head) && at > 0 && ident(bytes[at - 1]) {
        return false;
    }
    if ident(tail) {
        if let Some(&b) = bytes.get(at + token.len()) {
            if ident(b) {
                return false;
            }
        }
    }
    true
}

// ------------------------------------------------------------ allowlist

/// One `lint.allow` entry: `rule path [substring]`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub substring: Option<String>,
    /// Line in lint.allow, for stale-entry reporting.
    pub line: usize,
}

/// Parse `lint.allow` (blank lines and `#` comments ignored).
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(file)) = (parts.next(), parts.next()) else {
            continue;
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            substring: parts.next().map(|s| s.trim().to_string()),
            line: i + 1,
        });
    }
    entries
}

/// The result of a full lint run with suppressions applied.
pub struct LintOutcome {
    /// Findings no allowlist entry covers.
    pub violations: Vec<Violation>,
    /// Findings suppressed by the allowlist.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (errors: the list rots).
    pub stale: Vec<AllowEntry>,
    pub files_scanned: usize,
}

impl LintOutcome {
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Lint the workspace and apply the allowlist.
pub fn lint_with_allowlist(ws: &Workspace, allow: &[AllowEntry]) -> LintOutcome {
    let all = lint(ws);
    let mut used = vec![false; allow.len()];
    let mut violations = Vec::new();
    let mut suppressed = 0;
    for v in all {
        let hit = allow.iter().enumerate().find(|(_, a)| {
            a.rule == v.rule
                && a.file == v.file
                && a.substring
                    .as_deref()
                    .is_none_or(|s| v.excerpt.contains(s) || v.message.contains(s))
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => violations.push(v),
        }
    }
    let stale = allow
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.clone())
        .collect();
    LintOutcome {
        violations,
        suppressed,
        stale,
        files_scanned: ws.files.len(),
    }
}
