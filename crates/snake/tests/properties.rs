//! Property tests for the snake components: stream preservation through
//! relays, dying-snake shrink-by-one semantics, dwell-queue timing, and
//! loop-mark routing under arbitrary mark configurations.

use gtd_netsim::Port;
use gtd_snake::{
    DwellQueue, DyingPassage, GrowEmit, GrowRelay, Hop, LoopMarks, MarkPair, SnakeChar, SnakeKind,
    SPEED1_DWELL,
};
use proptest::prelude::*;

fn arb_hop() -> impl Strategy<Value = Hop> {
    (0u8..6, proptest::option::of(0u8..6)).prop_map(|(o, i)| Hop {
        out_port: Port(o),
        in_port: i.map(Port),
    })
}

/// A well-formed snake stream: head, bodies, tail.
fn arb_stream() -> impl Strategy<Value = Vec<SnakeChar>> {
    (arb_hop(), proptest::collection::vec(arb_hop(), 0..12)).prop_map(|(h, bodies)| {
        let mut v = vec![SnakeChar::Head(h)];
        v.extend(bodies.into_iter().map(SnakeChar::Body));
        v.push(SnakeChar::Tail);
        v
    })
}

proptest! {
    /// A relay passes an arriving stream through unchanged (other than
    /// ∗-filling), in order, each character delayed exactly SPEED1_DWELL,
    /// with the extend-then-tail rule at the end.
    #[test]
    fn relay_preserves_stream_order_and_timing(stream in arb_stream(), port in 0u8..6) {
        let mut r = GrowRelay::new(SnakeKind::Ig);
        let mut t = 100u64;
        let mut accepted = Vec::new();
        for &c in &stream {
            if let Some(c) = r.accept(Port(port), c) {
                accepted.push((t, c));
                r.relay(c, t);
            }
            t += 1;
        }
        // whole stream accepted (head first, single port)
        prop_assert_eq!(accepted.len(), stream.len());
        // drain emissions
        let mut emitted = Vec::new();
        for tick in 100..t + SPEED1_DWELL + 2 {
            while let Some(e) = r.due(tick) {
                emitted.push((tick, e));
            }
        }
        prop_assert!(!r.has_pending());
        // non-tail chars come out as Relay(c) exactly dwell later;
        // the tail becomes Extend then Tail one tick apart.
        let n = stream.len();
        for (k, &(at, e)) in emitted.iter().enumerate() {
            if k < n - 1 {
                let (t_in, c_in) = accepted[k];
                prop_assert_eq!(e, GrowEmit::Relay(c_in));
                prop_assert_eq!(at, t_in + SPEED1_DWELL);
            }
        }
        prop_assert_eq!(emitted[n - 1].1, GrowEmit::Extend);
        prop_assert_eq!(emitted[n].1, GrowEmit::Tail);
        prop_assert_eq!(emitted[n].0, emitted[n - 1].0 + 1);
    }

    /// Stars are filled exactly once, with the arrival port.
    #[test]
    fn stars_filled_with_arrival_port(hop in arb_hop(), port in 0u8..6) {
        let mut r = GrowRelay::new(SnakeKind::Bg);
        let got = r.accept(Port(port), SnakeChar::Head(hop)).unwrap();
        let SnakeChar::Head(h) = got else { panic!("head stays head") };
        prop_assert_eq!(h.out_port, hop.out_port);
        match hop.in_port {
            Some(i) => prop_assert_eq!(h.in_port, Some(i)),
            None => prop_assert_eq!(h.in_port, Some(Port(port))),
        }
    }

    /// A dying passage consumes exactly one character (the promoted head)
    /// and forwards the rest verbatim: output stream = input minus one,
    /// head-promoted, same order.
    #[test]
    fn dying_passage_shrinks_stream_by_one(stream in arb_stream(), pred in 0u8..6) {
        // feed everything after the consumed head
        let body = &stream[1..];
        let mut p = DyingPassage::new(SnakeKind::Id);
        p.begin(Port(pred), Port(0));
        let mut t = 50u64;
        for &c in body {
            p.feed(Port(pred), c, t);
            t += 1;
        }
        prop_assert!(p.is_done());
        let mut outs = Vec::new();
        for tick in 50..t + SPEED1_DWELL + 1 {
            while let Some(e) = p.due(tick) {
                outs.push(e.c);
            }
        }
        prop_assert_eq!(outs.len(), body.len());
        // first out char is the promoted head
        if body.len() > 1 {
            prop_assert_eq!(outs[0], body[0].as_head());
            for k in 1..body.len() - 1 {
                prop_assert_eq!(outs[k], body[k].as_body());
            }
        }
        prop_assert_eq!(*outs.last().unwrap(), SnakeChar::Tail);
        // endpoint iff the head was immediately followed by the tail
        prop_assert_eq!(p.is_endpoint(), body.len() == 1);
    }

    /// DwellQueue is FIFO regardless of how late the consumer polls.
    #[test]
    fn dwell_queue_fifo(
        deadlines in proptest::collection::vec(0u64..20, 1..12),
        poll_gap in 1u64..5,
    ) {
        let mut sorted = deadlines.clone();
        sorted.sort_unstable();
        let mut q = DwellQueue::new();
        for (i, &d) in sorted.iter().enumerate() {
            q.push(d, i);
        }
        let mut got = Vec::new();
        let mut t = 0;
        while !q.is_empty() {
            while let Some(x) = q.pop_due(t) {
                got.push(x);
            }
            t += poll_gap;
        }
        let want: Vec<usize> = (0..sorted.len()).collect();
        prop_assert_eq!(got, want);
    }

    /// Loop marks: a full dual configuration routes pair 1 then pair 2
    /// alternately for any port assignment, and a double unmark circuit
    /// always restores pristine state.
    #[test]
    fn dual_marks_always_alternate_and_unmark(
        p1 in 0u8..6, s1 in 0u8..6, p2 in 0u8..6, s2 in 0u8..6,
        circuits in 1usize..4,
    ) {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(p1));
        m.set_succ(MarkPair::First, Port(s1));
        m.set_pred(MarkPair::Second, Port(p2));
        m.set_succ(MarkPair::Second, Port(s2));
        for _ in 0..circuits {
            // full circle = one pass per pair, in order
            let r1 = m.route(Port(p1)).expect("pair-1 pass accepted");
            prop_assert_eq!(r1.succ, Port(s1));
            m.advance(r1);
            let r2 = m.route(Port(p2)).expect("pair-2 pass accepted");
            prop_assert_eq!(r2.succ, Port(s2));
            m.advance(r2);
        }
        prop_assert!(m.unmark(Port(p1)).is_some());
        prop_assert!(m.unmark(Port(p2)).is_some());
        prop_assert!(m.is_pristine());
    }

    /// Erasure after an arbitrary prefix of activity always restores a
    /// pristine relay (KILL semantics are total).
    #[test]
    fn erase_is_total(stream in arb_stream(), port in 0u8..6, cut in 0usize..14) {
        let mut r = GrowRelay::new(SnakeKind::Og);
        for (t, &c) in (10u64..).zip(stream.iter().take(cut.min(stream.len()))) {
            if let Some(c) = r.accept(Port(port), c) {
                r.relay(c, t);
            }
        }
        r.erase();
        prop_assert!(r.is_pristine());
    }
}

#[test]
fn alphabet_count_matches_paper_for_all_small_deltas() {
    // redundant with unit tests but kept here as the crate-level contract
    for delta in 2..=16u8 {
        let d = delta as usize;
        assert_eq!(gtd_snake::chars::alphabet_size(delta), 2 * (d * d + d) + 1);
    }
}
