//! Growing snakes (paper §2.3.2).
//!
//! Growing snakes are information generators: released by an *initiator*,
//! they flood breadth-first, and the first one to reach a *terminator*
//! carries in its body the minimal-length port-path from initiator to
//! terminator. The local rules implemented here:
//!
//! * A processor receiving a character of this kind **for the first time**
//!   marks itself visited and the arrival in-port as its parent; only that
//!   stream is relayed from then on, all other characters of the kind are
//!   ignored. Simultaneous first arrivals resolve to the lowest-numbered
//!   in-port (callers must feed ports in ascending order — they do, and
//!   tests enforce the tie-break).
//! * Characters with a `∗` second parameter get the arrival in-port filled
//!   in at reception.
//! * Non-tail characters are re-broadcast through every out-port after the
//!   speed-1 dwell.
//! * When the tail passes, the processor first appends a fresh body
//!   character `X(o, ∗)` per out-port `o` — extending the encoded path by
//!   the hop just taken — and only then forwards the tail.
//!
//! [`GrowRelay`] is acceptance + scheduling; what to *do* with an accepted
//! character is the caller's choice: ordinary processors call
//! [`GrowRelay::relay`], while converting processors (the root for IG→OG,
//! processor A for OG→ID) intercept the returned character and feed their
//! own conversion pipelines (`gtd-core`).

use crate::chars::{SnakeChar, SnakeKind};
use crate::speed::{DwellQueue, SPEED1_DWELL};
use gtd_netsim::Port;

/// A scheduled growing-snake emission.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GrowEmit {
    /// Emit `Head(o, ∗)` through each connected out-port `o` (birth).
    Heads,
    /// Re-emit this (already-filled) character through every out-port.
    Relay(SnakeChar),
    /// Emit a fresh `Body(o, ∗)` through each connected out-port `o`
    /// (tail-extension rule).
    Extend,
    /// Emit the tail through every out-port. Also the `Default` filler
    /// for dead dwell-slab slots (never read; any variant would do).
    #[default]
    Tail,
}

/// Per-processor, per-kind growing-snake state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GrowRelay {
    kind: SnakeKind,
    visited: bool,
    /// Parent in-port; `None` while unvisited *or* when this processor is
    /// the initiator (the initiator has no parent).
    parent: Option<Port>,
    initiator: bool,
    q: DwellQueue<GrowEmit>,
}

impl GrowRelay {
    /// Fresh, quiescent relay for one snake kind.
    pub fn new(kind: SnakeKind) -> Self {
        assert!(kind.is_growing(), "GrowRelay only handles growing kinds");
        GrowRelay {
            kind,
            visited: false,
            parent: None,
            initiator: false,
            q: DwellQueue::new(),
        }
    }

    /// The snake kind this relay handles.
    pub fn kind(&self) -> SnakeKind {
        self.kind
    }

    /// Become the initiator: mark self visited (no parent) and schedule the
    /// baby snake — heads this tick, tail next tick (§2.3.2, first rule).
    pub fn start(&mut self, now: u64) {
        assert!(!self.visited, "initiator must start on a clean relay");
        self.visited = true;
        self.initiator = true;
        self.q.push(now, GrowEmit::Heads);
        self.q.push(now + 1, GrowEmit::Tail);
    }

    /// Become the initiator **without** emitting a baby snake: used by the
    /// root when it converts an incoming IG stream into the OG snake it
    /// "broadcasts out all out-ports" (§4.2.1 step 2) — the root is the OG
    /// tree's origin and must ignore OG characters flowing back to it, but
    /// its emissions replay the converted stream rather than fresh heads
    /// (feed those through [`GrowRelay::relay`]).
    pub fn mark_initiator(&mut self) {
        assert!(!self.visited, "initiator must start on a clean relay");
        self.visited = true;
        self.initiator = true;
    }

    /// Reception rule. Returns the accepted, ∗-filled character if this
    /// processor should process it (first visit, or subsequent character of
    /// the adopted stream), `None` if the character must be ignored.
    ///
    /// Callers must invoke this in ascending in-port order within a tick so
    /// the paper's lowest-in-port tie-break falls out of "first wins".
    ///
    /// Only a **head** character can start an adoption. In an undisturbed
    /// run every stream reaches a fresh processor head-first (the initiator
    /// emits the head first and relays preserve order), so this matches the
    /// paper's "receives … for the first time" rule; the restriction only
    /// bites on post-KILL stragglers, preventing a headless orphan stream
    /// from re-marking erased processors and flooding forever (DESIGN.md §5).
    pub fn accept(&mut self, port: Port, c: SnakeChar) -> Option<SnakeChar> {
        if !self.visited {
            if !c.is_head() {
                return None;
            }
            self.visited = true;
            self.parent = Some(port);
            return Some(c.filled(port));
        }
        if self.parent == Some(port) {
            return Some(c.filled(port));
        }
        None
    }

    /// Standard relay behaviour for an accepted character: schedule it for
    /// broadcast after the speed-1 dwell; tails trigger the extend-then-tail
    /// sequence.
    ///
    /// Lossy at capacity: a clean run keeps the queue a few characters
    /// deep, but a live topology mutation can orphan a growing stream
    /// into a cycle where it circulates — and grows — forever. The finite
    /// buffer drops such characters instead of growing without bound (see
    /// [`DwellQueue::push_bounded`]); the dropped stream is mutation-era
    /// junk by construction, and the session-level remap driver recovers
    /// the disturbed run.
    pub fn relay(&mut self, c: SnakeChar, now: u64) {
        match c {
            SnakeChar::Tail => {
                // all-or-nothing: an extension without its tail (or vice
                // versa) would corrupt even streams we could still carry
                if self.q.len() + 2 <= DwellQueue::<GrowEmit>::HARD_CAP {
                    self.q.push(now + SPEED1_DWELL, GrowEmit::Extend);
                    self.q.push(now + SPEED1_DWELL + 1, GrowEmit::Tail);
                } else {
                    self.q.record_drops(2);
                }
            }
            other => {
                self.q
                    .push_bounded(now + SPEED1_DWELL, GrowEmit::Relay(other));
            }
        }
    }

    /// Pop the next emission due at `now`, if any.
    pub fn due(&mut self, now: u64) -> Option<GrowEmit> {
        self.q.pop_due(now)
    }

    /// Earliest pending emission deadline (restep scheduling).
    pub fn next_deadline(&self) -> Option<u64> {
        self.q.next_deadline()
    }

    /// Has this processor been visited by (or initiated) this snake kind?
    pub fn is_marked(&self) -> bool {
        self.visited
    }

    /// The parent in-port mark, if any (breadth-first tokens follow these).
    pub fn parent(&self) -> Option<Port> {
        self.parent
    }

    /// Did this relay initiate the current snake?
    pub fn is_initiator(&self) -> bool {
        self.initiator
    }

    /// Any scheduled emissions pending?
    pub fn has_pending(&self) -> bool {
        !self.q.is_empty()
    }

    /// Number of characters currently dwelling here (E5 census).
    pub fn pending_len(&self) -> usize {
        self.q.len()
    }

    /// Scheduled emissions refused at the capacity bound over this relay's
    /// lifetime (see [`GrowRelay::relay`]). 0 on clean runs.
    pub fn dropped(&self) -> u64 {
        self.q.dropped()
    }

    /// KILL-token erasure: "completely eradicate all traces of growing
    /// snake characters … both characters and markings" (§4.2.1 step 4).
    pub fn erase(&mut self) {
        self.visited = false;
        self.parent = None;
        self.initiator = false;
        self.q.clear();
    }

    /// True when indistinguishable from a factory-fresh relay — the state
    /// Lemma 4.2 promises after every RCA/BCA.
    pub fn is_pristine(&self) -> bool {
        !self.visited && self.parent.is_none() && !self.initiator && self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::Hop;

    fn body(o: u8, i: u8) -> SnakeChar {
        SnakeChar::Body(Hop::new(Port(o), Port(i)))
    }

    #[test]
    fn first_visit_adopts_parent_and_fills_star() {
        let mut r = GrowRelay::new(SnakeKind::Ig);
        assert!(!r.is_marked());
        let c = SnakeChar::Head(Hop::star(Port(2)));
        let got = r.accept(Port(1), c).expect("first arrival accepted");
        assert_eq!(got, SnakeChar::Head(Hop::new(Port(2), Port(1))));
        assert!(r.is_marked());
        assert_eq!(r.parent(), Some(Port(1)));
    }

    #[test]
    fn lowest_port_wins_simultaneous_arrival() {
        // Caller feeds ports in ascending order; the port-0 stream is
        // adopted, the port-1 stream ignored.
        let mut r = GrowRelay::new(SnakeKind::Ig);
        assert!(r
            .accept(Port(0), SnakeChar::Head(Hop::star(Port(5))))
            .is_some());
        assert!(r
            .accept(Port(1), SnakeChar::Head(Hop::star(Port(6))))
            .is_none());
        assert_eq!(r.parent(), Some(Port(0)));
    }

    #[test]
    fn only_parent_stream_accepted_afterwards() {
        let mut r = GrowRelay::new(SnakeKind::Og);
        r.accept(Port(2), SnakeChar::Head(Hop::star(Port(0))))
            .unwrap();
        assert!(r.accept(Port(0), body(1, 1)).is_none());
        assert!(r.accept(Port(2), body(1, 1)).is_some());
    }

    #[test]
    fn initiator_ignores_returning_snakes() {
        let mut r = GrowRelay::new(SnakeKind::Ig);
        r.start(10);
        assert!(r.is_initiator());
        assert!(r.parent().is_none());
        // A snake of our own kind looping back must be ignored.
        assert!(r
            .accept(Port(0), SnakeChar::Head(Hop::star(Port(0))))
            .is_none());
    }

    #[test]
    fn birth_schedule_heads_then_tail() {
        let mut r = GrowRelay::new(SnakeKind::Bg);
        r.start(10);
        assert_eq!(r.due(9), None);
        assert_eq!(r.due(10), Some(GrowEmit::Heads));
        assert_eq!(r.due(10), None);
        assert_eq!(r.due(11), Some(GrowEmit::Tail));
        assert!(!r.has_pending());
    }

    #[test]
    fn relay_dwells_speed_one() {
        let mut r = GrowRelay::new(SnakeKind::Ig);
        // adopt via the stream's head, then relay a body character
        r.accept(Port(0), SnakeChar::Head(Hop::star(Port(1))))
            .unwrap();
        let c = r.accept(Port(0), body(1, 0)).unwrap();
        r.relay(c, 100);
        assert_eq!(r.due(101), None);
        assert_eq!(r.due(102), Some(GrowEmit::Relay(body(1, 0))));
    }

    #[test]
    fn tail_triggers_extend_then_tail() {
        let mut r = GrowRelay::new(SnakeKind::Ig);
        r.accept(Port(0), SnakeChar::Head(Hop::star(Port(1))))
            .unwrap();
        let c = r.accept(Port(0), SnakeChar::Tail).unwrap();
        r.relay(c, 50);
        assert_eq!(r.due(52), Some(GrowEmit::Extend));
        assert_eq!(r.due(52), None);
        assert_eq!(r.due(53), Some(GrowEmit::Tail));
    }

    #[test]
    fn stream_spacing_preserved_through_relay() {
        // chars arriving 1 tick apart leave 1 tick apart
        let mut r = GrowRelay::new(SnakeKind::Ig);
        let h = r
            .accept(Port(0), SnakeChar::Head(Hop::star(Port(0))))
            .unwrap();
        r.relay(h, 10);
        let b = r.accept(Port(0), body(0, 0)).unwrap();
        r.relay(b, 11);
        assert!(matches!(
            r.due(12),
            Some(GrowEmit::Relay(SnakeChar::Head(_)))
        ));
        assert!(matches!(
            r.due(13),
            Some(GrowEmit::Relay(SnakeChar::Body(_)))
        ));
    }

    #[test]
    fn erase_restores_pristine() {
        let mut r = GrowRelay::new(SnakeKind::Og);
        let c = r
            .accept(Port(1), SnakeChar::Head(Hop::star(Port(0))))
            .unwrap();
        r.relay(c, 5);
        assert!(!r.is_pristine());
        r.erase();
        assert!(r.is_pristine());
        // and the relay can be re-visited afresh (head-first, as always)
        assert!(r
            .accept(Port(3), SnakeChar::Head(Hop::star(Port(0))))
            .is_some());
        assert_eq!(r.parent(), Some(Port(3)));
    }

    #[test]
    fn headless_stragglers_do_not_mark_fresh_nodes() {
        // A body or tail character hitting an unvisited node is a post-KILL
        // straggler; adopting it would regenerate an orphan flood, so it is
        // dropped (DESIGN.md §5).
        let mut r = GrowRelay::new(SnakeKind::Ig);
        assert!(r.accept(Port(2), body(1, 1)).is_none());
        assert!(r.accept(Port(2), SnakeChar::Tail).is_none());
        assert!(!r.is_marked());
        // a head still adopts normally afterwards
        assert!(r
            .accept(Port(2), SnakeChar::Head(Hop::star(Port(0))))
            .is_some());
        assert!(r.is_marked());
    }

    #[test]
    #[should_panic(expected = "growing kinds")]
    fn dying_kind_rejected() {
        let _ = GrowRelay::new(SnakeKind::Id);
    }
}
