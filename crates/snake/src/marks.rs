//! Marked loops (paper §2.4).
//!
//! A dying-snake pass leaves each processor on the loop with *predecessor
//! in-port* and *successor out-port* designations. A processor can sit on
//! the loop twice (once on the A→root half, once on root→A), so there are
//! two mark pairs; loop tokens alternate between them, starting with pair
//! #1. The root is special: the ID pass sets its predecessor #1 and the
//! conversion to OD sets its successor #2, so it routes #1 → #2 (footnote
//! 2). [`LoopMarks`] implements acceptance, routing, alternation, and
//! UNMARK-erasure for all these cases.

use gtd_netsim::Port;

/// Which predecessor/successor pair a dying snake sets (ID/BD → #1, OD → #2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MarkPair {
    /// Pair #1 — set by in-dying (and backwards-dying) snakes.
    First,
    /// Pair #2 — set by out-dying snakes.
    Second,
}

/// A resolved routing decision for one loop-token arrival.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Route {
    /// Successor out-port to forward through.
    pub succ: Port,
    /// The pair consumed by this traversal (what UNMARK erases).
    pub pair: MarkPair,
}

/// Predecessor/successor loop marks of one processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LoopMarks {
    pred1: Option<Port>,
    succ1: Option<Port>,
    pred2: Option<Port>,
    succ2: Option<Port>,
    /// Dual-marked processors alternate: false ⇒ next traversal uses pair
    /// #1, true ⇒ pair #2 (§2.4).
    expect_second: bool,
}

impl LoopMarks {
    /// Fresh, unmarked state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the predecessor in-port of a pair. Panics if already set — a
    /// processor appears at most twice on the loop (§2.4, Definition 2.1),
    /// once per pair.
    pub fn set_pred(&mut self, pair: MarkPair, p: Port) {
        let slot = match pair {
            MarkPair::First => &mut self.pred1,
            MarkPair::Second => &mut self.pred2,
        };
        assert!(slot.is_none(), "predecessor {pair:?} set twice");
        *slot = Some(p);
    }

    /// Set the successor out-port of a pair. Panics if already set.
    pub fn set_succ(&mut self, pair: MarkPair, p: Port) {
        let slot = match pair {
            MarkPair::First => &mut self.succ1,
            MarkPair::Second => &mut self.succ2,
        };
        assert!(slot.is_none(), "successor {pair:?} set twice");
        *slot = Some(p);
    }

    /// Predecessor of a pair.
    pub fn pred(&self, pair: MarkPair) -> Option<Port> {
        match pair {
            MarkPair::First => self.pred1,
            MarkPair::Second => self.pred2,
        }
    }

    /// Successor of a pair.
    pub fn succ(&self, pair: MarkPair) -> Option<Port> {
        match pair {
            MarkPair::First => self.succ1,
            MarkPair::Second => self.succ2,
        }
    }

    /// Would a loop token arriving through `arrival` be accepted right now,
    /// and if so where does it go? Does **not** advance the alternation —
    /// call [`LoopMarks::advance`] (loop tokens) or [`LoopMarks::unmark`]
    /// (UNMARK token) after acting on the route.
    ///
    /// Routing cases:
    /// * both full pairs set → alternation decides which pair is "appropriate";
    /// * exactly one full pair set → that pair;
    /// * the root pattern (pred #1 + succ #2 only) → #1 in, #2 out.
    pub fn route(&self, arrival: Port) -> Option<Route> {
        let full1 = self.pred1.zip(self.succ1);
        let full2 = self.pred2.zip(self.succ2);
        match (full1, full2) {
            (Some((p1, s1)), Some((p2, s2))) => {
                let (p, s, pair) = if self.expect_second {
                    (p2, s2, MarkPair::Second)
                } else {
                    (p1, s1, MarkPair::First)
                };
                (arrival == p).then_some(Route { succ: s, pair })
            }
            (Some((p1, s1)), None) => (arrival == p1).then_some(Route {
                succ: s1,
                pair: MarkPair::First,
            }),
            (None, Some((p2, s2))) => (arrival == p2).then_some(Route {
                succ: s2,
                pair: MarkPair::Second,
            }),
            (None, None) => {
                // Root pattern: predecessor #1 paired with successor #2.
                match (self.pred1, self.succ2, self.succ1, self.pred2) {
                    (Some(p1), Some(s2), None, None) if arrival == p1 => Some(Route {
                        succ: s2,
                        pair: MarkPair::First,
                    }),
                    _ => None,
                }
            }
        }
    }

    /// Advance the alternation after forwarding a loop token along `route`.
    pub fn advance(&mut self, _route: Route) {
        if self.pred1.zip(self.succ1).is_some() && self.pred2.zip(self.succ2).is_some() {
            self.expect_second = !self.expect_second;
        }
    }

    /// UNMARK pass: route the token, then "forget those predecessor and
    /// successor designations" (§4.2.1 step 5) for the pair used. The root
    /// pattern erases both its ports.
    pub fn unmark(&mut self, arrival: Port) -> Option<Route> {
        let route = self.route(arrival)?;
        let root_pattern = self.succ1.is_none()
            && self.pred2.is_none()
            && self.pred1.is_some()
            && self.succ2.is_some();
        if root_pattern {
            self.pred1 = None;
            self.succ2 = None;
        } else {
            match route.pair {
                MarkPair::First => {
                    self.pred1 = None;
                    self.succ1 = None;
                }
                MarkPair::Second => {
                    self.pred2 = None;
                    self.succ2 = None;
                }
            }
        }
        if self.is_clear() {
            self.expect_second = false;
        }
        Some(route)
    }

    /// Erase everything unconditionally (used by the loop *creator*, which
    /// absorbs the UNMARK rather than forwarding it).
    pub fn clear(&mut self) {
        *self = LoopMarks::default();
    }

    /// Are any marks set?
    pub fn is_marked(&self) -> bool {
        self.pred1.is_some() || self.succ1.is_some() || self.pred2.is_some() || self.succ2.is_some()
    }

    /// True when fully unmarked with reset alternation (Lemma 4.2 state).
    pub fn is_clear(&self) -> bool {
        !self.is_marked()
    }

    /// True when indistinguishable from factory-fresh.
    pub fn is_pristine(&self) -> bool {
        *self == LoopMarks::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pair_routes_and_rejects() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(1));
        m.set_succ(MarkPair::First, Port(2));
        let r = m.route(Port(1)).unwrap();
        assert_eq!(r.succ, Port(2));
        assert_eq!(r.pair, MarkPair::First);
        assert!(m.route(Port(0)).is_none());
    }

    #[test]
    fn second_pair_only_routes() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::Second, Port(0));
        m.set_succ(MarkPair::Second, Port(3));
        let r = m.route(Port(0)).unwrap();
        assert_eq!(r.succ, Port(3));
        assert_eq!(r.pair, MarkPair::Second);
    }

    #[test]
    fn dual_marks_alternate_starting_with_first() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(0));
        m.set_succ(MarkPair::First, Port(0));
        m.set_pred(MarkPair::Second, Port(1));
        m.set_succ(MarkPair::Second, Port(1));
        // pass 1: only pred1 accepted
        assert!(m.route(Port(1)).is_none());
        let r1 = m.route(Port(0)).unwrap();
        assert_eq!(r1.pair, MarkPair::First);
        m.advance(r1);
        // pass 2: only pred2 accepted
        assert!(m.route(Port(0)).is_none());
        let r2 = m.route(Port(1)).unwrap();
        assert_eq!(r2.pair, MarkPair::Second);
        m.advance(r2);
        // next full circle starts at pair 1 again
        assert!(m.route(Port(0)).is_some());
    }

    #[test]
    fn root_pattern_routes_pred1_to_succ2() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(2));
        m.set_succ(MarkPair::Second, Port(0));
        let r = m.route(Port(2)).unwrap();
        assert_eq!(r.succ, Port(0));
        assert!(m.route(Port(0)).is_none());
    }

    #[test]
    fn unmark_single_pair_clears() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(1));
        m.set_succ(MarkPair::First, Port(2));
        let r = m.unmark(Port(1)).unwrap();
        assert_eq!(r.succ, Port(2));
        assert!(m.is_pristine());
        // a second unmark finds nothing
        assert!(m.unmark(Port(1)).is_none());
    }

    #[test]
    fn unmark_dual_clears_pairs_in_traversal_order() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(0));
        m.set_succ(MarkPair::First, Port(0));
        m.set_pred(MarkPair::Second, Port(1));
        m.set_succ(MarkPair::Second, Port(1));
        let r1 = m.unmark(Port(0)).unwrap();
        assert_eq!(r1.pair, MarkPair::First);
        assert!(m.is_marked());
        // after pair 1 is gone, pair 2 routes as a single pair
        let r2 = m.unmark(Port(1)).unwrap();
        assert_eq!(r2.pair, MarkPair::Second);
        assert!(m.is_pristine());
    }

    #[test]
    fn unmark_root_pattern_clears_both_ports() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(2));
        m.set_succ(MarkPair::Second, Port(1));
        let r = m.unmark(Port(2)).unwrap();
        assert_eq!(r.succ, Port(1));
        assert!(m.is_pristine());
    }

    #[test]
    fn full_token_circuit_then_unmark_circuit_resets_alternation() {
        // Simulates a dual processor during one FORWARD circle + one UNMARK
        // circle: alternation must end where it started.
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(0));
        m.set_succ(MarkPair::First, Port(0));
        m.set_pred(MarkPair::Second, Port(1));
        m.set_succ(MarkPair::Second, Port(1));
        let r = m.route(Port(0)).unwrap();
        m.advance(r);
        let r = m.route(Port(1)).unwrap();
        m.advance(r);
        assert!(m.unmark(Port(0)).is_some());
        assert!(m.unmark(Port(1)).is_some());
        assert!(m.is_pristine());
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_set_pred_panics() {
        let mut m = LoopMarks::new();
        m.set_pred(MarkPair::First, Port(0));
        m.set_pred(MarkPair::First, Port(1));
    }
}
