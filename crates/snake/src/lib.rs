//! # gtd-snake
//!
//! The data structures of Goldstein's protocol (paper §2): **tokens**,
//! **snakes**, **speeds**, and **marked loops**, implemented as reusable
//! finite-state components that `gtd-core`'s protocol automaton composes.
//!
//! A *snake* (Even–Litman–Winkler) is an arbitrarily long string of
//! constant-size characters stored across adjacent processors; its
//! characters encode a path as a series of `(out-port, in-port)` hops.
//! *Growing* snakes flood breadth-first and generate encoded paths;
//! *dying* snakes consume themselves to mark an encoded path. *Tokens* are
//! single constant-size markers (KILL, UNMARK, loop tokens). Every
//! construct moves at *speed-1* (3 ticks per hop) or *speed-3*
//! (1 tick per hop); the 3:1 ratio is what lets KILL tokens provably catch
//! up with growing-snake heads (paper Lemma 4.2).
//!
//! Nothing here decides *when* to do anything — initiation, conversion at
//! the root, and all sequencing live in `gtd-core`. This crate guarantees
//! the local, per-processor rules of §2 are followed exactly.

pub mod chars;
pub mod dying;
pub mod grow;
pub mod marks;
pub mod path;
pub mod signal;
pub mod speed;

pub use chars::{Hop, SnakeChar, SnakeKind};
pub use dying::{DyingEmit, DyingPassage};
pub use grow::{GrowEmit, GrowRelay};
pub use marks::{LoopMarks, MarkPair, Route};
pub use path::PortPath;
pub use signal::{BcaMsg, DfsToken, LoopToken, Signal};
pub use speed::{DwellQueue, SPEED1_DWELL, SPEED3_DWELL};
