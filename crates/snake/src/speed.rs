//! Speeds (paper §2.1).
//!
//! "A speed-1 construct will enter a processor. It will then remain there
//! for 3 global clock ticks. At the third clock tick, it will proceed along
//! its designated path. Similarly, a speed-3 construct will wait only 1
//! global clock tick."
//!
//! Our tick convention: a character received as input at tick *t* is
//! re-emitted as output at tick *t + dwell* and therefore received by the
//! next processor at *t + dwell + 1*. With [`SPEED1_DWELL`] = 2 a speed-1
//! construct advances one hop every 3 ticks; with [`SPEED3_DWELL`] = 0 a
//! speed-3 construct advances one hop per tick — exactly the paper's 3:1
//! ratio that Lemma 4.2's catch-up argument needs.
//!
//! Because consecutive snake characters can be spaced as little as one tick
//! apart (a newborn snake is head-then-tail on consecutive ticks, §2.3.2),
//! several characters of the same snake may dwell in one processor at once.
//! [`DwellQueue`] holds them in FIFO order with per-item deadlines. The
//! queue's occupancy is bounded by a small constant (the emission rate
//! equals the arrival rate, at most one per tick), so the processor stays
//! finite-state; [`DwellQueue::HARD_CAP`] turns any violation of that
//! reasoning into a loud failure instead of silent unbounded memory.

use std::collections::VecDeque;

/// Ticks a speed-1 construct dwells between reception and re-emission.
pub const SPEED1_DWELL: u64 = 2;

/// Ticks a speed-3 construct dwells between reception and re-emission.
pub const SPEED3_DWELL: u64 = 0;

/// A FIFO of items with emission deadlines, preserving arrival order.
///
/// Deadlines must be pushed in non-decreasing order (streams cannot
/// overtake themselves); this is asserted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DwellQueue<T> {
    items: VecDeque<(u64, T)>,
}

impl<T> Default for DwellQueue<T> {
    fn default() -> Self {
        DwellQueue {
            items: VecDeque::new(),
        }
    }
}

impl<T> DwellQueue<T> {
    /// Finite-state guard: a correct protocol never holds more than a
    /// handful of characters per construct per processor (analysis in the
    /// module docs says ≲ 4). Exceeding this means the automaton is no
    /// longer finite-state — fail loudly.
    pub const HARD_CAP: usize = 16;

    /// New empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `item` for emission at `deadline`.
    pub fn push(&mut self, deadline: u64, item: T) {
        if let Some(&(last, _)) = self.items.back() {
            assert!(
                deadline >= last,
                "DwellQueue deadlines must be non-decreasing ({deadline} < {last})"
            );
        }
        self.items.push_back((deadline, item));
        assert!(
            self.items.len() <= Self::HARD_CAP,
            "DwellQueue overflow: the automaton is no longer finite-state"
        );
    }

    /// Capacity-bounded [`DwellQueue::push`]: when the buffer is full,
    /// drop `item` and return `false` instead of panicking.
    ///
    /// A clean protocol run never holds more than a handful of characters
    /// per construct (see [`DwellQueue::HARD_CAP`]), so in undisturbed
    /// executions this behaves exactly like `push`. After a live topology
    /// mutation, though, an orphaned *growing* snake can circulate a
    /// cycle forever — and growing snakes grow, one extension character
    /// per tail pass, so the circulating junk stream's occupancy rises
    /// without bound. A physical processor's buffer is finite; dropping
    /// characters from a stream that only exists because the network
    /// changed under it loses nothing (the session-level remap driver
    /// recovers the disturbed epoch), while keeping the automaton honest
    /// about its constant size.
    pub fn push_bounded(&mut self, deadline: u64, item: T) -> bool {
        if self.items.len() >= Self::HARD_CAP {
            return false;
        }
        self.push(deadline, item);
        true
    }

    /// Pop the next item whose deadline is ≤ `now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        match self.items.front() {
            Some(&(deadline, _)) if deadline <= now => self.items.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Earliest pending deadline.
    pub fn next_deadline(&self) -> Option<u64> {
        self.items.front().map(|&(d, _)| d)
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop everything (KILL-token erasure).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate over pending `(deadline, item)` pairs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &(u64, T)> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_ratio_is_three() {
        // hop latency = dwell + 1 wire tick
        assert_eq!((SPEED1_DWELL + 1) / (SPEED3_DWELL + 1), 3);
    }

    #[test]
    fn pop_respects_deadlines_and_order() {
        let mut q = DwellQueue::new();
        q.push(5, 'a');
        q.push(5, 'b');
        q.push(7, 'c');
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some('a'));
        assert_eq!(q.pop_due(5), Some('b'));
        assert_eq!(q.pop_due(5), None); // 'c' not due yet
        assert_eq!(q.pop_due(8), Some('c'));
        assert!(q.is_empty());
    }

    #[test]
    fn late_pop_still_fifo() {
        let mut q = DwellQueue::new();
        q.push(1, 1);
        q.push(2, 2);
        assert_eq!(q.pop_due(10), Some(1));
        assert_eq!(q.pop_due(10), Some(2));
    }

    #[test]
    fn next_deadline_and_len() {
        let mut q = DwellQueue::new();
        assert_eq!(q.next_deadline(), None);
        q.push(3, ());
        q.push(4, ());
        assert_eq!(q.next_deadline(), Some(3));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_deadline_panics() {
        let mut q = DwellQueue::new();
        q.push(5, ());
        q.push(4, ());
    }

    #[test]
    #[should_panic(expected = "finite-state")]
    fn overflow_panics() {
        let mut q = DwellQueue::new();
        for i in 0..=DwellQueue::<u32>::HARD_CAP as u64 {
            q.push(i, 0u32);
        }
    }
}
