//! Speeds (paper §2.1).
//!
//! "A speed-1 construct will enter a processor. It will then remain there
//! for 3 global clock ticks. At the third clock tick, it will proceed along
//! its designated path. Similarly, a speed-3 construct will wait only 1
//! global clock tick."
//!
//! Our tick convention: a character received as input at tick *t* is
//! re-emitted as output at tick *t + dwell* and therefore received by the
//! next processor at *t + dwell + 1*. With [`SPEED1_DWELL`] = 2 a speed-1
//! construct advances one hop every 3 ticks; with [`SPEED3_DWELL`] = 0 a
//! speed-3 construct advances one hop per tick — exactly the paper's 3:1
//! ratio that Lemma 4.2's catch-up argument needs.
//!
//! Because consecutive snake characters can be spaced as little as one tick
//! apart (a newborn snake is head-then-tail on consecutive ticks, §2.3.2),
//! several characters of the same snake may dwell in one processor at once.
//! [`DwellQueue`] holds them in FIFO order with per-item deadlines. The
//! queue's occupancy is bounded by a small constant (the emission rate
//! equals the arrival rate, at most one per tick), so the processor stays
//! finite-state; [`DwellQueue::HARD_CAP`] turns any violation of that
//! reasoning into a loud failure instead of silent unbounded memory.
//!
//! ## Storage
//!
//! The queue is backed by a lazily-allocated **fixed-capacity slab**: one
//! heap block of exactly [`DwellQueue::HARD_CAP`] slots, allocated on the
//! first push, retained across [`DwellQueue::clear`], and never resized. An
//! idle lane costs one pointer; an active lane costs one allocation for the
//! lifetime of the processor — there is no growable `VecDeque` to
//! reallocate mid-protocol, which is what keeps the steady-state tick loop
//! allocation-free at million-node scale. Deadlines are stored as `u16`
//! offsets from a slab-local base tick (rebased on every pop, so the live
//! span stays within a few dwell windows) — 4 bytes per slot of
//! bookkeeping instead of a 16-byte `(u64, T)` tuple.

/// Ticks a speed-1 construct dwells between reception and re-emission.
pub const SPEED1_DWELL: u64 = 2;

/// Ticks a speed-3 construct dwells between reception and re-emission.
pub const SPEED3_DWELL: u64 = 0;

const CAP: usize = 16;

/// The lazily-allocated backing store: a bounded ring of `CAP` slots.
#[derive(Clone, Debug)]
struct Slab<T> {
    /// Absolute tick that offset 0 encodes; rebased so the front entry's
    /// offset is always 0 after a pop.
    base: u64,
    head: u8,
    len: u8,
    /// Per-slot deadline as `base + offs[slot]`.
    offs: [u16; CAP],
    items: [T; CAP],
}

impl<T: Copy + Default> Slab<T> {
    fn new() -> Self {
        Slab {
            base: 0,
            head: 0,
            len: 0,
            offs: [0; CAP],
            items: [T::default(); CAP],
        }
    }

    #[inline]
    fn slot(&self, i: usize) -> usize {
        (self.head as usize + i) % CAP
    }

    #[inline]
    fn deadline_at(&self, i: usize) -> u64 {
        self.base + self.offs[self.slot(i)] as u64
    }
}

/// A FIFO of items with emission deadlines, preserving arrival order.
///
/// Deadlines must be pushed in non-decreasing order (streams cannot
/// overtake themselves); this is asserted.
///
/// Equality compares the live `(deadline, item)` sequence plus the drop
/// counter; slab identity and dead slots are ignored.
#[derive(Clone, Debug)]
pub struct DwellQueue<T> {
    slab: Option<Box<Slab<T>>>,
    /// Scheduled emissions refused at [`DwellQueue::HARD_CAP`] (see
    /// [`DwellQueue::push_bounded`]); never reset, surfaced per-run as the
    /// `dropped` statistic.
    dropped: u64,
}

impl<T> Default for DwellQueue<T> {
    fn default() -> Self {
        DwellQueue {
            slab: None,
            dropped: 0,
        }
    }
}

impl<T: Copy + Default> DwellQueue<T> {
    /// Finite-state guard: a correct protocol never holds more than a
    /// handful of characters per construct per processor (analysis in the
    /// module docs says ≲ 4). Exceeding this means the automaton is no
    /// longer finite-state — fail loudly.
    pub const HARD_CAP: usize = CAP;

    /// New empty queue. Allocates nothing until the first push.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `item` for emission at `deadline`.
    pub fn push(&mut self, deadline: u64, item: T) {
        let slab = self.slab.get_or_insert_with(|| Box::new(Slab::new()));
        if slab.len == 0 {
            slab.base = deadline;
            slab.head = 0;
        } else {
            let last = slab.base + slab.offs[slab.slot(slab.len as usize - 1)] as u64;
            assert!(
                deadline >= last,
                "DwellQueue deadlines must be non-decreasing ({deadline} < {last})"
            );
        }
        assert!(
            (slab.len as usize) < CAP,
            "DwellQueue overflow: the automaton is no longer finite-state"
        );
        // The front offset is rebased to 0 on every pop, so the live span
        // is a few dwell windows at most — u16 is generous.
        let off = deadline - slab.base;
        assert!(off <= u16::MAX as u64, "DwellQueue deadline span overflow");
        let slot = slab.slot(slab.len as usize);
        slab.offs[slot] = off as u16;
        slab.items[slot] = item;
        slab.len += 1;
    }

    /// Capacity-bounded [`DwellQueue::push`]: when the buffer is full,
    /// drop `item`, count the drop, and return `false` instead of
    /// panicking.
    ///
    /// A clean protocol run never holds more than a handful of characters
    /// per construct (see [`DwellQueue::HARD_CAP`]), so in undisturbed
    /// executions this behaves exactly like `push`. After a live topology
    /// mutation, though, an orphaned *growing* snake can circulate a
    /// cycle forever — and growing snakes grow, one extension character
    /// per tail pass, so the circulating junk stream's occupancy rises
    /// without bound. A physical processor's buffer is finite; dropping
    /// characters from a stream that only exists because the network
    /// changed under it loses nothing (the session-level remap driver
    /// recovers the disturbed epoch), while keeping the automaton honest
    /// about its constant size. Every refusal increments
    /// [`DwellQueue::dropped`] so lossy-cap behavior is observable.
    pub fn push_bounded(&mut self, deadline: u64, item: T) -> bool {
        if self.len() >= Self::HARD_CAP {
            self.dropped += 1;
            return false;
        }
        self.push(deadline, item);
        true
    }

    /// Record `k` scheduled emissions refused without entering the queue
    /// (the all-or-nothing tail-extension rule drops pairs up front).
    pub fn record_drops(&mut self, k: u64) {
        self.dropped += k;
    }

    /// Total scheduled emissions refused at capacity over this queue's
    /// lifetime. 0 on clean (mutation-free) runs.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pop the next item whose deadline is ≤ `now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<T> {
        let slab = self.slab.as_deref_mut()?;
        if slab.len == 0 || slab.base + slab.offs[slab.head as usize] as u64 > now {
            return None;
        }
        let item = slab.items[slab.head as usize];
        slab.head = ((slab.head as usize + 1) % CAP) as u8;
        slab.len -= 1;
        // Rebase so the new front sits at offset 0; keeps every live
        // offset within a dwell-window span of the base however long the
        // queue stays continuously occupied.
        if slab.len > 0 {
            let d = slab.offs[slab.head as usize];
            if d > 0 {
                slab.base += d as u64;
                for i in 0..slab.len as usize {
                    let s = (slab.head as usize + i) % CAP;
                    slab.offs[s] -= d;
                }
            }
        }
        Some(item)
    }

    /// Earliest pending deadline.
    pub fn next_deadline(&self) -> Option<u64> {
        let slab = self.slab.as_deref()?;
        (slab.len > 0).then(|| slab.deadline_at(0))
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.slab.as_deref().map_or(0, |s| s.len as usize)
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (KILL-token erasure). The slab is retained for
    /// reuse; the drop counter is a lifetime statistic and survives too.
    pub fn clear(&mut self) {
        if let Some(slab) = self.slab.as_deref_mut() {
            slab.len = 0;
            slab.head = 0;
        }
    }

    /// Iterate over pending `(deadline, item)` pairs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        let slab = self.slab.as_deref();
        let len = slab.map_or(0, |s| s.len as usize);
        (0..len).map(move |i| {
            let s = slab.expect("len > 0 implies a slab");
            (s.deadline_at(i), s.items[s.slot(i)])
        })
    }
}

impl<T: Copy + Default + PartialEq> PartialEq for DwellQueue<T> {
    fn eq(&self, other: &Self) -> bool {
        self.dropped == other.dropped && self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: Copy + Default + Eq> Eq for DwellQueue<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_ratio_is_three() {
        // hop latency = dwell + 1 wire tick
        assert_eq!((SPEED1_DWELL + 1) / (SPEED3_DWELL + 1), 3);
    }

    #[test]
    fn pop_respects_deadlines_and_order() {
        let mut q = DwellQueue::new();
        q.push(5, b'a');
        q.push(5, b'b');
        q.push(7, b'c');
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some(b'a'));
        assert_eq!(q.pop_due(5), Some(b'b'));
        assert_eq!(q.pop_due(5), None); // 'c' not due yet
        assert_eq!(q.pop_due(8), Some(b'c'));
        assert!(q.is_empty());
    }

    #[test]
    fn late_pop_still_fifo() {
        let mut q = DwellQueue::new();
        q.push(1, 1);
        q.push(2, 2);
        assert_eq!(q.pop_due(10), Some(1));
        assert_eq!(q.pop_due(10), Some(2));
    }

    #[test]
    fn next_deadline_and_len() {
        let mut q = DwellQueue::new();
        assert_eq!(q.next_deadline(), None);
        q.push(3, ());
        q.push(4, ());
        assert_eq!(q.next_deadline(), Some(3));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn slab_ring_wraps_and_rebases() {
        // Drive far more traffic than CAP through the queue; the ring
        // must wrap and the offset rebasing must keep deadlines exact.
        let mut q = DwellQueue::new();
        let mut expect = std::collections::VecDeque::new();
        let mut next = 0u64;
        for round in 0..10u64 {
            let t = round * 1_000_000; // huge gaps stress the u16 offsets
            for k in 0..7 {
                q.push(t + k, next);
                expect.push_back(next);
                next += 1;
            }
            for _ in 0..7 {
                assert_eq!(q.pop_due(t + 10), expect.pop_front());
            }
            assert!(q.is_empty());
        }
    }

    #[test]
    fn push_bounded_counts_drops() {
        let mut q = DwellQueue::new();
        for i in 0..DwellQueue::<u32>::HARD_CAP as u64 {
            assert!(q.push_bounded(i, 0u32));
        }
        assert_eq!(q.dropped(), 0);
        assert!(!q.push_bounded(99, 0u32));
        assert!(!q.push_bounded(99, 0u32));
        assert_eq!(q.dropped(), 2);
        // the counter survives erasure — it is a lifetime statistic
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.dropped(), 2);
        q.record_drops(3);
        assert_eq!(q.dropped(), 5);
    }

    #[test]
    fn equality_ignores_dead_slots() {
        let mut a = DwellQueue::new();
        let mut b = DwellQueue::new();
        // Different slab histories, same live contents.
        a.push(1, 7u32);
        a.pop_due(1);
        a.push(5, 9);
        b.push(5, 9);
        assert_eq!(a, b);
        b.pop_due(5);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_deadline_panics() {
        let mut q = DwellQueue::new();
        q.push(5, ());
        q.push(4, ());
    }

    #[test]
    #[should_panic(expected = "finite-state")]
    fn overflow_panics() {
        let mut q = DwellQueue::new();
        for i in 0..=DwellQueue::<u32>::HARD_CAP as u64 {
            q.push(i, 0u32);
        }
    }
}
