//! Port-path codec.
//!
//! A snake body encodes a path as a sequence of `(out-port, in-port)` hops
//! (§2.3). The master computer reassembles these into [`PortPath`]s, which
//! serve as the globally unique, reproducible processor names of the GTD
//! protocol ("the canonical shortest path", Definition 4.1).

use crate::chars::Hop;
use gtd_netsim::{NodeId, Port, Topology};

/// A path through the network as port pairs, relative to some start node.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PortPath {
    hops: Vec<(Port, Port)>,
}

impl PortPath {
    /// The empty path (names the start node itself).
    pub fn empty() -> Self {
        PortPath::default()
    }

    /// Build from complete hops; panics on an unfilled `∗`.
    pub fn from_hops(hops: impl IntoIterator<Item = Hop>) -> Self {
        PortPath {
            hops: hops
                .into_iter()
                .map(|h| (h.out_port, h.in_port.expect("path hop with unfilled ∗")))
                .collect(),
        }
    }

    /// Build from explicit `(out, in)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Port, Port)>) -> Self {
        PortPath {
            hops: pairs.into_iter().collect(),
        }
    }

    /// Append one hop.
    pub fn push(&mut self, out_port: Port, in_port: Port) {
        self.hops.push((out_port, in_port));
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Is this the empty path?
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The hops as `(out-port, in-port)` pairs.
    pub fn pairs(&self) -> &[(Port, Port)] {
        &self.hops
    }

    /// Just the out-port sequence (enough to walk the path forward).
    pub fn out_ports(&self) -> Vec<Port> {
        self.hops.iter().map(|&(o, _)| o).collect()
    }

    /// Resolve the path against a ground-truth topology, checking that every
    /// recorded in-port matches the wire actually walked. Returns the node
    /// reached. Used to translate master-computer names back to simulator
    /// node ids during verification.
    pub fn resolve(&self, topo: &Topology, from: NodeId) -> Option<NodeId> {
        let mut cur = from;
        for &(o, i) in &self.hops {
            let ep = topo.out_endpoint(cur, o)?;
            if ep.port != i {
                return None;
            }
            cur = ep.node;
        }
        Some(cur)
    }
}

impl std::fmt::Display for PortPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.hops.is_empty() {
            return f.write_str("ε");
        }
        for (k, (o, i)) in self.hops.iter().enumerate() {
            if k > 0 {
                f.write_str("·")?;
            }
            write!(f, "({},{})", o.0, i.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::generators;

    #[test]
    fn empty_path_resolves_to_self() {
        let t = generators::ring(3);
        let p = PortPath::empty();
        assert_eq!(p.resolve(&t, NodeId(1)), Some(NodeId(1)));
        assert!(p.is_empty());
        assert_eq!(format!("{p}"), "ε");
    }

    #[test]
    fn path_resolves_along_ring() {
        let t = generators::ring(4);
        // every hop uses out-port 0 / in-port 0 on a ring built with connect_auto
        let p = PortPath::from_pairs([(Port(0), Port(0)), (Port(0), Port(0))]);
        assert_eq!(p.resolve(&t, NodeId(0)), Some(NodeId(2)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn mismatched_in_port_fails_resolution() {
        let t = generators::ring(4);
        let p = PortPath::from_pairs([(Port(0), Port(1))]); // real wire lands on in-port 0
        assert_eq!(p.resolve(&t, NodeId(0)), None);
    }

    #[test]
    fn unwired_out_port_fails_resolution() {
        let t = generators::ring(4);
        let p = PortPath::from_pairs([(Port(1), Port(0))]);
        assert_eq!(p.resolve(&t, NodeId(0)), None);
    }

    #[test]
    fn from_hops_and_display() {
        let p = PortPath::from_hops([Hop::new(Port(1), Port(2)), Hop::new(Port(0), Port(3))]);
        assert_eq!(p.pairs(), &[(Port(1), Port(2)), (Port(0), Port(3))]);
        assert_eq!(p.out_ports(), vec![Port(1), Port(0)]);
        assert_eq!(format!("{p}"), "(1,2)·(0,3)");
    }

    #[test]
    #[should_panic(expected = "unfilled")]
    fn star_hop_panics() {
        let _ = PortPath::from_hops([Hop::star(Port(0))]);
    }

    #[test]
    fn paths_order_and_hash_as_names() {
        use std::collections::HashSet;
        let a = PortPath::from_pairs([(Port(0), Port(0))]);
        let b = PortPath::from_pairs([(Port(0), Port(1))]);
        let mut set = HashSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        set.insert(a.clone());
        assert_eq!(set.len(), 2);
        assert!(a < b);
    }
}
