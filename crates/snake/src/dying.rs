//! Dying snakes (paper §2.3.3).
//!
//! A dying snake marks the path its body encodes. Its head tells the
//! current processor which ports the path uses; the first body character
//! after the head is promoted to the new head and sent one hop further; all
//! later characters pass through unchanged; the snake shrinks by one
//! character per processor — hence "dying".
//!
//! [`DyingPassage`] handles one snake's transit through one processor. The
//! *caller* (the protocol automaton) consumes the head — because mark-pair
//! selection and kind conversion are role decisions: ordinary processors
//! pass ID→ID on pair #1 and OD→OD on pair #2, the root converts ID→OD
//! using predecessor #1 / successor #2 (§2.3.3 + footnote 2), and processor
//! A starts an ID passage by eating an *OG* head (§4.2.1 step 3). The
//! passage then schedules the converted emissions at speed-1 and reports
//! whether this processor turned out to be the **path endpoint** (its head
//! was immediately followed by the tail) — the local test our BCA
//! reconstruction uses to let the target recognize itself (DESIGN.md §5).

use crate::chars::{SnakeChar, SnakeKind};
use crate::speed::{DwellQueue, SPEED1_DWELL};
use gtd_netsim::Port;

/// A scheduled dying-snake emission: one character through the successor
/// out-port recorded by the passage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DyingEmit {
    /// The character to place on the wire.
    pub c: SnakeChar,
    /// The successor out-port to emit through.
    pub port: Port,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DState {
    /// No dying snake of this lane has arrived.
    Idle,
    /// Head consumed; the next character decides head-promotion vs endpoint.
    AwaitFirst,
    /// Mid-body: pass characters through unchanged until the tail.
    Passing,
    /// Tail has been scheduled; the passage is over (marks remain until
    /// UNMARK).
    Done,
}

/// One dying snake's transit through one processor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DyingPassage {
    /// Kind used for emitted characters (differs from the incoming kind at
    /// converting processors: root ID→OD, processor A OG→ID).
    out_kind: SnakeKind,
    state: DState,
    pred: Option<Port>,
    succ: Option<Port>,
    endpoint: bool,
    q: DwellQueue<SnakeChar>,
}

impl DyingPassage {
    /// Fresh, quiescent passage emitting characters of `out_kind`.
    pub fn new(out_kind: SnakeKind) -> Self {
        assert!(out_kind.is_dying(), "DyingPassage emits dying kinds");
        DyingPassage {
            out_kind,
            state: DState::Idle,
            pred: None,
            succ: None,
            endpoint: false,
            q: DwellQueue::new(),
        }
    }

    /// Kind of the characters this passage emits.
    pub fn out_kind(&self) -> SnakeKind {
        self.out_kind
    }

    /// The caller has consumed a head that arrived through in-port `pred`
    /// and carried successor out-port `succ`. (Mark setting is the caller's
    /// job — which pair depends on the processor's role.)
    pub fn begin(&mut self, pred: Port, succ: Port) {
        assert_eq!(self.state, DState::Idle, "dying passage already active");
        self.state = DState::AwaitFirst;
        self.pred = Some(pred);
        self.succ = Some(succ);
    }

    /// Feed the next stream character (caller guarantees it arrived through
    /// the predecessor in-port — asserted). Returns `true` when this call
    /// identified the processor as the path endpoint.
    pub fn feed(&mut self, port: Port, c: SnakeChar, now: u64) -> bool {
        assert_eq!(Some(port), self.pred, "dying character arrived off-path");
        match (self.state, c) {
            (DState::AwaitFirst, SnakeChar::Tail) => {
                // Head immediately followed by tail: we are the last
                // processor of the marked path. The tail is forwarded as-is
                // (§2.3.3: "if the next character happens to be a tail,
                // then it gets sent through the successor out-port as is").
                self.endpoint = true;
                self.state = DState::Done;
                self.q.push(now + SPEED1_DWELL, SnakeChar::Tail);
                true
            }
            (DState::AwaitFirst, c) => {
                // First body character → promoted to the new head.
                self.state = DState::Passing;
                self.q.push(now + SPEED1_DWELL, c.as_head());
                false
            }
            (DState::Passing, SnakeChar::Tail) => {
                self.state = DState::Done;
                self.q.push(now + SPEED1_DWELL, SnakeChar::Tail);
                false
            }
            (DState::Passing, c) => {
                // Pass through exactly as received (as a body character).
                self.q.push(now + SPEED1_DWELL, c.as_body());
                false
            }
            (s, c) => panic!("dying passage fed {c:?} in state {s:?}"),
        }
    }

    /// Pop the next emission due at `now`.
    pub fn due(&mut self, now: u64) -> Option<DyingEmit> {
        let port = self.succ?;
        self.q.pop_due(now).map(|c| DyingEmit { c, port })
    }

    /// Earliest pending emission deadline.
    pub fn next_deadline(&self) -> Option<u64> {
        self.q.next_deadline()
    }

    /// Has the snake arrived (head consumed) on this lane?
    pub fn is_active(&self) -> bool {
        self.state != DState::Idle
    }

    /// Has the whole snake passed (tail scheduled/sent)?
    pub fn is_done(&self) -> bool {
        self.state == DState::Done
    }

    /// Was this processor the endpoint of the marked path?
    pub fn is_endpoint(&self) -> bool {
        self.endpoint
    }

    /// The predecessor in-port recorded at head consumption.
    pub fn pred(&self) -> Option<Port> {
        self.pred
    }

    /// The successor out-port recorded at head consumption.
    pub fn succ(&self) -> Option<Port> {
        self.succ
    }

    /// Any scheduled emissions pending?
    pub fn has_pending(&self) -> bool {
        !self.q.is_empty()
    }

    /// Number of characters dwelling here (E5 census).
    pub fn pending_len(&self) -> usize {
        self.q.len()
    }

    /// Reset for the next RCA/BCA (performed alongside UNMARK).
    pub fn reset(&mut self) {
        self.state = DState::Idle;
        self.pred = None;
        self.succ = None;
        self.endpoint = false;
        self.q.clear();
    }

    /// True when indistinguishable from a factory-fresh passage.
    pub fn is_pristine(&self) -> bool {
        self.state == DState::Idle
            && self.pred.is_none()
            && self.succ.is_none()
            && !self.endpoint
            && self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::Hop;

    fn body(o: u8, i: u8) -> SnakeChar {
        SnakeChar::Body(Hop::new(Port(o), Port(i)))
    }

    #[test]
    fn first_body_promoted_to_head() {
        let mut p = DyingPassage::new(SnakeKind::Id);
        p.begin(Port(1), Port(2));
        assert!(!p.feed(Port(1), body(3, 0), 10));
        let e = p.due(12).unwrap();
        assert_eq!(e.port, Port(2));
        assert_eq!(e.c, SnakeChar::Head(Hop::new(Port(3), Port(0))));
        assert!(!p.is_done());
    }

    #[test]
    fn later_chars_pass_unchanged_then_tail_finishes() {
        let mut p = DyingPassage::new(SnakeKind::Od);
        p.begin(Port(0), Port(0));
        p.feed(Port(0), body(1, 1), 10);
        p.feed(Port(0), body(2, 2), 11);
        p.feed(Port(0), SnakeChar::Tail, 12);
        assert!(p.is_done());
        assert!(!p.is_endpoint());
        assert_eq!(
            p.due(12).unwrap().c,
            SnakeChar::Head(Hop::new(Port(1), Port(1)))
        );
        assert_eq!(p.due(13).unwrap().c, body(2, 2));
        assert_eq!(p.due(14).unwrap().c, SnakeChar::Tail);
        assert!(!p.has_pending());
    }

    #[test]
    fn head_then_tail_is_endpoint() {
        let mut p = DyingPassage::new(SnakeKind::Bd);
        p.begin(Port(3), Port(1));
        assert!(p.feed(Port(3), SnakeChar::Tail, 20));
        assert!(p.is_endpoint());
        assert!(p.is_done());
        let e = p.due(22).unwrap();
        assert_eq!(e.c, SnakeChar::Tail);
        assert_eq!(e.port, Port(1));
    }

    #[test]
    fn speed_one_dwell_on_every_char() {
        let mut p = DyingPassage::new(SnakeKind::Id);
        p.begin(Port(0), Port(0));
        p.feed(Port(0), body(0, 0), 7);
        assert_eq!(p.due(8), None);
        assert!(p.due(9).is_some());
    }

    #[test]
    #[should_panic(expected = "off-path")]
    fn wrong_port_panics() {
        let mut p = DyingPassage::new(SnakeKind::Id);
        p.begin(Port(0), Port(0));
        p.feed(Port(1), body(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_begin_panics() {
        let mut p = DyingPassage::new(SnakeKind::Id);
        p.begin(Port(0), Port(0));
        p.begin(Port(1), Port(1));
    }

    #[test]
    fn reset_restores_pristine() {
        let mut p = DyingPassage::new(SnakeKind::Od);
        p.begin(Port(0), Port(1));
        p.feed(Port(0), SnakeChar::Tail, 5);
        assert!(!p.is_pristine());
        p.reset();
        assert!(p.is_pristine());
        // reusable afterwards
        p.begin(Port(2), Port(2));
        assert!(p.is_active());
    }

    #[test]
    #[should_panic(expected = "dying kinds")]
    fn growing_kind_rejected() {
        let _ = DyingPassage::new(SnakeKind::Ig);
    }
}
