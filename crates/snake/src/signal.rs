//! The wire alphabet.
//!
//! Each wire carries one constant-size character per tick. The protocol
//! multiplexes several *construct channels* onto a wire — the paper's
//! convention that "snakes of different types do not interact. A processor
//! can handle different snake types simultaneously … because snake types
//! are distinguished by their alphabets" (§2.3.1). Formally the wire
//! alphabet is the product of finitely many constant alphabets, which is
//! still a constant alphabet; [`Signal`] is that product type. The blank
//! character *b* of the quiescent state is `Signal::default()`.

use crate::chars::{SnakeChar, SnakeKind};
use gtd_netsim::Port;

/// Constant-size message a BCA delivers backwards along an edge.
///
/// In the GTD protocol the only backwards cargo is the DFS token itself;
/// the enum leaves room for other protocols built on the same BCA.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BcaMsg {
    /// "Here is the DFS token back" (§3: backtrack or bounce).
    DfsReturn,
}

/// A token travelling around a marked loop (speed-1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopToken {
    /// RCA payload: the DFS moved forward through out-port `out_port` of
    /// the previous holder into in-port `in_port` of the sender (§3).
    /// δ² variants, exactly as the paper counts them.
    Forward { out_port: Port, in_port: Port },
    /// RCA payload: the DFS token moved backwards (§3).
    Back,
    /// BCA payload delivered to the loop's endpoint processor.
    Bca(BcaMsg),
}

/// The DFS token moving *forward* along a wire (§3). It "remembers …
/// through which out-port it has been most recently passed"; the receiving
/// processor supplies the in-port itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DfsToken {
    /// The out-port the sender pushed the token through.
    pub sender_out_port: Port,
}

/// Everything that can cross one wire in one tick: at most one character
/// per snake kind, plus the token channels.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Signal {
    /// One optional character per snake kind, indexed by [`SnakeKind::idx`].
    pub snakes: [Option<SnakeChar>; 6],
    /// Speed-3 breadth-first KILL token (RCA step 4).
    pub kill: bool,
    /// Speed-3 UNMARK loop token (RCA step 5).
    pub unmark: bool,
    /// Speed-3 RESET flood: clears DFS bookkeeping so the root can re-map
    /// a (possibly changed) network — our dynamic-remapping extension.
    /// Carries the new round's parity bit so late-arriving flood copies
    /// cannot re-clear a processor the new DFS already visited.
    pub reset: Option<bool>,
    /// Speed-1 loop token (FORWARD / BACK / BCA payload).
    pub loop_tok: Option<LoopToken>,
    /// The DFS token moving forward through this wire.
    pub dfs: Option<DfsToken>,
}

impl Signal {
    /// The blank character *b*.
    #[inline]
    pub fn blank() -> Self {
        Signal::default()
    }

    /// Is this the blank character?
    #[inline]
    pub fn is_blank(&self) -> bool {
        *self == Signal::default()
    }

    /// The snake character of `kind` on this wire, if any.
    #[inline]
    pub fn snake(&self, kind: SnakeKind) -> Option<SnakeChar> {
        self.snakes[kind.idx()]
    }

    /// Place a snake character of `kind` on this wire. Panics if the slot
    /// is already occupied — the protocol guarantees one character per kind
    /// per wire per tick, and a collision means a relay bug.
    #[inline]
    pub fn put_snake(&mut self, kind: SnakeKind, c: SnakeChar) {
        let slot = &mut self.snakes[kind.idx()];
        assert!(
            slot.is_none(),
            "snake channel collision: two {kind} characters on one wire in one tick"
        );
        *slot = Some(c);
    }

    /// Place a loop token; panics on collision (at most one loop construct
    /// exists per RCA/BCA phase).
    #[inline]
    pub fn put_loop(&mut self, t: LoopToken) {
        assert!(self.loop_tok.is_none(), "loop-token channel collision");
        self.loop_tok = Some(t);
    }

    /// Place the DFS token; panics on collision (there is exactly one DFS
    /// token in the network).
    #[inline]
    pub fn put_dfs(&mut self, t: DfsToken) {
        assert!(self.dfs.is_none(), "dfs channel collision");
        self.dfs = Some(t);
    }

    /// Number of non-empty construct channels (diagnostics / E5 census).
    pub fn occupancy(&self) -> usize {
        self.snakes.iter().flatten().count()
            + usize::from(self.kill)
            + usize::from(self.unmark)
            + usize::from(self.reset.is_some())
            + usize::from(self.loop_tok.is_some())
            + usize::from(self.dfs.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::Hop;

    #[test]
    fn blank_is_default_and_empty() {
        let b = Signal::blank();
        assert!(b.is_blank());
        assert_eq!(b.occupancy(), 0);
        for k in SnakeKind::ALL {
            assert_eq!(b.snake(k), None);
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut s = Signal::blank();
        s.put_snake(SnakeKind::Ig, SnakeChar::Tail);
        s.put_snake(SnakeKind::Og, SnakeChar::Head(Hop::star(Port(0))));
        s.kill = true;
        s.put_loop(LoopToken::Back);
        assert!(!s.is_blank());
        assert_eq!(s.occupancy(), 4);
        assert_eq!(s.snake(SnakeKind::Ig), Some(SnakeChar::Tail));
        assert_eq!(
            s.snake(SnakeKind::Og),
            Some(SnakeChar::Head(Hop::star(Port(0))))
        );
        assert_eq!(s.snake(SnakeKind::Id), None);
    }

    #[test]
    #[should_panic(expected = "collision")]
    fn same_kind_same_wire_same_tick_panics() {
        let mut s = Signal::blank();
        s.put_snake(SnakeKind::Ig, SnakeChar::Tail);
        s.put_snake(SnakeKind::Ig, SnakeChar::Tail);
    }

    #[test]
    #[should_panic(expected = "dfs channel")]
    fn dfs_collision_panics() {
        let mut s = Signal::blank();
        s.put_dfs(DfsToken {
            sender_out_port: Port(0),
        });
        s.put_dfs(DfsToken {
            sender_out_port: Port(1),
        });
    }

    #[test]
    fn signal_stays_compact() {
        // The wire buffer is the hottest allocation in the simulator: two
        // copies of N·δ signals. Keep the product alphabet word-efficient.
        assert!(
            std::mem::size_of::<Signal>() <= 48,
            "Signal grew to {} bytes",
            std::mem::size_of::<Signal>()
        );
    }

    #[test]
    fn loop_token_variants_distinct() {
        let variants = [
            LoopToken::Forward {
                out_port: Port(3),
                in_port: Port(1),
            },
            LoopToken::Forward {
                out_port: Port(1),
                in_port: Port(3),
            },
            LoopToken::Back,
            LoopToken::Bca(BcaMsg::DfsReturn),
        ];
        for (i, a) in variants.iter().enumerate() {
            for (j, b) in variants.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }
}
