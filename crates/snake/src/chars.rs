//! Snake character alphabets (paper §2.3).
//!
//! "A snake is a string … made up of an alphabet of 2(δ² + δ) + 1
//! characters, namely δ² + δ head characters, δ² + δ body characters, and a
//! unique tail character." Head and body characters carry a hop
//! `(out-port, in-port)`; a freshly generated character carries `(i, ∗)` —
//! the receiver fills the ∗ with the in-port it arrived through. Each snake
//! *kind* gets its own copy of the alphabet so processors can handle
//! several snakes simultaneously without confusion (§2.3.1).

use gtd_netsim::Port;

/// The six snake kinds used across the RCA (§4.2) and our BCA
/// reconstruction (DESIGN.md §5).
///
/// "Out" snakes are generated at the root and move away from it; "in"
/// snakes are generated elsewhere and trigger an action when they reach the
/// root. "Backwards" (Bg/Bd) snakes belong to the BCA, where the initiator
/// is also the terminator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SnakeKind {
    /// In-growing: searches for the root (RCA step 1).
    Ig,
    /// Out-growing: broadcast from the root back towards A (RCA step 2).
    Og,
    /// In-dying: marks the path A → root (RCA step 3).
    Id,
    /// Out-dying: marks the path root → A (RCA step 3).
    Od,
    /// Backwards-growing: BCA's loop search (DESIGN.md §5).
    Bg,
    /// Backwards-dying: BCA's loop marker.
    Bd,
}

impl SnakeKind {
    /// All kinds, in slot order (indexes [`crate::Signal`]'s snake array).
    pub const ALL: [SnakeKind; 6] = [
        SnakeKind::Ig,
        SnakeKind::Og,
        SnakeKind::Id,
        SnakeKind::Od,
        SnakeKind::Bg,
        SnakeKind::Bd,
    ];

    /// Slot index of this kind in per-node / per-signal tables.
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// The growing kinds (these flood and are subject to KILL tokens).
    pub const GROWING: [SnakeKind; 3] = [SnakeKind::Ig, SnakeKind::Og, SnakeKind::Bg];

    /// Is this a growing snake kind?
    #[inline]
    pub fn is_growing(self) -> bool {
        matches!(self, SnakeKind::Ig | SnakeKind::Og | SnakeKind::Bg)
    }

    /// Is this a dying snake kind?
    #[inline]
    pub fn is_dying(self) -> bool {
        !self.is_growing()
    }
}

impl std::fmt::Display for SnakeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SnakeKind::Ig => "IG",
            SnakeKind::Og => "OG",
            SnakeKind::Id => "ID",
            SnakeKind::Od => "OD",
            SnakeKind::Bg => "BG",
            SnakeKind::Bd => "BD",
        };
        f.write_str(s)
    }
}

/// One encoded hop: the sender's out-port and the receiver's in-port.
///
/// `in_port == None` is the paper's `∗`: the character was just generated
/// and has not yet crossed its first wire. The first receiver replaces the
/// ∗ with the in-port of arrival ([`Hop::filled`]); after that the hop is
/// immutable no matter how far the character is relayed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Hop {
    /// Out-port of the processor that generated the character.
    pub out_port: Port,
    /// In-port of the processor on the far side of that wire (`None` = ∗).
    pub in_port: Option<Port>,
}

impl Hop {
    /// A freshly generated `(i, ∗)` hop.
    #[inline]
    pub fn star(out_port: Port) -> Self {
        Hop {
            out_port,
            in_port: None,
        }
    }

    /// A complete `(i, j)` hop.
    #[inline]
    pub fn new(out_port: Port, in_port: Port) -> Self {
        Hop {
            out_port,
            in_port: Some(in_port),
        }
    }

    /// Fill the ∗ with the in-port of first arrival; complete hops are
    /// returned unchanged (relays never rewrite them).
    #[inline]
    pub fn filled(self, arrival: Port) -> Self {
        Hop {
            out_port: self.out_port,
            in_port: self.in_port.or(Some(arrival)),
        }
    }
}

/// One snake character (kind is carried by the [`crate::Signal`] slot, so
/// the character itself only stores role and hop).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum SnakeChar {
    /// A head character `XH(i, j)`.
    Head(Hop),
    /// A body character `X(i, j)`.
    Body(Hop),
    /// The unique tail character `XT`. Also the `Default` filler for dead
    /// dwell-slab slots (never read; any variant would do).
    #[default]
    Tail,
}

impl SnakeChar {
    /// The hop carried by a head or body character.
    #[inline]
    pub fn hop(self) -> Option<Hop> {
        match self {
            SnakeChar::Head(h) | SnakeChar::Body(h) => Some(h),
            SnakeChar::Tail => None,
        }
    }

    /// Fill a `∗` second parameter with the arrival in-port (no-op on tails
    /// and complete hops) — the reception rule of §2.3.2.
    #[inline]
    pub fn filled(self, arrival: Port) -> Self {
        match self {
            SnakeChar::Head(h) => SnakeChar::Head(h.filled(arrival)),
            SnakeChar::Body(h) => SnakeChar::Body(h.filled(arrival)),
            SnakeChar::Tail => SnakeChar::Tail,
        }
    }

    /// Re-role a character as a head (dying-snake passage promotes the first
    /// body character after the consumed head to the new head, §2.3.3).
    #[inline]
    pub fn as_head(self) -> Self {
        match self {
            SnakeChar::Body(h) | SnakeChar::Head(h) => SnakeChar::Head(h),
            SnakeChar::Tail => SnakeChar::Tail,
        }
    }

    /// Re-role a character as a body.
    #[inline]
    pub fn as_body(self) -> Self {
        match self {
            SnakeChar::Body(h) | SnakeChar::Head(h) => SnakeChar::Body(h),
            SnakeChar::Tail => SnakeChar::Tail,
        }
    }

    #[inline]
    pub fn is_head(self) -> bool {
        matches!(self, SnakeChar::Head(_))
    }

    #[inline]
    pub fn is_tail(self) -> bool {
        matches!(self, SnakeChar::Tail)
    }
}

/// Size of one snake kind's character alphabet for a network constant δ —
/// the paper's 2(δ² + δ) + 1: heads and bodies each come in δ·δ complete
/// `(i, j)` variants plus δ star `(i, ∗)` variants, plus the unique tail.
pub fn alphabet_size(delta: u8) -> usize {
    let d = delta as usize;
    2 * (d * d + d) + 1
}

/// Exhaustively enumerate a kind's alphabet for a given δ (used by tests to
/// confirm the constant-size-character claim).
pub fn enumerate_alphabet(delta: u8) -> Vec<SnakeChar> {
    let mut out = Vec::with_capacity(alphabet_size(delta));
    for role_head in [true, false] {
        for i in 0..delta {
            let mk = |hop| {
                if role_head {
                    SnakeChar::Head(hop)
                } else {
                    SnakeChar::Body(hop)
                }
            };
            out.push(mk(Hop::star(Port(i))));
            for j in 0..delta {
                out.push(mk(Hop::new(Port(i), Port(j))));
            }
        }
    }
    out.push(SnakeChar::Tail);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_size_matches_paper_formula() {
        // δ² + δ heads, δ² + δ bodies, one tail.
        for delta in 2..=8u8 {
            let chars = enumerate_alphabet(delta);
            assert_eq!(chars.len(), alphabet_size(delta));
            let d = delta as usize;
            assert_eq!(alphabet_size(delta), 2 * (d * d + d) + 1);
            // no duplicates
            let mut sorted = chars.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), chars.len());
        }
    }

    #[test]
    fn star_filled_on_first_arrival_only() {
        let c = SnakeChar::Body(Hop::star(Port(3)));
        let once = c.filled(Port(1));
        assert_eq!(once, SnakeChar::Body(Hop::new(Port(3), Port(1))));
        // relaying further never rewrites the in-port
        let twice = once.filled(Port(2));
        assert_eq!(twice, once);
    }

    #[test]
    fn tail_ignores_fill() {
        assert_eq!(SnakeChar::Tail.filled(Port(0)), SnakeChar::Tail);
        assert_eq!(SnakeChar::Tail.hop(), None);
    }

    #[test]
    fn head_body_promotion() {
        let b = SnakeChar::Body(Hop::new(Port(1), Port(2)));
        assert_eq!(b.as_head(), SnakeChar::Head(Hop::new(Port(1), Port(2))));
        assert_eq!(b.as_head().as_body(), b);
        assert!(b.as_head().is_head());
        assert!(!b.is_head());
        assert!(SnakeChar::Tail.is_tail());
    }

    #[test]
    fn kind_partition() {
        for k in SnakeKind::ALL {
            assert_ne!(k.is_growing(), k.is_dying());
        }
        assert_eq!(SnakeKind::ALL.len(), 6);
        // slot indexes are unique and dense
        let mut idxs: Vec<usize> = SnakeKind::ALL.iter().map(|k| k.idx()).collect();
        idxs.sort_unstable();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4, 5]);
    }
}
