//! The protocol automaton — one identical finite-state processor (§1.1).
//!
//! [`ProtocolNode`] composes the snake/token components of `gtd-snake` with
//! four small drivers:
//!
//! * **root responder** ([`RootRca`]) — the root's side of every RCA:
//!   convert the first incoming IG snake to the OG snake, later convert the
//!   ID snake to the OD snake, transcribe everything (§4.2.1 steps 2–3);
//! * **RCA driver** ([`RcaState`]) — the initiator A's side: release IG
//!   snakes, eat the first returning OG head, launch the ID snake, then
//!   KILL + loop token + UNMARK (§4.2.1 steps 1, 3–5);
//! * **BCA driver** ([`BcaState`]) — our reconstruction of Ostrovsky &
//!   Wilkerson's backwards communication (DESIGN.md §5): BG flood, BD loop
//!   marking with endpoint self-detection, KILL + payload token, UNMARK
//!   absorbed at the target;
//! * **DFS driver** ([`DfsState`]) — the Global Topology Determination
//!   algorithm of §3: forward moves carry the DFS token directly, backward
//!   moves ride the BCA, and every receipt triggers an RCA with FORWARD or
//!   BACK (the root transcribes its own moves locally).
//!
//! Everything a processor does here is a function of its constant-size
//! state and the characters on its ports — node identity is never consulted
//! (the paper's processors are anonymous; only the `is_root` power-on flag
//! differs).

use crate::events::{RcaReport, TranscriptEvent};
use gtd_netsim::{Automaton, NodeMeta, Port, PortMask, StepCtx};
use gtd_snake::{
    BcaMsg, DfsToken, DyingPassage, GrowEmit, GrowRelay, Hop, LoopMarks, LoopToken, MarkPair,
    Signal, SnakeChar, SnakeKind, SPEED1_DWELL,
};

type Ctx<'a> = StepCtx<'a, Signal, TranscriptEvent>;

/// Downtime (in ticks) a power-cycled processor spends dark before it
/// rejoins with amnesia — the `node-restart` fault's fixed repair time.
/// Long enough that in-flight characters addressed to the old
/// incarnation die against the dark window rather than racing the fresh
/// power-on.
pub const RESTART_DOWNTIME: u64 = 24;

/// What a processor does when first powered on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StartBehavior {
    /// The root of a full Global Topology Determination run: start the DFS.
    GtdRoot,
    /// Probe: run one standalone RCA (report = BACK) and emit
    /// [`TranscriptEvent::RcaComplete`] — used by experiment E3.
    SingleRca,
    /// Probe: run one standalone BCA through in-port `via` and emit
    /// [`TranscriptEvent::BcaComplete`] — used by experiment E4.
    SingleBca {
        /// The in-port whose wire the message crosses backwards.
        via: Port,
    },
    /// Wait quietly for the network (every non-root processor; also the
    /// root when probing RCAs/BCAs elsewhere).
    Passive,
}

/// What the DFS does once the current RCA completes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AfterRca {
    /// Fresh visit: begin exploring our out-ports.
    Descend,
    /// Re-visit: return the token backwards through in-port `via`.
    Bounce { via: Port },
    /// A BCA brought our token back: mark the port finished and move on.
    Advance,
    /// Standalone probe: report completion.
    ProbeDone,
}

/// Initiator-side RCA phases (§4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RcaState {
    Idle,
    /// Step 1 done (IG snakes released); waiting for the first OG head.
    AwaitOg {
        report: RcaReport,
        after: AfterRca,
    },
    /// Converting OG→ID; waiting for the OD tail (step 3).
    AwaitOdTail {
        report: RcaReport,
        after: AfterRca,
    },
    /// Step 4: KILL + loop token released; waiting for the token to circle.
    AwaitLoopReturn {
        after: AfterRca,
    },
    /// Step 5: UNMARK released; waiting for it to circle.
    AwaitUnmarkReturn {
        after: AfterRca,
    },
}

/// Root-side RCA phases (§4.2.1 steps 2–3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RootRca {
    /// Open to IG snakes.
    Open,
    /// Adopted an IG stream; converting it to the OG snake.
    ConvertingIg,
    /// IG tail passed; closed to IG; waiting for the ID snake.
    AwaitId,
    /// Converting ID→OD.
    ConvertingId,
    /// Conversion done; the loop token and UNMARK will pass through; the
    /// UNMARK reopens us.
    LoopPhase,
}

/// Initiator-side BCA phases (DESIGN.md §5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BcaState {
    Idle,
    /// BG snakes released; waiting for the first BG head to return through
    /// the designated in-port.
    AwaitBgHead {
        via: Port,
    },
    /// Converting the returning BG stream into the BD loop-marking snake.
    Converting {
        via: Port,
    },
    /// Conversion done; waiting for the physical BD tail to circle the loop.
    AwaitBdTail {
        via: Port,
    },
    /// KILL + payload token released; waiting for the token to circle.
    AwaitLoopReturn,
}

/// DFS bookkeeping (§3). This state intentionally survives the protocol:
/// the paper's DFS marks (parent in-port, finished out-ports) are never
/// cleaned up — only snake/token state is (Lemma 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct DfsState {
    visited: bool,
    parent: Option<Port>,
    /// Out-ports below this index (into the connected-out-port list) are
    /// finished; the one at it is being explored.
    cursor: usize,
    /// Waiting for the DFS token to come back through a BCA.
    awaiting: bool,
    /// Root only: the terminal state has been reached.
    done: bool,
}

/// The identical synchronous finite-state processor of the paper.
#[derive(Clone, Debug)]
pub struct ProtocolNode {
    // -- static configuration (power-on facts) --
    is_root: bool,
    delta: u8,
    out_ports: PortMask,
    start: StartBehavior,
    started: bool,

    // -- snake & token components --
    ig: GrowRelay,
    og: GrowRelay,
    bg: GrowRelay,
    /// ID lane: passage on the A→root half; at the RCA initiator, the
    /// OG→ID conversion.
    dying_id: DyingPassage,
    /// OD lane: passage on the root→A half; at the root, the ID→OD
    /// conversion.
    dying_od: DyingPassage,
    /// BD lane: BCA loop marking; at B, the BG→BD conversion.
    dying_bd: DyingPassage,
    marks: LoopMarks,
    /// A loop token dwelling here (speed-1), with its emission deadline and
    /// successor out-port.
    pending_loop: Option<(u64, LoopToken, Port)>,
    /// BCA payload captured by the loop's endpoint, acted on at UNMARK.
    pending_bca: Option<BcaMsg>,

    // -- drivers --
    rca: RcaState,
    root_rca: RootRca,
    bca: BcaState,
    bca_probe: bool,
    dfs: DfsState,
    /// Root only: the master computer asked for a re-map; on the next step
    /// the root floods RESET and restarts the DFS (re-mapping extension).
    pending_restart: bool,
    /// Re-map round parity: a RESET is accepted only when its stamp
    /// differs, so straggler flood copies are idempotent within a round.
    reset_parity: bool,
    /// `node-restart` fault: while `tick < offline_until` the processor
    /// is dark — it consumes (and loses) every arriving character and
    /// emits nothing. 0 on processors that never restarted.
    offline_until: u64,
    /// Characters lost to power cycles: relay drop counts folded in at
    /// [`ProtocolNode::restart`] (amnesia would otherwise zero them) plus
    /// everything consumed while dark. Keeps
    /// [`ProtocolNode::stat_dropped`] monotonic across restarts.
    dropped_carry: u64,

    // -- simulator-side counters (diagnostics/experiments only; a real
    // finite-state processor would not carry these) --
    /// KILL tokens this processor accepted (erasures performed).
    pub stat_kills_accepted: u64,
    /// RCAs initiated here.
    pub stat_rcas_started: u64,
    /// BCAs initiated here.
    pub stat_bcas_started: u64,
    /// High-water mark of characters dwelling here at once.
    pub stat_max_chars: usize,
}

impl ProtocolNode {
    /// Snake characters this processor lost: refused at capacity by the
    /// bounded growing-snake queues, plus everything a `node-restart`
    /// power cycle destroyed (lifetime total; 0 on clean runs).
    pub fn stat_dropped(&self) -> u64 {
        self.ig.dropped() + self.og.dropped() + self.bg.dropped() + self.dropped_carry
    }
}

impl ProtocolNode {
    /// Build the processor for one network position. `start` is
    /// [`StartBehavior::GtdRoot`] on the root for a full GTD run.
    pub fn new(meta: &NodeMeta, start: StartBehavior) -> Self {
        let out_ports = meta.out_connected;
        assert!(
            !out_ports.is_empty(),
            "the model requires a connected out-port"
        );
        if matches!(start, StartBehavior::GtdRoot) {
            assert!(meta.is_root, "GtdRoot behaviour belongs on the root");
        }
        ProtocolNode {
            is_root: meta.is_root,
            delta: meta.delta,
            out_ports,
            start,
            started: false,
            ig: GrowRelay::new(SnakeKind::Ig),
            og: GrowRelay::new(SnakeKind::Og),
            bg: GrowRelay::new(SnakeKind::Bg),
            dying_id: DyingPassage::new(SnakeKind::Id),
            dying_od: DyingPassage::new(SnakeKind::Od),
            dying_bd: DyingPassage::new(SnakeKind::Bd),
            marks: LoopMarks::new(),
            pending_loop: None,
            pending_bca: None,
            rca: RcaState::Idle,
            root_rca: RootRca::Open,
            bca: BcaState::Idle,
            bca_probe: false,
            pending_restart: false,
            reset_parity: false,
            offline_until: 0,
            dropped_carry: 0,
            stat_kills_accepted: 0,
            stat_rcas_started: 0,
            stat_bcas_started: 0,
            stat_max_chars: 0,
            dfs: DfsState {
                visited: meta.is_root,
                parent: None,
                cursor: 0,
                awaiting: false,
                done: false,
            },
        }
    }

    // ------------------------------------------------------------------
    // Observability (tests, invariants, experiment censuses)
    // ------------------------------------------------------------------

    /// Lemma 4.2's promise: between protocol phases, everything the RCA/BCA
    /// created is gone. DFS bookkeeping is excluded — the paper never
    /// erases it.
    pub fn snake_state_pristine(&self) -> bool {
        self.ig.is_pristine()
            && self.og.is_pristine()
            && self.bg.is_pristine()
            && self.dying_id.is_pristine()
            && self.dying_od.is_pristine()
            && self.dying_bd.is_pristine()
            && self.marks.is_pristine()
            && self.pending_loop.is_none()
            && self.pending_bca.is_none()
            && self.rca == RcaState::Idle
            && self.bca == BcaState::Idle
            && (!self.is_root || self.root_rca == RootRca::Open)
    }

    /// Count of growing-snake characters dwelling here plus set markings
    /// (the things KILL tokens must eradicate) — E5's residue census.
    pub fn growing_residue(&self) -> usize {
        let marks = [&self.ig, &self.og, &self.bg]
            .iter()
            .map(|r| usize::from(r.is_marked()) + r.pending_len())
            .sum::<usize>();
        marks
    }

    /// Characters of any kind dwelling in this processor (type-size /
    /// finite-state census).
    pub fn chars_in_flight(&self) -> usize {
        self.ig.pending_len()
            + self.og.pending_len()
            + self.bg.pending_len()
            + self.dying_id.pending_len()
            + self.dying_od.pending_len()
            + self.dying_bd.pending_len()
            + usize::from(self.pending_loop.is_some())
    }

    /// Is any protocol machinery (RCA/BCA/root conversion/pending
    /// emissions) active on this processor? Used with
    /// [`ProtocolNode::snake_state_pristine`] to catch cleanup leaks: when
    /// *no* processor is busy, *every* processor must be pristine.
    pub fn protocol_busy(&self) -> bool {
        self.rca != RcaState::Idle
            || self.bca != BcaState::Idle
            || self.root_rca != RootRca::Open
            || self.has_pending()
    }

    /// Debug description of any non-pristine snake state (empty if clean).
    pub fn residue_description(&self) -> String {
        let mut out = String::new();
        for (name, ok) in [
            ("ig", self.ig.is_pristine()),
            ("og", self.og.is_pristine()),
            ("bg", self.bg.is_pristine()),
            ("dying_id", self.dying_id.is_pristine()),
            ("dying_od", self.dying_od.is_pristine()),
            ("dying_bd", self.dying_bd.is_pristine()),
            ("marks", self.marks.is_pristine()),
            ("pending_loop", self.pending_loop.is_none()),
            ("pending_bca", self.pending_bca.is_none()),
            ("rca", self.rca == RcaState::Idle),
            ("bca", self.bca == BcaState::Idle),
            ("root_rca", !self.is_root || self.root_rca == RootRca::Open),
        ] {
            if !ok {
                out.push_str(name);
                out.push(' ');
            }
        }
        out
    }

    /// Has the root reached the paper's terminal state?
    pub fn terminated(&self) -> bool {
        self.dfs.done
    }

    /// Re-mapping extension: the master computer (the "outside source" of
    /// §1.1) nudges the terminated root to map the network again. On its
    /// next step the root floods a speed-3 RESET token that clears every
    /// processor's DFS bookkeeping, then restarts the DFS. The RESET flood
    /// travels at least three times faster than any protocol progress, so
    /// it always runs ahead of the new DFS token.
    pub fn master_restart(&mut self) {
        assert!(
            self.is_root,
            "only the root is attached to the master computer"
        );
        assert!(
            self.dfs.done,
            "restart is only meaningful after termination"
        );
        assert!(
            self.snake_state_pristine(),
            "network must be clean before a re-map"
        );
        self.pending_restart = true;
    }

    /// DFS visited flag (every processor must end visited — the DFS token
    /// crosses every edge).
    pub fn dfs_visited(&self) -> bool {
        self.dfs.visited
    }

    /// Is this processor dark from a `node-restart` power cycle at `now`?
    pub fn is_offline(&self, now: u64) -> bool {
        now < self.offline_until
    }

    /// `node-restart` fault: power-cycle this processor at tick `now`.
    /// The processor goes dark for [`RESTART_DOWNTIME`] ticks, then
    /// rejoins with total amnesia — factory-fresh protocol state, reset
    /// parity cleared (so the next RESET flood's stamp always reads as a
    /// new round), power-on behaviour re-armed. Only the power-on facts
    /// (`is_root`, δ, port awareness, start behaviour) and the
    /// simulator-side diagnostic counters survive; relay drop counts are
    /// folded into the carry first so `stat_dropped` never moves
    /// backwards. The root hosts the master computer and cannot restart.
    pub fn restart(&mut self, now: u64) {
        assert!(!self.is_root, "the master computer's host never restarts");
        self.dropped_carry += self.ig.dropped() + self.og.dropped() + self.bg.dropped();
        self.ig = GrowRelay::new(SnakeKind::Ig);
        self.og = GrowRelay::new(SnakeKind::Og);
        self.bg = GrowRelay::new(SnakeKind::Bg);
        self.dying_id = DyingPassage::new(SnakeKind::Id);
        self.dying_od = DyingPassage::new(SnakeKind::Od);
        self.dying_bd = DyingPassage::new(SnakeKind::Bd);
        self.marks = LoopMarks::new();
        self.pending_loop = None;
        self.pending_bca = None;
        self.rca = RcaState::Idle;
        self.root_rca = RootRca::Open;
        self.bca = BcaState::Idle;
        self.bca_probe = false;
        self.pending_restart = false;
        self.reset_parity = false;
        self.started = false;
        self.dfs = DfsState {
            visited: false,
            parent: None,
            cursor: 0,
            awaiting: false,
            done: false,
        };
        self.offline_until = now + RESTART_DOWNTIME;
    }

    // ------------------------------------------------------------------
    // Emission helpers
    // ------------------------------------------------------------------

    fn broadcast_snake(&self, outputs: &mut [Signal], kind: SnakeKind, c: SnakeChar) {
        for o in self.out_ports.iter() {
            outputs[o.idx()].put_snake(kind, c);
        }
    }

    fn broadcast_kill(&self, outputs: &mut [Signal]) {
        for o in self.out_ports.iter() {
            outputs[o.idx()].kill = true;
        }
    }

    // ------------------------------------------------------------------
    // Protocol drivers
    // ------------------------------------------------------------------

    fn start_rca(&mut self, report: RcaReport, after: AfterRca, now: u64) {
        // In an undisturbed run RCAs are strictly serialized and start on a
        // pristine relay; after a live topology mutation a straggler DFS
        // token can ask for an RCA while one is in flight — drop the
        // request (the session's remap driver recovers the stalled run).
        if self.rca != RcaState::Idle || self.ig.is_marked() {
            return;
        }
        self.ig.start(now);
        self.stat_rcas_started += 1;
        self.rca = RcaState::AwaitOg { report, after };
    }

    fn start_bca(&mut self, via: Port, now: u64) {
        // Serialized like RCAs; see start_rca for the mutation caveat.
        if self.bca != BcaState::Idle || self.bg.is_marked() {
            return;
        }
        self.bg.start(now);
        self.stat_bcas_started += 1;
        self.bca = BcaState::AwaitBgHead { via };
    }

    /// Release the KILL flood and erase our own growing state. Done as
    /// soon as the initiator has consumed its whole growing stream — the
    /// growing snakes carry no further information from that moment, and
    /// releasing here (rather than at the paper's step 4) widens Lemma
    /// 4.2's catch-up margin from O(1) ticks to Θ(loop) ticks, closing a
    /// real race where a stale KILL of a short-loop BCA could erase the
    /// next RCA's fresh flood (DESIGN.md §5).
    fn release_kill(&mut self, ctx: &mut Ctx) {
        self.ig.erase();
        self.og.erase();
        self.bg.erase();
        self.broadcast_kill(ctx.outputs);
    }

    /// RCA step 4: on the OD tail, release the speed-1 FORWARD/BACK loop
    /// token (the KILL flood was already released at OG-tail consumption).
    fn rca_step4(&mut self, report: RcaReport, after: AfterRca, ctx: &mut Ctx) {
        let tok = match report {
            RcaReport::Forward { out_port, in_port } => LoopToken::Forward { out_port, in_port },
            RcaReport::Back => LoopToken::Back,
        };
        // The loop is always marked before step 4 in an undisturbed run; a
        // mutation can erase the marks under us — stall instead of panic.
        let Some(succ) = self.marks.succ(MarkPair::First) else {
            return;
        };
        ctx.outputs[succ.idx()].put_loop(tok);
        self.rca = RcaState::AwaitLoopReturn { after };
    }

    fn on_rca_done(&mut self, after: AfterRca, now: u64, ctx: &mut Ctx) {
        match after {
            AfterRca::Descend => {
                self.dfs.cursor = 0;
                self.advance_dfs(now, ctx);
            }
            AfterRca::Bounce { via } => self.start_bca(via, now),
            AfterRca::Advance => {
                self.dfs.cursor += 1;
                self.advance_dfs(now, ctx);
            }
            AfterRca::ProbeDone => ctx.events.push(TranscriptEvent::RcaComplete),
        }
    }

    /// Send the DFS token out the current out-port, backtrack via BCA, or —
    /// at the root — terminate (§3).
    fn advance_dfs(&mut self, now: u64, ctx: &mut Ctx) {
        if let Some(o) = self.out_ports.nth(self.dfs.cursor) {
            self.dfs.awaiting = true;
            ctx.outputs[o.idx()].put_dfs(DfsToken { sender_out_port: o });
        } else if self.is_root {
            self.dfs.done = true;
            ctx.events.push(TranscriptEvent::Terminated);
        } else {
            // A finished non-root processor always has a parent in an
            // undisturbed run; a mutation-era RESET can clear it.
            let Some(parent) = self.dfs.parent else {
                return;
            };
            self.start_bca(parent, now);
        }
    }

    /// The BCA delivered its payload to us (we are the loop endpoint and
    /// have just absorbed the UNMARK — the network is clean again).
    fn on_bca_payload(&mut self, msg: BcaMsg, now: u64, ctx: &mut Ctx) {
        match msg {
            BcaMsg::DfsReturn => {
                if !self.dfs.awaiting {
                    // standalone BCA probe target
                    ctx.events.push(TranscriptEvent::BcaDelivered);
                    return;
                }
                self.dfs.awaiting = false;
                if self.is_root {
                    ctx.events.push(TranscriptEvent::LocalBack);
                    self.dfs.cursor += 1;
                    self.advance_dfs(now, ctx);
                } else {
                    self.start_rca(RcaReport::Back, AfterRca::Advance, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-channel input handlers
    // ------------------------------------------------------------------

    fn kill_accepted(&self, p: Port) -> bool {
        self.ig.parent() == Some(p) || self.og.parent() == Some(p) || self.bg.parent() == Some(p)
    }

    fn on_ig(&mut self, p: Port, c: SnakeChar, now: u64, ctx: &mut Ctx) {
        if self.is_root {
            match self.root_rca {
                RootRca::Open => {
                    if self.og.is_marked() {
                        // Leftover OG state from a mutation-disturbed RCA:
                        // the root cannot become the OG origin again yet.
                        return;
                    }
                    if let Some(c) = self.ig.accept(p, c) {
                        // First IG head of this RCA: adopt, transcribe, and
                        // begin converting to the OG snake (step 2). The OG
                        // relay becomes the OG tree's origin. A headless
                        // character here means the relay kept stale adoption
                        // state across a lossy schedule (a dropped KILL) —
                        // drop it rather than corrupt the transcript.
                        let Some(hop) = c.hop() else {
                            return;
                        };
                        ctx.events.push(TranscriptEvent::IgHop(hop));
                        self.og.mark_initiator();
                        self.og.relay(c, now);
                        self.root_rca = RootRca::ConvertingIg;
                    }
                }
                RootRca::ConvertingIg => {
                    if let Some(c) = self.ig.accept(p, c) {
                        match c {
                            SnakeChar::Tail => {
                                ctx.events.push(TranscriptEvent::IgTail);
                                // relay(Tail) appends the root's own hop then
                                // the tail — "the root holds onto the tail
                                // character while it sends OG(i, ∗) out of
                                // each of its out-ports" (step 2).
                                self.og.relay(SnakeChar::Tail, now);
                                self.root_rca = RootRca::AwaitId;
                            }
                            other => {
                                // Heads and bodies always carry a hop; guard
                                // anyway so a fault-mangled stream is dropped
                                // instead of panicking mid-conversion.
                                let Some(hop) = other.hop() else {
                                    return;
                                };
                                ctx.events.push(TranscriptEvent::IgHop(hop));
                                self.og.relay(other, now);
                            }
                        }
                    }
                }
                // Closed: "the root will accept no further IG-snakes during
                // this execution" — and stragglers after the KILL.
                _ => {}
            }
            return;
        }
        if self.rca != RcaState::Idle {
            // We are the IG source of the running RCA; echoes are ignored.
            return;
        }
        if let Some(c) = self.ig.accept(p, c) {
            self.ig.relay(c, now);
        }
    }

    fn on_og(&mut self, p: Port, c: SnakeChar, now: u64, ctx: &mut Ctx) {
        if self.is_root {
            // The root is the OG source; it never re-admits OG characters.
            return;
        }
        match self.rca {
            RcaState::AwaitOg { report, after } => {
                if self.dying_id.is_active()
                    || self.marks.pred(MarkPair::First).is_some()
                    || self.marks.succ(MarkPair::First).is_some()
                {
                    // Mutation-era residue occupies the #1 pair; adopting
                    // another stream would corrupt it.
                    return;
                }
                if let Some(c) = self.og.accept(p, c) {
                    // First surviving OG head: eat it as if it were an ID
                    // head (step 3) — its hop is our own first hop towards
                    // the root.
                    let Some(hop) = c.hop() else {
                        return; // headless straggler stream
                    };
                    self.marks.set_pred(MarkPair::First, p);
                    self.marks.set_succ(MarkPair::First, hop.out_port);
                    self.dying_id.begin(p, hop.out_port);
                    self.rca = RcaState::AwaitOdTail { report, after };
                }
            }
            RcaState::AwaitOdTail { .. }
                // The adopted stream arrives exclusively through the
                // predecessor in-port recorded at head consumption; gate on
                // that rather than the (KILL-erased) OG relay so post-KILL
                // straggler heads cannot re-adopt us. Once the tail is
                // consumed the conversion is over and everything is junk.
                if !self.dying_id.is_done() && self.dying_id.pred() == Some(p) => {
                    let c = c.filled(p);
                    // Convert the rest of the OG stream into the ID snake.
                    let is_tail = c.is_tail();
                    self.dying_id.feed(p, c, now);
                    if is_tail {
                        // The whole OG stream is consumed: the growing
                        // snakes are pure garbage now — kill them early.
                        self.release_kill(ctx);
                    }
                }
            RcaState::Idle => {
                if let Some(c) = self.og.accept(p, c) {
                    self.og.relay(c, now);
                }
            }
            // Step 4/5 phases: closed to OG (stragglers die here).
            _ => {}
        }
    }

    fn on_bg(&mut self, p: Port, c: SnakeChar, now: u64, ctx: &mut Ctx) {
        match self.bca {
            BcaState::AwaitBgHead { via } if p == via => {
                let c = c.filled(p);
                if let SnakeChar::Head(hop) = c {
                    if self.dying_bd.is_active()
                        || self.marks.pred(MarkPair::First).is_some()
                        || self.marks.succ(MarkPair::First).is_some()
                    {
                        return; // mutation-era residue on the #1 pair
                    }
                    // The first BG head returning through the designated
                    // in-port encodes the canonical loop B→…→A→B. Eat the
                    // head, mark our ports, start converting to BD.
                    self.marks.set_pred(MarkPair::First, via);
                    self.marks.set_succ(MarkPair::First, hop.out_port);
                    self.dying_bd.begin(via, hop.out_port);
                    self.bca = BcaState::Converting { via };
                }
            }
            BcaState::Converting { via }
                if p == via && !self.dying_bd.is_done() && self.dying_bd.pred() == Some(via) =>
            {
                let c = c.filled(p);
                let is_tail = c.is_tail();
                self.dying_bd.feed(via, c, now);
                if is_tail {
                    self.bca = BcaState::AwaitBdTail { via };
                    // BG stream fully consumed: kill the flood early (the
                    // BD marking rides its own alphabet and is untouched).
                    self.release_kill(ctx);
                }
            }
            BcaState::Idle => {
                if let Some(c) = self.bg.accept(p, c) {
                    self.bg.relay(c, now);
                }
            }
            // B ignores BG characters on other ports / later phases.
            _ => {}
        }
    }

    fn on_id(&mut self, p: Port, c: SnakeChar, now: u64, ctx: &mut Ctx) {
        if self.is_root {
            match self.root_rca {
                RootRca::AwaitId => {
                    let c = c.filled(p);
                    if let SnakeChar::Head(hop) = c {
                        if self.dying_od.is_active()
                            || self.marks.pred(MarkPair::First).is_some()
                            || self.marks.succ(MarkPair::Second).is_some()
                        {
                            return; // mutation-era residue
                        }
                        // Convert ID→OD: predecessor #1, successor #2
                        // (§2.3.3 — the root's exceptional port pairing).
                        ctx.events.push(TranscriptEvent::IdHop(hop));
                        self.marks.set_pred(MarkPair::First, p);
                        self.marks.set_succ(MarkPair::Second, hop.out_port);
                        self.dying_od.begin(p, hop.out_port);
                        self.root_rca = RootRca::ConvertingId;
                    }
                }
                RootRca::ConvertingId
                    if !self.dying_od.is_done() && self.dying_od.pred() == Some(p) =>
                {
                    let c = c.filled(p);
                    match c {
                        SnakeChar::Body(hop) => ctx.events.push(TranscriptEvent::IdHop(hop)),
                        SnakeChar::Tail => ctx.events.push(TranscriptEvent::IdTail),
                        SnakeChar::Head(_) => return, // cannot happen in a clean run
                    }
                    self.dying_od.feed(p, c, now);
                    if c.is_tail() {
                        self.root_rca = RootRca::LoopPhase;
                    }
                }
                _ => {}
            }
            return;
        }
        // Ordinary passage on the A→root half (pair #1).
        let c = c.filled(p);
        match c {
            SnakeChar::Head(hop)
                if !self.dying_id.is_active()
                    && self.marks.pred(MarkPair::First).is_none()
                    && self.marks.succ(MarkPair::First).is_none() =>
            {
                self.marks.set_pred(MarkPair::First, p);
                self.marks.set_succ(MarkPair::First, hop.out_port);
                self.dying_id.begin(p, hop.out_port);
            }
            _ if !self.dying_id.is_done() && self.dying_id.pred() == Some(p) => {
                self.dying_id.feed(p, c, now);
            }
            _ => {} // off-path character (only possible after a mutation)
        }
    }

    fn on_od(&mut self, p: Port, c: SnakeChar, now: u64, ctx: &mut Ctx) {
        if self.is_root {
            // The OD snake travels root→A and never revisits the root.
            return;
        }
        if let RcaState::AwaitOdTail { report, after } = self.rca {
            if self.marks.pred(MarkPair::First) == Some(p) {
                // "[Processor A] will only receive the tail character ODT"
                // (step 3) — the loop is fully marked; begin step 4. A
                // non-tail here is mutation-era junk and is dropped.
                if c.is_tail() {
                    self.rca_step4(report, after, ctx);
                }
                return;
            }
        }
        // Ordinary passage on the root→A half (pair #2).
        let c = c.filled(p);
        match c {
            SnakeChar::Head(hop)
                if !self.dying_od.is_active()
                    && self.marks.pred(MarkPair::Second).is_none()
                    && self.marks.succ(MarkPair::Second).is_none() =>
            {
                self.marks.set_pred(MarkPair::Second, p);
                self.marks.set_succ(MarkPair::Second, hop.out_port);
                self.dying_od.begin(p, hop.out_port);
            }
            _ if !self.dying_od.is_done() && self.dying_od.pred() == Some(p) => {
                self.dying_od.feed(p, c, now);
            }
            _ => {} // off-path character (only possible after a mutation)
        }
    }

    fn on_bd(&mut self, p: Port, c: SnakeChar, now: u64, ctx: &mut Ctx) {
        if let BcaState::AwaitBdTail { via } = self.bca {
            if p == via {
                // The physical BD tail has circled the loop: every
                // processor on it (including the endpoint) is marked.
                // Release the payload loop token (the KILL flood already
                // flew at BG-tail consumption). Anything other than the
                // tail — or erased marks — is mutation-era junk.
                if !c.is_tail() {
                    return;
                }
                let Some(succ) = self.marks.succ(MarkPair::First) else {
                    return;
                };
                ctx.outputs[succ.idx()].put_loop(LoopToken::Bca(BcaMsg::DfsReturn));
                self.bca = BcaState::AwaitLoopReturn;
                return;
            }
        }
        // Ordinary BD passage (pair #1; BCA loops are simple cycles).
        let c = c.filled(p);
        match c {
            SnakeChar::Head(hop)
                if !self.dying_bd.is_active()
                    && self.marks.pred(MarkPair::First).is_none()
                    && self.marks.succ(MarkPair::First).is_none() =>
            {
                self.marks.set_pred(MarkPair::First, p);
                self.marks.set_succ(MarkPair::First, hop.out_port);
                self.dying_bd.begin(p, hop.out_port);
            }
            _ if !self.dying_bd.is_done() && self.dying_bd.pred() == Some(p) => {
                self.dying_bd.feed(p, c, now);
            }
            _ => {} // off-path character (only possible after a mutation)
        }
    }

    fn on_loop(&mut self, p: Port, tok: LoopToken, now: u64, ctx: &mut Ctx) {
        // Absorption by the RCA initiator (step 4 → step 5).
        if let RcaState::AwaitLoopReturn { after } = self.rca {
            if self.marks.pred(MarkPair::First) == Some(p) {
                let Some(succ) = self.marks.succ(MarkPair::First) else {
                    return; // marks half-erased by a mutation
                };
                ctx.outputs[succ.idx()].unmark = true;
                self.rca = RcaState::AwaitUnmarkReturn { after };
                return;
            }
        }
        // Absorption by the BCA initiator: release the UNMARK (absorbed at
        // the target) and finish — B already knows delivery succeeded.
        if self.bca == BcaState::AwaitLoopReturn && self.marks.pred(MarkPair::First) == Some(p) {
            let Some(succ) = self.marks.succ(MarkPair::First) else {
                return; // marks half-erased by a mutation
            };
            ctx.outputs[succ.idx()].unmark = true;
            self.marks.clear();
            self.dying_bd.reset();
            self.bca = BcaState::Idle;
            if self.bca_probe {
                ctx.events.push(TranscriptEvent::BcaComplete);
            }
            return;
        }
        // Ordinary loop-token forwarding. In an undisturbed run a loop
        // token never arrives off-loop or while another token dwells here;
        // after a live mutation both can happen — drop the token (the
        // stalled run is recovered by the session's remap driver).
        let Some(route) = self.marks.route(p) else {
            return;
        };
        if self.pending_loop.is_some() {
            return;
        }
        if self.is_root {
            match tok {
                LoopToken::Forward { out_port, in_port } => {
                    ctx.events
                        .push(TranscriptEvent::LoopForward { out_port, in_port });
                }
                LoopToken::Back => ctx.events.push(TranscriptEvent::LoopBack),
                LoopToken::Bca(_) => {}
            }
        }
        if self.dying_bd.is_endpoint() {
            if let LoopToken::Bca(msg) = tok {
                // We are the BCA target: capture the payload, act on it
                // when the UNMARK reaches us and the network is clean.
                self.pending_bca = Some(msg);
            }
        }
        self.pending_loop = Some((now + SPEED1_DWELL, tok, route.succ));
        self.marks.advance(route);
    }

    fn on_unmark(&mut self, p: Port, now: u64, ctx: &mut Ctx) {
        // Absorption by the RCA initiator: the RCA is over (step 5).
        if let RcaState::AwaitUnmarkReturn { after } = self.rca {
            if self.marks.pred(MarkPair::First) == Some(p) {
                self.marks.clear();
                self.dying_id.reset();
                self.dying_od.reset();
                self.rca = RcaState::Idle;
                self.on_rca_done(after, now, ctx);
                return;
            }
        }
        // Absorption by the BCA target: everything before us on the loop is
        // erased and all KILLs are dead — act on the payload.
        if self.dying_bd.is_endpoint() && self.dying_bd.pred() == Some(p) {
            self.marks.clear();
            self.dying_bd.reset();
            // The endpoint always holds the payload in an undisturbed run;
            // a mutation can deliver the UNMARK without it.
            let Some(msg) = self.pending_bca.take() else {
                return;
            };
            self.on_bca_payload(msg, now, ctx);
            return;
        }
        // Ordinary forwarding: pass (speed-3) and forget the designations.
        if let Some(route) = self.marks.unmark(p) {
            ctx.outputs[route.succ.idx()].unmark = true;
            match route.pair {
                MarkPair::First => {
                    self.dying_id.reset();
                    self.dying_bd.reset();
                }
                MarkPair::Second => {
                    self.dying_od.reset();
                }
            }
            if self.is_root {
                // "Upon reception of this UNMARK token, the root reopens
                // itself to IG-snakes" (step 5).
                self.dying_od.reset();
                self.dying_id.reset();
                self.root_rca = RootRca::Open;
            }
        }
        // An off-loop UNMARK (impossible without a mutation) is dropped.
    }

    fn on_dfs_forward(&mut self, o: Port, i: Port, now: u64, ctx: &mut Ctx) {
        if self.is_root {
            // Root self-communication short-circuit (DESIGN.md §5): the
            // transcript is piped locally, then the token bounces back.
            ctx.events.push(TranscriptEvent::LocalForward {
                out_port: o,
                in_port: i,
            });
            self.start_bca(i, now);
            return;
        }
        let report = RcaReport::Forward {
            out_port: o,
            in_port: i,
        };
        if !self.dfs.visited {
            self.dfs.visited = true;
            self.dfs.parent = Some(i);
            self.start_rca(report, AfterRca::Descend, now);
        } else {
            // "A processor never wants more than one parent": report the
            // edge, then send the token straight back via the BCA.
            self.start_rca(report, AfterRca::Bounce { via: i }, now);
        }
    }

    // ------------------------------------------------------------------
    // Scheduled emissions
    // ------------------------------------------------------------------

    fn flush_due(&mut self, now: u64, outputs: &mut [Signal]) {
        // At most one emission per snake kind per tick. In an undisturbed
        // run deadlines within one relay are spaced ≥ 1 tick apart (one
        // character per wire per tick) and the processor steps on every
        // tick it holds pending characters, so this drains exactly as the
        // unbounded loop would. After a live mutation a straggler stream
        // can land a second character whose deadline collides with a
        // queued one (e.g. a re-routed head arriving behind a tail);
        // serializing the emissions preserves the one-character-per-kind
        // wire invariant instead of tripping its collision guard.
        for kind in [SnakeKind::Ig, SnakeKind::Og, SnakeKind::Bg] {
            let relay = match kind {
                SnakeKind::Ig => &mut self.ig,
                SnakeKind::Og => &mut self.og,
                _ => &mut self.bg,
            };
            if let Some(e) = relay.due(now) {
                match e {
                    GrowEmit::Heads => {
                        for o in self.out_ports.iter() {
                            outputs[o.idx()].put_snake(kind, SnakeChar::Head(Hop::star(o)));
                        }
                    }
                    GrowEmit::Relay(c) => self.broadcast_snake(outputs, kind, c),
                    GrowEmit::Extend => {
                        for o in self.out_ports.iter() {
                            outputs[o.idx()].put_snake(kind, SnakeChar::Body(Hop::star(o)));
                        }
                    }
                    GrowEmit::Tail => self.broadcast_snake(outputs, kind, SnakeChar::Tail),
                }
            }
        }
        // Dying lanes route each character to one specific port, but the
        // same collision argument applies per lane: one emission per tick.
        for lane in [&mut self.dying_id, &mut self.dying_od, &mut self.dying_bd] {
            if let Some(e) = lane.due(now) {
                outputs[e.port.idx()].put_snake(lane.out_kind(), e.c);
            }
        }
        if let Some((deadline, tok, port)) = self.pending_loop {
            if deadline <= now {
                outputs[port.idx()].put_loop(tok);
                self.pending_loop = None;
            }
        }
    }

    fn has_pending(&self) -> bool {
        self.ig.has_pending()
            || self.og.has_pending()
            || self.bg.has_pending()
            || self.dying_id.has_pending()
            || self.dying_od.has_pending()
            || self.dying_bd.has_pending()
            || self.pending_loop.is_some()
    }

    /// Earliest tick at which any dwelling character emerges — the wake
    /// deadline this processor hands the engine's frontier. `None` when
    /// nothing is dwelling (the processor is purely input-driven).
    fn next_emission_deadline(&self) -> Option<u64> {
        [
            self.ig.next_deadline(),
            self.og.next_deadline(),
            self.bg.next_deadline(),
            self.dying_id.next_deadline(),
            self.dying_od.next_deadline(),
            self.dying_bd.next_deadline(),
            self.pending_loop.map(|(deadline, _, _)| deadline),
        ]
        .into_iter()
        .flatten()
        .min()
    }
}

impl Automaton for ProtocolNode {
    type Sig = Signal;
    type Event = TranscriptEvent;

    fn step(&mut self, ctx: &mut Ctx) {
        let now = ctx.tick;

        // A power-cycled processor is dark: every arriving character is
        // consumed and lost, nothing is emitted, and the engine is asked
        // to wake us exactly when the downtime expires (so the amnesiac
        // power-on lands on the same tick in every engine mode).
        if now < self.offline_until {
            let blank = Signal::default();
            self.dropped_carry += ctx.inputs[..self.delta as usize]
                .iter()
                .filter(|s| **s != blank)
                .count() as u64;
            ctx.request_restep_at(self.offline_until);
            return;
        }

        // Power-on behaviour.
        if !self.started {
            self.started = true;
            match self.start {
                StartBehavior::GtdRoot => {
                    ctx.events.push(TranscriptEvent::Start);
                    self.advance_dfs(now, ctx);
                }
                StartBehavior::SingleRca => {
                    self.start_rca(RcaReport::Back, AfterRca::ProbeDone, now);
                }
                StartBehavior::SingleBca { via } => {
                    self.bca_probe = true;
                    self.start_bca(via, now);
                }
                StartBehavior::Passive => {}
            }
        }

        // Phase 0: RESET flood (re-mapping extension). Processed before
        // everything else so a DFS token arriving the same tick sees a
        // cleared slate.
        if self.pending_restart {
            self.pending_restart = false;
            self.reset_parity = !self.reset_parity;
            self.dfs = DfsState {
                visited: true,
                parent: None,
                cursor: 0,
                awaiting: false,
                done: false,
            };
            for o in self.out_ports.iter() {
                ctx.outputs[o.idx()].reset = Some(self.reset_parity);
            }
            ctx.events.push(TranscriptEvent::Start);
            self.advance_dfs(now, ctx);
        }
        if !self.is_root {
            let stamp = (0..self.delta as usize).find_map(|i| ctx.inputs[i].reset);
            if let Some(p) = stamp {
                if p != self.reset_parity {
                    // first copy of the new round: clear, stamp, forward.
                    self.reset_parity = p;
                    self.dfs = DfsState {
                        visited: false,
                        parent: None,
                        cursor: 0,
                        awaiting: false,
                        done: false,
                    };
                    for o in self.out_ports.iter() {
                        ctx.outputs[o.idx()].reset = Some(p);
                    }
                }
            }
        }

        // Phase 1: KILL tokens — erasure wins ties with arriving characters.
        let mut killed = false;
        for i in 0..self.delta as usize {
            if ctx.inputs[i].kill && self.kill_accepted(Port(i as u8)) {
                killed = true;
            }
        }
        if killed {
            self.stat_kills_accepted += 1;
            self.ig.erase();
            self.og.erase();
            self.bg.erase();
            self.broadcast_kill(ctx.outputs);
        }

        // Phase 2: growing-snake characters (ascending port order ⇒ the
        // paper's lowest-in-port tie-break).
        if !killed {
            for i in 0..self.delta as usize {
                let p = Port(i as u8);
                let sig = ctx.inputs[i];
                if let Some(c) = sig.snake(SnakeKind::Ig) {
                    self.on_ig(p, c, now, ctx);
                }
                if let Some(c) = sig.snake(SnakeKind::Og) {
                    self.on_og(p, c, now, ctx);
                }
                if let Some(c) = sig.snake(SnakeKind::Bg) {
                    self.on_bg(p, c, now, ctx);
                }
            }
        }

        // Phase 3: dying-snake characters.
        for i in 0..self.delta as usize {
            let p = Port(i as u8);
            let sig = ctx.inputs[i];
            if let Some(c) = sig.snake(SnakeKind::Id) {
                self.on_id(p, c, now, ctx);
            }
            if let Some(c) = sig.snake(SnakeKind::Od) {
                self.on_od(p, c, now, ctx);
            }
            if let Some(c) = sig.snake(SnakeKind::Bd) {
                self.on_bd(p, c, now, ctx);
            }
        }

        // Phase 4: loop tokens (speed-1).
        for i in 0..self.delta as usize {
            if let Some(tok) = ctx.inputs[i].loop_tok {
                self.on_loop(Port(i as u8), tok, now, ctx);
            }
        }

        // Phase 5: UNMARK tokens (speed-3: processed and forwarded within
        // the same tick).
        for i in 0..self.delta as usize {
            if ctx.inputs[i].unmark {
                self.on_unmark(Port(i as u8), now, ctx);
            }
        }

        // Phase 6: the DFS token.
        for i in 0..self.delta as usize {
            if let Some(d) = ctx.inputs[i].dfs {
                self.on_dfs_forward(d.sender_out_port, Port(i as u8), now, ctx);
            }
        }

        // Phase 7: scheduled emissions whose dwell expired this tick.
        self.flush_due(now, ctx.outputs);

        // Phase 8: sleep until the earliest scheduled emission. The engine
        // frontier skips this processor entirely until that deadline (or
        // until a character arrives) — the speed-1 dwells that dominate a
        // protocol run cost no steps at all. `flush_due` drains at most
        // one emission per lane per tick, so a drained lane whose next
        // item is already due simply re-arms for the coming tick.
        self.stat_max_chars = self.stat_max_chars.max(self.chars_in_flight());
        if let Some(deadline) = self.next_emission_deadline() {
            ctx.request_restep_at(deadline);
        }
    }

    fn on_rewire(&mut self, meta: &NodeMeta) {
        // Port awareness (§1.2.1) tracks the physical wiring: recompute
        // the connected out-port list. Snake and DFS state are left alone
        // — the session-level remap driver decides whether the disturbed
        // run needs a RESET flood or a full power-cycle.
        self.out_ports = meta.out_connected;
        if self.dfs.cursor > self.out_ports.len() {
            self.dfs.cursor = self.out_ports.len();
        }
    }

    fn on_join(&mut self, meta: &NodeMeta) {
        // A processor spliced into a running network powers on exactly
        // like one present at t0: factory-fresh state, port awareness from
        // its power-on meta. Refreshing the out-port list keeps the hook
        // honest even if a caller constructs the automaton from stale
        // meta.
        // The master's host cannot join mid-run; a harness that feeds a
        // root join anyway gets a no-op, not a debug-only crash.
        if meta.is_root {
            return;
        }
        self.on_rewire(meta);
    }
}
