//! The root's computational transcript (paper §1.2.1 and §3).
//!
//! "At each step of the protocol, the root is piping its computational
//! transcript to the computer to which it is attached." These events are
//! exactly what the master computer needs (Lemma 4.1): the port-pair hops
//! of the canonical shortest paths as the root converts IG→OG and ID→OD,
//! plus the FORWARD/BACK loop tokens, plus the root-local DFS moves that
//! never touch the network (DESIGN.md §5, reconstruction 2).

use gtd_netsim::Port;
use gtd_snake::Hop;

/// What an RCA reports to the root (paper §3: δ² FORWARD variants + BACK).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RcaReport {
    /// The DFS token moved forward: out of `out_port` of the previous
    /// holder, into `in_port` of the reporting processor.
    Forward {
        /// Sender's out-port.
        out_port: Port,
        /// Receiver's in-port.
        in_port: Port,
    },
    /// The DFS token moved backwards (via the BCA).
    Back,
}

/// One transcript symbol piped from the root to its master computer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TranscriptEvent {
    /// Protocol initiated (the outside source nudged the root).
    Start,
    /// One hop of the canonical path A→root, read off the IG snake as it is
    /// converted to an OG snake (RCA step 2; Lemma 4.1).
    IgHop(Hop),
    /// The IG tail passed: the A→root path is complete.
    IgTail,
    /// One hop of the canonical path root→A, read off the ID snake as it is
    /// converted to an OD snake (RCA step 3; Lemma 4.1).
    IdHop(Hop),
    /// The ID tail passed: the root→A path is complete.
    IdTail,
    /// A FORWARD loop token passed the root.
    LoopForward {
        /// Out-port of the previous DFS holder.
        out_port: Port,
        /// In-port of the reporting processor.
        in_port: Port,
    },
    /// A BACK loop token passed the root.
    LoopBack,
    /// The DFS token re-entered the root through a forward edge
    /// (out-port of sender, in-port of root); transcribed locally.
    LocalForward {
        /// Out-port of the previous DFS holder.
        out_port: Port,
        /// Root's in-port.
        in_port: Port,
    },
    /// The DFS token returned to the root via a BCA; transcribed locally.
    LocalBack,
    /// The root finished all its out-ports: the DFS — and the protocol —
    /// is over ("the root enters a special terminal state").
    Terminated,

    // ---- auxiliary events (not part of the paper's transcript; emitted by
    // non-root processors for the experiment harness and tests) ----
    /// A standalone RCA probe finished at its initiator.
    RcaComplete,
    /// A standalone BCA probe finished at its initiator (B side).
    BcaComplete,
    /// A BCA payload was acted upon at its target (A side).
    BcaDelivered,
}

impl TranscriptEvent {
    /// Is this one of the auxiliary probe events (vs the paper's transcript)?
    pub fn is_probe(&self) -> bool {
        matches!(
            self,
            TranscriptEvent::RcaComplete
                | TranscriptEvent::BcaComplete
                | TranscriptEvent::BcaDelivered
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_classification() {
        assert!(TranscriptEvent::RcaComplete.is_probe());
        assert!(TranscriptEvent::BcaComplete.is_probe());
        assert!(TranscriptEvent::BcaDelivered.is_probe());
        assert!(!TranscriptEvent::Start.is_probe());
        assert!(!TranscriptEvent::LoopBack.is_probe());
        assert!(!TranscriptEvent::Terminated.is_probe());
    }

    #[test]
    fn events_compare_by_payload() {
        let evs = [
            TranscriptEvent::Start,
            TranscriptEvent::IgHop(Hop::new(Port(1), Port(0))),
            TranscriptEvent::IgHop(Hop::new(Port(0), Port(1))),
            TranscriptEvent::IgTail,
            TranscriptEvent::LoopForward {
                out_port: Port(2),
                in_port: Port(1),
            },
            TranscriptEvent::LoopForward {
                out_port: Port(1),
                in_port: Port(2),
            },
            TranscriptEvent::LocalBack,
            TranscriptEvent::Terminated,
        ];
        for (i, a) in evs.iter().enumerate() {
            for (j, b) in evs.iter().enumerate() {
                assert_eq!(a == b, i == j, "{a:?} vs {b:?}");
            }
        }
    }
}
