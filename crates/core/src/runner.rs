//! Top-level protocol runners: the full Global Topology Determination and
//! the standalone RCA/BCA probes the experiments measure.

use crate::events::TranscriptEvent;
use crate::master::{DecodeError, MasterComputer, NetworkMap};
use crate::node::{ProtocolNode, StartBehavior};
use gtd_netsim::{algo, Engine, EngineMode, NodeId, Port, Topology};

/// Why a run failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GtdError {
    /// The tick guard expired before the root terminated. Either the
    /// network violates a model precondition (e.g. not strongly connected)
    /// or there is a protocol bug.
    Timeout {
        /// Ticks simulated before giving up.
        ticks: u64,
    },
    /// The root's transcript could not be replayed.
    Decode(DecodeError),
}

impl std::fmt::Display for GtdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GtdError::Timeout { ticks } => write!(f, "protocol did not terminate in {ticks} ticks"),
            GtdError::Decode(e) => write!(f, "transcript decode error: {e}"),
        }
    }
}

impl std::error::Error for GtdError {}

impl From<DecodeError> for GtdError {
    fn from(e: DecodeError) -> Self {
        GtdError::Decode(e)
    }
}

/// Aggregate counters derived from the transcript.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Network RCAs with a FORWARD report.
    pub forwards: usize,
    /// Network RCAs with a BACK report.
    pub backs: usize,
    /// Root-local forward transcriptions (token re-entered the root).
    pub local_forwards: usize,
    /// Root-local backs (BCA returned the token to the root).
    pub local_backs: usize,
}

impl RunStats {
    /// Total RCAs run over the network.
    pub fn rcas(&self) -> usize {
        self.forwards + self.backs
    }

    /// Total BCAs run over the network: one per BACK report (every
    /// backwards token move rides a BCA) plus one per root-local back.
    pub fn bcas(&self) -> usize {
        self.backs + self.local_backs
    }

    /// Total edge reports — must equal E exactly (Theorem 4.1's "a FORWARD
    /// token is sent for every edge").
    pub fn edges_reported(&self) -> usize {
        self.forwards + self.local_forwards
    }
}

/// The outcome of a full GTD run.
#[derive(Clone, Debug)]
pub struct GtdRun {
    /// The reconstructed port-level map.
    pub map: NetworkMap,
    /// Global clock ticks from initiation to the root's terminal state.
    pub ticks: u64,
    /// Transcript-derived counters.
    pub stats: RunStats,
    /// The full transcript (for replay, tracing, tests).
    pub events: Vec<TranscriptEvent>,
    /// True if after termination every processor's snake/token state was
    /// back to factory state (Lemma 4.2) and no signal was in flight.
    pub clean_at_end: bool,
    /// True if the DFS visited every processor.
    pub all_visited: bool,
}

/// Generous tick guard: each edge costs at most two RCAs and one BCA, each
/// O(D) ⊆ O(N) with small constants (speed-1 = 3 ticks/hop, ~4 loop
/// traversals per RCA).
fn tick_guard(topo: &Topology) -> u64 {
    let n = topo.num_nodes() as u64;
    let e = topo.num_edges() as u64;
    1_000 + (e + 2) * (n + 8) * 60
}

/// Build a GTD engine over `topo` with the root at node 0 — exposed so
/// tests and experiments can drive ticks manually (mid-run invariant
/// checks, phase censuses).
pub fn build_gtd_engine(topo: &Topology, mode: EngineMode) -> Engine<ProtocolNode> {
    Engine::new(topo, mode, |meta| {
        let start = if meta.is_root { StartBehavior::GtdRoot } else { StartBehavior::Passive };
        ProtocolNode::new(&meta, start)
    })
}

/// Run the Global Topology Determination protocol on `topo` with the root
/// at node 0. Returns the reconstructed map and run metrics.
pub fn run_gtd(topo: &Topology, mode: EngineMode) -> Result<GtdRun, GtdError> {
    let mut engine = build_gtd_engine(topo, mode);
    let guard = tick_guard(topo);
    let root = NodeId(0);
    let mut master = MasterComputer::new();
    let mut events = Vec::new();
    let mut stats = RunStats::default();
    let mut scratch = Vec::new();
    let mut ticks = None;
    while ticks.is_none() {
        if engine.tick_count() >= guard {
            return Err(GtdError::Timeout { ticks: guard });
        }
        scratch.clear();
        engine.tick(&mut scratch);
        for (nid, ev) in scratch.drain(..) {
            debug_assert_eq!(nid, root, "only the root emits transcript events in a GTD run");
            match ev {
                TranscriptEvent::LoopForward { .. } => stats.forwards += 1,
                TranscriptEvent::LoopBack => stats.backs += 1,
                TranscriptEvent::LocalForward { .. } => stats.local_forwards += 1,
                TranscriptEvent::LocalBack => stats.local_backs += 1,
                TranscriptEvent::Terminated => ticks = Some(engine.tick_count()),
                _ => {}
            }
            master.feed(ev)?;
            events.push(ev);
        }
    }
    // One grace tick: emissions written on the terminal tick drain.
    scratch.clear();
    engine.tick(&mut scratch);
    debug_assert!(scratch.is_empty());
    let clean_at_end = engine.is_quiet()
        && engine.signals_in_flight() == 0
        && engine.nodes().iter().all(|n| n.snake_state_pristine());
    let all_visited = engine.nodes().iter().all(|n| n.dfs_visited());
    Ok(GtdRun {
        map: master.into_map()?,
        ticks: ticks.expect("loop exits only on termination"),
        stats,
        events,
        clean_at_end,
        all_visited,
    })
}

/// Run the GTD protocol `rounds` times on the same live network: after each
/// termination the master computer nudges the root ([`ProtocolNode::master_restart`]),
/// a RESET flood clears the DFS bookkeeping, and the network is mapped
/// again — the dynamic-remapping extension motivated by the paper's §1
/// ("the network topology or size might change…"). Returns one [`GtdRun`]
/// per round; determinism implies all rounds produce identical maps, which
/// is asserted.
pub fn run_gtd_repeated(
    topo: &Topology,
    mode: EngineMode,
    rounds: usize,
) -> Result<Vec<GtdRun>, GtdError> {
    assert!(rounds >= 1);
    let mut engine = build_gtd_engine(topo, mode);
    let guard_per_round = tick_guard(topo);
    let root = NodeId(0);
    let mut runs = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut master = MasterComputer::new();
        let mut events = Vec::new();
        let mut stats = RunStats::default();
        let mut scratch = Vec::new();
        let start_tick = engine.tick_count();
        let mut end_tick = None;
        while end_tick.is_none() {
            if engine.tick_count() - start_tick >= guard_per_round {
                return Err(GtdError::Timeout { ticks: guard_per_round });
            }
            scratch.clear();
            engine.tick(&mut scratch);
            for (nid, ev) in scratch.drain(..) {
                debug_assert_eq!(nid, root);
                match ev {
                    TranscriptEvent::LoopForward { .. } => stats.forwards += 1,
                    TranscriptEvent::LoopBack => stats.backs += 1,
                    TranscriptEvent::LocalForward { .. } => stats.local_forwards += 1,
                    TranscriptEvent::LocalBack => stats.local_backs += 1,
                    TranscriptEvent::Terminated => end_tick = Some(engine.tick_count()),
                    _ => {}
                }
                master.feed(ev)?;
                events.push(ev);
            }
        }
        // drain, then wait for total quiescence (the master knows the map,
        // hence a safe settling bound; in practice 1–2 ticks).
        let mut settle = 0;
        loop {
            scratch.clear();
            engine.tick(&mut scratch);
            debug_assert!(scratch.is_empty());
            if engine.is_quiet() {
                break;
            }
            settle += 1;
            assert!(settle < 1000, "network failed to settle after termination");
        }
        let clean_at_end = engine.signals_in_flight() == 0
            && engine.nodes().iter().all(|n| n.snake_state_pristine());
        let all_visited = engine.nodes().iter().all(|n| n.dfs_visited());
        runs.push(GtdRun {
            map: master.into_map()?,
            ticks: end_tick.expect("terminated") - start_tick,
            stats,
            events,
            clean_at_end,
            all_visited,
        });
        if round + 1 < rounds {
            engine.node_mut(root).master_restart();
        }
    }
    for r in &runs[1..] {
        assert_eq!(r.map, runs[0].map, "re-mapping must reproduce the identical map");
    }
    Ok(runs)
}

/// Measurements from a standalone RCA (experiment E3, Lemma 4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RcaProbe {
    /// Ticks from initiation until A terminates the RCA.
    pub ticks: u64,
    /// Hop distance d(A, root) in the network.
    pub dist_to_root: u32,
    /// Hop distance d(root, A).
    pub dist_from_root: u32,
    /// Was the entire network back to factory snake-state at completion?
    pub clean_at_end: bool,
}

/// Run one RCA from processor `a` to the root (node 0) and measure it.
pub fn run_single_rca(topo: &Topology, a: NodeId, mode: EngineMode) -> Result<RcaProbe, GtdError> {
    assert_ne!(a, NodeId(0), "the root communicates with itself locally (DESIGN.md §5)");
    let mut engine = Engine::new(topo, mode, |meta| {
        let start =
            if meta.id == a { StartBehavior::SingleRca } else { StartBehavior::Passive };
        ProtocolNode::new(&meta, start)
    });
    let guard = tick_guard(topo);
    let (_, fired) = engine.run_until(guard, |&(nid, ev)| {
        nid == a && ev == TranscriptEvent::RcaComplete
    });
    if !fired {
        return Err(GtdError::Timeout { ticks: guard });
    }
    let ticks = engine.tick_count();
    // Drain the final tick's emissions (there are none in a clean run).
    let mut scratch = Vec::new();
    engine.tick(&mut scratch);
    let clean_at_end = engine.is_quiet()
        && engine.signals_in_flight() == 0
        && engine.nodes().iter().all(|n| n.snake_state_pristine());
    Ok(RcaProbe {
        ticks,
        dist_to_root: algo::bfs_dist(topo, a)[0],
        dist_from_root: algo::bfs_dist(topo, NodeId(0))[a.idx()],
        clean_at_end,
    })
}

/// Measurements from a standalone BCA (experiment E4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BcaProbe {
    /// Ticks until the initiator B finished (released the UNMARK).
    pub ticks_initiator: u64,
    /// Ticks until the target acted on the payload (absorbed the UNMARK).
    pub ticks_delivered: u64,
    /// Length of the marked loop B→…→A→B (shortest B→A distance + 1).
    pub loop_len: u32,
    /// Was the entire network back to factory snake-state at completion?
    pub clean_at_end: bool,
}

/// Run one BCA: processor `b` sends a message backwards through its
/// in-port `via` (the wire from its in-neighbour) and both ends are timed.
pub fn run_single_bca(
    topo: &Topology,
    b: NodeId,
    via: Port,
    mode: EngineMode,
) -> Result<BcaProbe, GtdError> {
    let target = topo
        .in_endpoint(b, via)
        .expect("BCA requires a wired in-port")
        .node;
    let mut engine = Engine::new(topo, mode, |meta| {
        let start =
            if meta.id == b { StartBehavior::SingleBca { via } } else { StartBehavior::Passive };
        ProtocolNode::new(&meta, start)
    });
    let guard = tick_guard(topo);
    let mut ticks_initiator = None;
    let mut ticks_delivered = None;
    let mut scratch = Vec::new();
    while ticks_delivered.is_none() {
        if engine.tick_count() >= guard {
            return Err(GtdError::Timeout { ticks: guard });
        }
        scratch.clear();
        engine.tick(&mut scratch);
        for &(nid, ev) in scratch.iter() {
            match ev {
                TranscriptEvent::BcaComplete if nid == b => {
                    ticks_initiator = Some(engine.tick_count());
                }
                TranscriptEvent::BcaDelivered => {
                    debug_assert_eq!(nid, target, "payload must surface at the in-neighbour");
                    ticks_delivered = Some(engine.tick_count());
                }
                _ => {}
            }
        }
    }
    scratch.clear();
    engine.tick(&mut scratch);
    let clean_at_end = engine.is_quiet()
        && engine.signals_in_flight() == 0
        && engine.nodes().iter().all(|n| n.snake_state_pristine());
    Ok(BcaProbe {
        ticks_initiator: ticks_initiator.expect("initiator finishes before delivery"),
        ticks_delivered: ticks_delivered.unwrap(),
        loop_len: algo::bfs_dist(topo, b)[target.idx()] + 1,
        clean_at_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::generators;

    #[test]
    fn gtd_on_two_cycle() {
        let topo = generators::ring(2);
        let run = run_gtd(&topo, EngineMode::Dense).unwrap();
        run.map.verify_against(&topo, NodeId(0)).unwrap();
        assert_eq!(run.map.num_nodes(), 2);
        assert_eq!(run.map.num_edges(), 2);
        assert_eq!(run.stats.edges_reported(), 2);
        assert!(run.clean_at_end, "Lemma 4.2 violated");
        assert!(run.all_visited);
    }

    #[test]
    fn gtd_on_small_ring() {
        let topo = generators::ring(5);
        let run = run_gtd(&topo, EngineMode::Sparse).unwrap();
        run.map.verify_against(&topo, NodeId(0)).unwrap();
        assert_eq!(run.stats.edges_reported(), topo.num_edges());
        assert!(run.clean_at_end);
    }

    #[test]
    fn single_rca_on_ring_is_clean_and_linear() {
        let topo = generators::ring(6);
        let probe = run_single_rca(&topo, NodeId(3), EngineMode::Dense).unwrap();
        assert!(probe.clean_at_end, "Lemma 4.2 violated");
        // loop length = d(A,root) + d(root,A) = 6 on a ring; speed-1 ≈ 3
        // ticks/hop across ~4 phases
        let loop_len = (probe.dist_to_root + probe.dist_from_root) as u64;
        assert_eq!(loop_len, 6);
        assert!(probe.ticks >= 3 * loop_len, "too fast to be speed-1");
        assert!(probe.ticks <= 20 * loop_len + 40, "not O(D): {}", probe.ticks);
    }

    #[test]
    fn single_bca_delivers_backwards() {
        // ring: 1's in-port 0 is fed by 0; BCA from 1 targets 0.
        let topo = generators::ring(4);
        let probe = run_single_bca(&topo, NodeId(1), Port(0), EngineMode::Dense).unwrap();
        assert!(probe.clean_at_end);
        // loop 1→2→3→0→1: 4 hops
        assert_eq!(probe.loop_len, 4);
        assert!(probe.ticks_initiator < probe.ticks_delivered);
    }
}
