//! The standalone RCA/BCA probes and the raw engine constructor.
//!
//! The full-protocol entry points live on
//! [`GtdSession`](crate::session::GtdSession). The single-probe runners
//! ([`run_single_rca`],
//! [`run_single_bca`]) are the canonical way to measure one auxiliary
//! protocol in isolation (experiments E3/E4).

use crate::events::TranscriptEvent;
use crate::node::{ProtocolNode, StartBehavior};
use crate::session::{default_tick_budget, GtdError};
use gtd_netsim::{algo, Engine, EngineMode, NodeId, Port, Topology};

/// Build a GTD engine over `topo` with the root at node 0 — exposed so
/// tests and experiments can drive ticks manually (mid-run invariant
/// checks, phase censuses).
pub fn build_gtd_engine(topo: &Topology, mode: EngineMode) -> Engine<ProtocolNode> {
    build_gtd_engine_sharded(topo, mode, None)
}

/// [`build_gtd_engine`] with an explicit parallel shard count (ignored
/// outside [`EngineMode::Parallel`]; `None` auto-sizes).
pub fn build_gtd_engine_sharded(
    topo: &Topology,
    mode: EngineMode,
    par_shards: Option<usize>,
) -> Engine<ProtocolNode> {
    Engine::with_root_sharded(topo, mode, NodeId(0), par_shards, &mut |meta| {
        let start = if meta.is_root {
            StartBehavior::GtdRoot
        } else {
            StartBehavior::Passive
        };
        ProtocolNode::new(&meta, start)
    })
}

/// Measurements from a standalone RCA (experiment E3, Lemma 4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RcaProbe {
    /// Ticks from initiation until A terminates the RCA.
    pub ticks: u64,
    /// Hop distance d(A, root) in the network.
    pub dist_to_root: u32,
    /// Hop distance d(root, A).
    pub dist_from_root: u32,
    /// Was the entire network back to factory snake-state at completion?
    pub clean_at_end: bool,
}

/// Run one RCA from processor `a` to the root (node 0) and measure it.
pub fn run_single_rca(topo: &Topology, a: NodeId, mode: EngineMode) -> Result<RcaProbe, GtdError> {
    assert_ne!(
        a,
        NodeId(0),
        "the root communicates with itself locally (DESIGN.md §5)"
    );
    let mut engine = Engine::new(topo, mode, |meta| {
        let start = if meta.id == a {
            StartBehavior::SingleRca
        } else {
            StartBehavior::Passive
        };
        ProtocolNode::new(&meta, start)
    });
    let budget = default_tick_budget(topo);
    let (_, fired) = engine.run_until(budget, |&(nid, ev)| {
        nid == a && ev == TranscriptEvent::RcaComplete
    });
    if !fired {
        return Err(GtdError::BudgetExhausted {
            budget,
            ticks: engine.tick_count(),
        });
    }
    let ticks = engine.tick_count();
    // Drain the final tick's emissions (there are none in a clean run).
    let mut scratch = Vec::new();
    engine.tick(&mut scratch);
    let clean_at_end = engine.is_quiet()
        && engine.signals_in_flight() == 0
        && engine.nodes().iter().all(|n| n.snake_state_pristine());
    Ok(RcaProbe {
        ticks,
        dist_to_root: algo::bfs_dist(topo, a)[0],
        dist_from_root: algo::bfs_dist(topo, NodeId(0))[a.idx()],
        clean_at_end,
    })
}

/// Measurements from a standalone BCA (experiment E4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BcaProbe {
    /// Ticks until the initiator B finished (released the UNMARK).
    pub ticks_initiator: u64,
    /// Ticks until the target acted on the payload (absorbed the UNMARK).
    pub ticks_delivered: u64,
    /// Length of the marked loop B→…→A→B (shortest B→A distance + 1).
    pub loop_len: u32,
    /// Was the entire network back to factory snake-state at completion?
    pub clean_at_end: bool,
}

/// Run one BCA: processor `b` sends a message backwards through its
/// in-port `via` (the wire from its in-neighbour) and both ends are timed.
pub fn run_single_bca(
    topo: &Topology,
    b: NodeId,
    via: Port,
    mode: EngineMode,
) -> Result<BcaProbe, GtdError> {
    let target = topo
        .in_endpoint(b, via)
        .expect("BCA requires a wired in-port")
        .node;
    let mut engine = Engine::new(topo, mode, |meta| {
        let start = if meta.id == b {
            StartBehavior::SingleBca { via }
        } else {
            StartBehavior::Passive
        };
        ProtocolNode::new(&meta, start)
    });
    let budget = default_tick_budget(topo);
    let mut ticks_initiator = None;
    let mut ticks_delivered = None;
    let mut scratch = Vec::new();
    while ticks_delivered.is_none() {
        if engine.tick_count() >= budget {
            return Err(GtdError::BudgetExhausted {
                budget,
                ticks: engine.tick_count(),
            });
        }
        scratch.clear();
        engine.tick(&mut scratch);
        for &(nid, ev) in scratch.iter() {
            match ev {
                TranscriptEvent::BcaComplete if nid == b => {
                    ticks_initiator = Some(engine.tick_count());
                }
                TranscriptEvent::BcaDelivered => {
                    debug_assert_eq!(nid, target, "payload must surface at the in-neighbour");
                    ticks_delivered = Some(engine.tick_count());
                }
                _ => {}
            }
        }
    }
    scratch.clear();
    engine.tick(&mut scratch);
    let clean_at_end = engine.is_quiet()
        && engine.signals_in_flight() == 0
        && engine.nodes().iter().all(|n| n.snake_state_pristine());
    Ok(BcaProbe {
        ticks_initiator: ticks_initiator.expect("initiator finishes before delivery"),
        ticks_delivered: ticks_delivered.unwrap(),
        loop_len: algo::bfs_dist(topo, b)[target.idx()] + 1,
        clean_at_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::generators;

    #[test]
    fn single_rca_on_ring_is_clean_and_linear() {
        let topo = generators::ring(6);
        let probe = run_single_rca(&topo, NodeId(3), EngineMode::Dense).unwrap();
        assert!(probe.clean_at_end, "Lemma 4.2 violated");
        // loop length = d(A,root) + d(root,A) = 6 on a ring; speed-1 ≈ 3
        // ticks/hop across ~4 phases
        let loop_len = (probe.dist_to_root + probe.dist_from_root) as u64;
        assert_eq!(loop_len, 6);
        assert!(probe.ticks >= 3 * loop_len, "too fast to be speed-1");
        assert!(
            probe.ticks <= 20 * loop_len + 40,
            "not O(D): {}",
            probe.ticks
        );
    }

    #[test]
    fn single_bca_delivers_backwards() {
        // ring: 1's in-port 0 is fed by 0; BCA from 1 targets 0.
        let topo = generators::ring(4);
        let probe = run_single_bca(&topo, NodeId(1), Port(0), EngineMode::Dense).unwrap();
        assert!(probe.clean_at_end);
        // loop 1→2→3→0→1: 4 hops
        assert_eq!(probe.loop_len, 4);
        assert!(probe.ticks_initiator < probe.ticks_delivered);
    }
}
