//! # gtd-core
//!
//! Goldstein's **Global Topology Determination** protocol (IPPS 2002),
//! complete with both auxiliary protocols:
//!
//! * the **Root Communication Algorithm** (RCA, paper §4.2) — a processor A
//!   signals FORWARD/BACK to the root while the root's master computer
//!   learns the canonical shortest paths A→root and root→A;
//! * the **Backwards Communication Algorithm** (BCA, paper §4.1, rebuilt
//!   from its stated contract — see DESIGN.md §5) — a constant-size message
//!   crosses a directed edge backwards;
//! * the **DFS driver** (§3) that walks the DFS token across every edge,
//!   reporting each move to the root; and
//! * the **master computer** (§3) that replays the root's transcript into
//!   an exact port-level map of the network.
//!
//! The protocol runs on `gtd-netsim`'s lockstep engine as a single
//! finite-state automaton type, [`ProtocolNode`], identical at every
//! processor (the root differs only by its power-on flag, as in the paper).
//!
//! ```
//! use gtd_core::run_gtd;
//! use gtd_netsim::{generators, EngineMode};
//!
//! let topo = generators::random_sc(24, 3, 7);
//! let run = run_gtd(&topo, EngineMode::Sparse).expect("protocol completes");
//! run.map.verify_against(&topo, gtd_netsim::NodeId(0)).expect("exact map");
//! assert!(run.ticks > 0);
//! ```

pub mod events;
pub mod master;
pub mod node;
pub mod runner;

pub use events::{RcaReport, TranscriptEvent};
pub use master::{DecodeError, MasterComputer, NetworkMap, VerifyError};
pub use node::{ProtocolNode, StartBehavior};
pub use runner::{
    run_gtd, run_gtd_repeated, run_single_bca, run_single_rca, BcaProbe, GtdError, GtdRun,
    RcaProbe, RunStats,
};
