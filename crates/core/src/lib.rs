//! # gtd-core
//!
//! Goldstein's **Global Topology Determination** protocol (IPPS 2002),
//! complete with both auxiliary protocols:
//!
//! * the **Root Communication Algorithm** (RCA, paper §4.2) — a processor A
//!   signals FORWARD/BACK to the root while the root's master computer
//!   learns the canonical shortest paths A→root and root→A;
//! * the **Backwards Communication Algorithm** (BCA, paper §4.1, rebuilt
//!   from its stated contract — see DESIGN.md §5) — a constant-size message
//!   crosses a directed edge backwards;
//! * the **DFS driver** (§3) that walks the DFS token across every edge,
//!   reporting each move to the root; and
//! * the **master computer** (§3) that replays the root's transcript into
//!   an exact port-level map of the network.
//!
//! The protocol runs on `gtd-netsim`'s lockstep engine as a single
//! finite-state automaton type, [`ProtocolNode`], identical at every
//! processor (the root differs only by its power-on flag, as in the paper).
//!
//! The primary entry point is the [`GtdSession`] builder: pick a root,
//! an engine strategy and a tick budget, then run once or repeatedly.
//!
//! ```
//! use gtd_core::GtdSession;
//! use gtd_netsim::{generators, EngineMode, NodeId};
//!
//! let topo = generators::random_sc(24, 3, 7);
//! let run = GtdSession::on(&topo)
//!     .root(NodeId(3))
//!     .mode(EngineMode::Sparse)
//!     .run()
//!     .expect("protocol completes");
//! run.map.verify_against(&topo, NodeId(3)).expect("exact map");
//! assert!(run.ticks > 0);
//! assert_eq!(run.stats.edges_reported(), topo.num_edges());
//! ```

pub mod events;
pub mod master;
pub mod node;
pub mod phases;
pub mod runner;
pub mod session;

pub use events::{RcaReport, TranscriptEvent};
pub use master::{DecodeError, MapEdge, MasterComputer, NetworkMap, VerifyError};
pub use node::{ProtocolNode, StartBehavior, RESTART_DOWNTIME};
pub use phases::{phase_breakdown, PhaseBreakdown};
pub use runner::{
    build_gtd_engine, build_gtd_engine_sharded, run_single_bca, run_single_rca, BcaProbe, RcaProbe,
};
pub use session::{
    default_progress_window, default_tick_budget, AttemptOutcome, EpochOutcome, EpochStatus,
    GtdError, GtdSession, MutationOutcome, PreconditionViolation, RemapOutcome, RemapPolicy,
    ResilientOutcome, RunOutcome, RunStats,
};
