//! Phase accounting over the root's tick-stamped transcript.
//!
//! Where a GTD run's ticks go, aggregated over all network RCAs — the
//! anatomy of the ~33·E·D constant (experiment E2's ablation table).
//! [`GtdSession`](crate::GtdSession) computes a [`PhaseBreakdown`] for
//! every run that captures its transcript.

use crate::events::TranscriptEvent;

/// Tick totals per protocol phase.
///
/// Phase boundaries are read off the tick-stamped root transcript:
/// * **search** — the gap between the previous block's end marker and an
///   RCA's first IgHop. The root's transcript cannot separate the next
///   RCA's IG-flood transit from the tail of the previous RCA's cleanup,
///   so for back-to-back RCAs (the common case) that transit is folded
///   into the preceding **report+cleanup** bucket and `search` is
///   non-zero mainly after root-local moves and at protocol start;
/// * **echo** — IgTail→first IdHop: the OG snake growing back out to A and
///   the ID snake returning (two more speed-1 diameters);
/// * **mark** — IdHop→IdTail: the ID→OD conversion streaming through;
/// * **report+cleanup** — IdTail→the next RCA's first IgHop (or the next
///   local move / termination): OD marking finishing, the FORWARD/BACK
///   token circling, KILL dying out, UNMARK circling — plus, per the
///   `search` caveat, the following RCA's IG flood when blocks are
///   adjacent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseBreakdown {
    /// Ticks in the search phase (IG floods).
    pub search: u64,
    /// Ticks in the echo phase (OG out + ID back).
    pub echo: u64,
    /// Ticks streaming conversions at the root.
    pub mark: u64,
    /// Ticks reporting and cleaning up (loop token, KILL, UNMARK).
    pub report_cleanup: u64,
    /// Network RCAs observed.
    pub rcas: usize,
}

impl PhaseBreakdown {
    /// Total accounted ticks.
    pub fn total(&self) -> u64 {
        self.search + self.echo + self.mark + self.report_cleanup
    }
}

/// Compute the phase breakdown from a tick-stamped root transcript.
pub fn phase_breakdown(events: &[(u64, TranscriptEvent)]) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::default();
    let mut prev_end = events.first().map_or(0, |&(t, _)| t);
    let mut i = 0;
    while i < events.len() {
        // find the start of the next RCA block (first IgHop)
        let Some(start) = events[i..]
            .iter()
            .position(|&(_, e)| matches!(e, TranscriptEvent::IgHop(_)))
            .map(|k| i + k)
        else {
            break;
        };
        let t_start = events[start].0;
        let find = |from: usize, pred: &dyn Fn(TranscriptEvent) -> bool| {
            events[from..]
                .iter()
                .position(|&(_, e)| pred(e))
                .map(|k| from + k)
        };
        let Some(ig_tail) = find(start, &|e| e == TranscriptEvent::IgTail) else {
            break;
        };
        let Some(id_first) = find(ig_tail, &|e| matches!(e, TranscriptEvent::IdHop(_))) else {
            break;
        };
        let Some(id_tail) = find(id_first, &|e| e == TranscriptEvent::IdTail) else {
            break;
        };
        // next block start (or final event) bounds report+cleanup
        let next = find(id_tail, &|e| {
            matches!(
                e,
                TranscriptEvent::IgHop(_)
                    | TranscriptEvent::LocalForward { .. }
                    | TranscriptEvent::LocalBack
                    | TranscriptEvent::Terminated
            )
        })
        .unwrap_or(events.len() - 1);
        out.search += t_start.saturating_sub(prev_end);
        out.echo += events[id_first].0 - events[ig_tail].0;
        out.mark += (events[ig_tail].0 - t_start) + (events[id_tail].0 - events[id_first].0);
        out.report_cleanup += events[next].0 - events[id_tail].0;
        out.rcas += 1;
        prev_end = events[next].0;
        i = id_tail + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_transcripts_account_nothing() {
        assert_eq!(phase_breakdown(&[]).rcas, 0);
        assert_eq!(phase_breakdown(&[(0, TranscriptEvent::Start)]).total(), 0);
    }
}
