//! The master computer (paper §3, "What is the master computer's strategy
//! for mapping the network given the computational transcript…").
//!
//! The computer replays the root's transcript, drawing the topological map
//! as the algorithm proceeds:
//!
//! * it allocates **names** to processors as they are discovered — a name
//!   is the canonical shortest path root→A, read off the ID→OD conversion
//!   (Lemma 4.1); the protocol is deterministic, so the same processor
//!   always presents the same path;
//! * it keeps a **stack** of processor positions mirroring the DFS token:
//!   FORWARD pushes the reporting processor after drawing the directed
//!   edge from the previous stack top; BACK pops;
//! * root-local moves (LocalForward/LocalBack) do the same bookkeeping for
//!   edges into the root, which the root transcribes without a network RCA
//!   (DESIGN.md §5).
//!
//! The decoder is strict: out-of-order events, duplicate edges, stack
//! underflow, or inconsistent canonical paths are hard [`DecodeError`]s —
//! corrupted transcripts must never silently produce a wrong map.

use crate::events::TranscriptEvent;
use gtd_netsim::{Edge, NodeId, Port, Topology, TopologyBuilder};
use gtd_snake::{Hop, PortPath};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// One directed wire in the reconstructed map, in master-computer names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MapEdge {
    /// Name of the sending processor (0 = root).
    pub src: u32,
    /// Out-port on the sender.
    pub src_port: Port,
    /// Name of the receiving processor.
    pub dst: u32,
    /// In-port on the receiver.
    pub dst_port: Port,
}

/// The finished map: names with their canonical paths, plus every wire.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetworkMap {
    /// `paths[name]` = canonical root→processor port path; `paths[0]` = ε.
    pub paths: Vec<PortPath>,
    /// All wires, sorted.
    pub edges: Vec<MapEdge>,
}

/// Transcript decoding failures (strictness is a feature: a root transcript
/// that cannot be replayed exactly is evidence of a protocol bug).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Event arrived in a phase where it is not legal.
    UnexpectedEvent(&'static str),
    /// Transcript fed after `Terminated`.
    AfterTermination,
    /// A BACK with an empty (or root-only) stack.
    StackUnderflow,
    /// A BACK whose revealed position does not match the reporting node.
    StackMismatch,
    /// The same out-port of the same processor reported two edges.
    DuplicateEdge(MapEdge),
    /// A processor re-appeared with a different canonical A→root path.
    InconsistentReturnPath(u32),
    /// `Terminated` with the DFS stack not back at the root.
    UnbalancedAtTermination,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEvent(w) => write!(f, "unexpected transcript event: {w}"),
            DecodeError::AfterTermination => write!(f, "transcript event after termination"),
            DecodeError::StackUnderflow => write!(f, "DFS stack underflow"),
            DecodeError::StackMismatch => write!(f, "BACK revealed an unexpected stack top"),
            DecodeError::DuplicateEdge(e) => write!(f, "out-port reported twice: {e:?}"),
            DecodeError::InconsistentReturnPath(n) => {
                write!(f, "processor {n} changed its canonical return path")
            }
            DecodeError::UnbalancedAtTermination => {
                write!(f, "termination with unfinished DFS stack")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Map-vs-ground-truth verification failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A canonical path does not walk to a processor in the real network.
    PathUnresolvable(u32),
    /// Two names resolved to the same real processor.
    DuplicateName(u32, u32),
    /// The map found a different number of processors than the network has.
    NodeCountMismatch {
        /// Processors in the map.
        mapped: usize,
        /// Processors in the network.
        actual: usize,
    },
    /// The mapped edge set differs from the real edge set.
    EdgeSetMismatch {
        /// Edges in the real network but not the map.
        missing: usize,
        /// Edges in the map but not the network.
        extra: usize,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::PathUnresolvable(n) => write!(f, "name {n}: path does not resolve"),
            VerifyError::DuplicateName(a, b) => write!(f, "names {a} and {b} are one processor"),
            VerifyError::NodeCountMismatch { mapped, actual } => {
                write!(f, "mapped {mapped} processors, network has {actual}")
            }
            VerifyError::EdgeSetMismatch { missing, extra } => {
                write!(f, "edge sets differ: {missing} missing, {extra} extra")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl NetworkMap {
    /// Processors discovered (including the root).
    pub fn num_nodes(&self) -> usize {
        self.paths.len()
    }

    /// Wires discovered.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Resolve every master-computer name against the ground-truth
    /// network and return the mapped wires in **ground-truth labels**,
    /// sorted — the common currency of the `TopologyMapper` comparisons.
    ///
    /// Errors if a canonical path does not walk to a processor, two names
    /// collide, or the processor count disagrees; the returned edge set
    /// may still differ from the network's (that final check is
    /// [`NetworkMap::verify_against`]'s job).
    pub fn resolve_edges(&self, topo: &Topology, root: NodeId) -> Result<Vec<Edge>, VerifyError> {
        let mut resolved: Vec<NodeId> = Vec::with_capacity(self.paths.len());
        let mut seen: HashMap<NodeId, u32> = HashMap::new();
        for (name, path) in self.paths.iter().enumerate() {
            let id = path
                .resolve(topo, root)
                .ok_or(VerifyError::PathUnresolvable(name as u32))?;
            if let Some(&prev) = seen.get(&id) {
                return Err(VerifyError::DuplicateName(prev, name as u32));
            }
            seen.insert(id, name as u32);
            resolved.push(id);
        }
        if resolved.len() != topo.num_nodes() {
            return Err(VerifyError::NodeCountMismatch {
                mapped: resolved.len(),
                actual: topo.num_nodes(),
            });
        }
        let mut mapped: Vec<Edge> = self
            .edges
            .iter()
            .map(|e| Edge {
                src: resolved[e.src as usize],
                src_port: e.src_port,
                dst: resolved[e.dst as usize],
                dst_port: e.dst_port,
            })
            .collect();
        mapped.sort_unstable();
        Ok(mapped)
    }

    /// Theorem 4.1 check: resolve every name against the ground-truth
    /// network and require the edge sets to agree **exactly** (port level).
    pub fn verify_against(&self, topo: &Topology, root: NodeId) -> Result<(), VerifyError> {
        let mapped = self.resolve_edges(topo, root)?;
        let actual = topo.sorted_edges();
        if mapped != actual {
            let mapped_set: std::collections::BTreeSet<_> = mapped.iter().collect();
            let actual_set: std::collections::BTreeSet<_> = actual.iter().collect();
            return Err(VerifyError::EdgeSetMismatch {
                missing: actual_set.difference(&mapped_set).count(),
                extra: mapped_set.difference(&actual_set).count(),
            });
        }
        Ok(())
    }

    /// Materialize the map as a [`Topology`] in master-computer names (what
    /// a downstream user of the protocol would consume, e.g. for routing).
    pub fn to_topology(&self) -> Result<Topology, gtd_netsim::TopologyError> {
        let delta = self
            .edges
            .iter()
            .flat_map(|e| [e.src_port.0, e.dst_port.0])
            .max()
            .map_or(2, |m| (m + 1).max(2));
        let mut b = TopologyBuilder::new(self.paths.len().max(2), delta);
        for e in &self.edges {
            b.connect(NodeId(e.src), e.src_port, NodeId(e.dst), e.dst_port)?;
        }
        b.build()
    }
}

/// Phase of the transcript decoder within one RCA.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Phase {
    /// Between RCAs.
    Idle,
    /// Reading the A→root path off the IG→OG conversion.
    Ig(Vec<Hop>),
    /// IG tail seen; waiting for the ID snake.
    AwaitId(Vec<Hop>),
    /// Reading the root→A path off the ID→OD conversion.
    Id(Vec<Hop>, Vec<Hop>),
    /// Both paths complete; waiting for the FORWARD/BACK loop token.
    AwaitLoop(Vec<Hop>, Vec<Hop>),
}

/// The unbounded-memory computer attached to the root.
#[derive(Clone, Debug)]
pub struct MasterComputer {
    started: bool,
    terminated: bool,
    phase: Phase,
    names: HashMap<PortPath, u32>,
    paths: Vec<PortPath>,
    /// Canonical A→root path recorded per name, for the determinism check.
    return_paths: Vec<Option<PortPath>>,
    stack: Vec<u32>,
    /// `(src, src_port) → (dst, dst_port)`; each out-port maps one wire.
    edges: HashMap<(u32, Port), (u32, Port)>,
}

impl Default for MasterComputer {
    fn default() -> Self {
        Self::new()
    }
}

impl MasterComputer {
    /// A computer waiting for its communication processor to start.
    pub fn new() -> Self {
        MasterComputer {
            started: false,
            terminated: false,
            phase: Phase::Idle,
            names: HashMap::new(),
            paths: Vec::new(),
            return_paths: Vec::new(),
            stack: Vec::new(),
            edges: HashMap::new(),
        }
    }

    /// Has the protocol terminated?
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// Current DFS stack depth (the token's distance from the root in
    /// tree terms) — used by tests and the trace example.
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    /// Processors named so far.
    pub fn nodes_discovered(&self) -> usize {
        self.paths.len()
    }

    fn intern(&mut self, path: PortPath, return_path: PortPath) -> Result<u32, DecodeError> {
        match self.names.entry(path.clone()) {
            Entry::Occupied(o) => {
                let name = *o.get();
                // Determinism check (Definition 4.1): the canonical paths
                // must be reproduced exactly on every visit.
                match &self.return_paths[name as usize] {
                    Some(rp) if *rp != return_path => {
                        Err(DecodeError::InconsistentReturnPath(name))
                    }
                    _ => Ok(name),
                }
            }
            Entry::Vacant(v) => {
                let name = self.paths.len() as u32;
                v.insert(name);
                self.paths.push(path);
                self.return_paths.push(Some(return_path));
                Ok(name)
            }
        }
    }

    fn draw_edge(
        &mut self,
        src: u32,
        src_port: Port,
        dst: u32,
        dst_port: Port,
    ) -> Result<(), DecodeError> {
        match self.edges.entry((src, src_port)) {
            Entry::Occupied(_) => Err(DecodeError::DuplicateEdge(MapEdge {
                src,
                src_port,
                dst,
                dst_port,
            })),
            Entry::Vacant(v) => {
                v.insert((dst, dst_port));
                Ok(())
            }
        }
    }

    /// Feed one transcript symbol from the root.
    pub fn feed(&mut self, ev: TranscriptEvent) -> Result<(), DecodeError> {
        if self.terminated {
            return Err(DecodeError::AfterTermination);
        }
        if !self.started {
            return match ev {
                TranscriptEvent::Start => {
                    self.started = true;
                    // "the stack will initially consist of only the root"
                    self.names.insert(PortPath::empty(), 0);
                    self.paths.push(PortPath::empty());
                    self.return_paths.push(None);
                    self.stack.push(0);
                    Ok(())
                }
                _ => Err(DecodeError::UnexpectedEvent("before Start")),
            };
        }
        let phase = std::mem::replace(&mut self.phase, Phase::Idle);
        match (phase, ev) {
            (Phase::Idle, TranscriptEvent::IgHop(h)) => {
                self.phase = Phase::Ig(vec![h]);
                Ok(())
            }
            (Phase::Ig(mut v), TranscriptEvent::IgHop(h)) => {
                v.push(h);
                self.phase = Phase::Ig(v);
                Ok(())
            }
            (Phase::Ig(v), TranscriptEvent::IgTail) => {
                self.phase = Phase::AwaitId(v);
                Ok(())
            }
            (Phase::AwaitId(v), TranscriptEvent::IdHop(h)) => {
                self.phase = Phase::Id(v, vec![h]);
                Ok(())
            }
            (Phase::Id(v, mut w), TranscriptEvent::IdHop(h)) => {
                w.push(h);
                self.phase = Phase::Id(v, w);
                Ok(())
            }
            (Phase::Id(v, w), TranscriptEvent::IdTail) => {
                self.phase = Phase::AwaitLoop(v, w);
                Ok(())
            }
            (Phase::AwaitLoop(v, w), TranscriptEvent::LoopForward { out_port, in_port }) => {
                let name = self.intern(PortPath::from_hops(w), PortPath::from_hops(v))?;
                let &top = self.stack.last().ok_or(DecodeError::StackUnderflow)?;
                self.draw_edge(top, out_port, name, in_port)?;
                self.stack.push(name);
                Ok(())
            }
            (Phase::AwaitLoop(v, w), TranscriptEvent::LoopBack) => {
                let name = self.intern(PortPath::from_hops(w), PortPath::from_hops(v))?;
                self.stack.pop().ok_or(DecodeError::StackUnderflow)?;
                let &top = self.stack.last().ok_or(DecodeError::StackUnderflow)?;
                if top != name {
                    return Err(DecodeError::StackMismatch);
                }
                Ok(())
            }
            (Phase::Idle, TranscriptEvent::LocalForward { out_port, in_port }) => {
                let &top = self.stack.last().ok_or(DecodeError::StackUnderflow)?;
                self.draw_edge(top, out_port, 0, in_port)?;
                self.stack.push(0);
                Ok(())
            }
            (Phase::Idle, TranscriptEvent::LocalBack) => {
                self.stack.pop().ok_or(DecodeError::StackUnderflow)?;
                let &top = self.stack.last().ok_or(DecodeError::StackUnderflow)?;
                if top != 0 {
                    return Err(DecodeError::StackMismatch);
                }
                Ok(())
            }
            (Phase::Idle, TranscriptEvent::Terminated) => {
                if self.stack != [0] {
                    return Err(DecodeError::UnbalancedAtTermination);
                }
                self.terminated = true;
                Ok(())
            }
            (Phase::Idle, TranscriptEvent::Start) => {
                Err(DecodeError::UnexpectedEvent("duplicate Start"))
            }
            _ => Err(DecodeError::UnexpectedEvent("event out of phase")),
        }
    }

    /// Finish decoding and hand over the map. Errors if the protocol never
    /// terminated (the map would be partial).
    pub fn into_map(self) -> Result<NetworkMap, DecodeError> {
        if !self.terminated {
            return Err(DecodeError::UnexpectedEvent("transcript incomplete"));
        }
        Ok(self.into_partial_map())
    }

    /// Hand over whatever map the transcript built so far, terminated or
    /// not — the graceful-degradation path for faulted sessions that ran
    /// out of retries: every edge in it was reported by a completed RCA,
    /// so the partial map is exact on what it covers, merely incomplete.
    pub fn into_partial_map(self) -> NetworkMap {
        let mut edges: Vec<MapEdge> = self
            .edges
            .into_iter()
            .map(|((src, src_port), (dst, dst_port))| MapEdge {
                src,
                src_port,
                dst,
                dst_port,
            })
            .collect();
        edges.sort_unstable();
        NetworkMap {
            paths: self.paths,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::Port;

    fn hop(o: u8, i: u8) -> Hop {
        Hop::new(Port(o), Port(i))
    }

    /// Hand-written transcript for the 2-cycle (root ↔ n1): the DFS visits
    /// n1 (FORWARD), n1 explores its out-port back into the root
    /// (LocalForward, then the root bounces the token via BCA and n1
    /// reports BACK), and finally n1 backtracks to the root (LocalBack).
    fn two_cycle_transcript() -> Vec<TranscriptEvent> {
        use TranscriptEvent::*;
        vec![
            Start,
            // n1's FORWARD RCA: path n1→root = (0,0); path root→n1 = (0,0)
            IgHop(hop(0, 0)),
            IgTail,
            IdHop(hop(0, 0)),
            IdTail,
            LoopForward {
                out_port: Port(0),
                in_port: Port(0),
            },
            // n1 explores its out-port: token re-enters the root…
            LocalForward {
                out_port: Port(0),
                in_port: Port(0),
            },
            // …the root bounces it back via BCA, and n1 reports BACK
            IgHop(hop(0, 0)),
            IgTail,
            IdHop(hop(0, 0)),
            IdTail,
            LoopBack,
            // n1 is finished: the BCA returns the token to the root
            LocalBack,
            Terminated,
        ]
    }

    #[test]
    fn decodes_two_cycle() {
        let mut m = MasterComputer::new();
        for ev in two_cycle_transcript() {
            m.feed(ev).unwrap();
        }
        assert!(m.terminated());
        let map = m.into_map().unwrap();
        assert_eq!(map.num_nodes(), 2);
        assert_eq!(map.num_edges(), 2);
        let topo = gtd_netsim::generators::ring(2);
        map.verify_against(&topo, NodeId(0)).unwrap();
        // and the map materializes as a valid topology
        let rebuilt = map.to_topology().unwrap();
        assert_eq!(rebuilt.num_edges(), 2);
    }

    #[test]
    fn rejects_event_before_start() {
        let mut m = MasterComputer::new();
        assert!(matches!(
            m.feed(TranscriptEvent::IgTail),
            Err(DecodeError::UnexpectedEvent(_))
        ));
    }

    #[test]
    fn rejects_out_of_phase_events() {
        let mut m = MasterComputer::new();
        m.feed(TranscriptEvent::Start).unwrap();
        m.feed(TranscriptEvent::IgHop(hop(0, 0))).unwrap();
        // an IdHop while still reading the IG path is illegal
        assert!(matches!(
            m.feed(TranscriptEvent::IdHop(hop(0, 0))),
            Err(DecodeError::UnexpectedEvent(_))
        ));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut m = MasterComputer::new();
        m.feed(TranscriptEvent::Start).unwrap();
        m.feed(TranscriptEvent::LocalForward {
            out_port: Port(0),
            in_port: Port(0),
        })
        .unwrap();
        m.feed(TranscriptEvent::LocalBack).unwrap();
        assert!(matches!(
            m.feed(TranscriptEvent::LocalForward {
                out_port: Port(0),
                in_port: Port(1)
            }),
            Err(DecodeError::DuplicateEdge(_))
        ));
    }

    #[test]
    fn rejects_back_mismatch() {
        use TranscriptEvent::*;
        let mut m = MasterComputer::new();
        m.feed(Start).unwrap();
        // BACK RCA claiming to be a processor that is not under the top
        m.feed(IgHop(hop(0, 0))).unwrap();
        m.feed(IgTail).unwrap();
        m.feed(IdHop(hop(0, 0))).unwrap();
        m.feed(IdTail).unwrap();
        assert!(matches!(
            m.feed(LoopBack),
            Err(DecodeError::StackMismatch) | Err(DecodeError::StackUnderflow)
        ));
    }

    #[test]
    fn rejects_unbalanced_termination() {
        use TranscriptEvent::*;
        let mut m = MasterComputer::new();
        m.feed(Start).unwrap();
        m.feed(LocalForward {
            out_port: Port(0),
            in_port: Port(0),
        })
        .unwrap();
        assert_eq!(
            m.feed(Terminated),
            Err(DecodeError::UnbalancedAtTermination)
        );
    }

    #[test]
    fn rejects_inconsistent_return_path() {
        use TranscriptEvent::*;
        let mut m = MasterComputer::new();
        m.feed(Start).unwrap();
        for ev in [
            IgHop(hop(0, 0)),
            IgTail,
            IdHop(hop(0, 0)),
            IdTail,
            LoopForward {
                out_port: Port(0),
                in_port: Port(0),
            },
        ] {
            m.feed(ev).unwrap();
        }
        // same processor (same root→A path) with a different A→root path
        for ev in [IgHop(hop(1, 1)), IgTail, IdHop(hop(0, 0)), IdTail] {
            m.feed(ev).unwrap();
        }
        assert_eq!(
            m.feed(LoopBack),
            Err(DecodeError::InconsistentReturnPath(1))
        );
    }

    #[test]
    fn incomplete_transcript_cannot_become_a_map() {
        let mut m = MasterComputer::new();
        m.feed(TranscriptEvent::Start).unwrap();
        assert!(m.into_map().is_err());
    }

    #[test]
    fn rejects_events_after_termination() {
        let mut m = MasterComputer::new();
        m.feed(TranscriptEvent::Start).unwrap();
        m.feed(TranscriptEvent::Terminated).unwrap();
        assert_eq!(
            m.feed(TranscriptEvent::Start),
            Err(DecodeError::AfterTermination)
        );
    }
}
