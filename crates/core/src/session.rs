//! Builder-configured GTD runs — the crate's primary entry point.
//!
//! [`GtdSession`] replaces the old fixed-shape free functions (`run_gtd`,
//! `run_gtd_repeated`): one builder configures the root processor, the
//! engine strategy, the tick budget, transcript capture and a streaming
//! observer, then [`GtdSession::run`] (or [`GtdSession::run_repeated`])
//! produces a unified [`RunOutcome`].
//!
//! ```
//! use gtd_core::GtdSession;
//! use gtd_netsim::{generators, EngineMode, NodeId};
//!
//! let topo = generators::random_sc(24, 3, 7);
//! let outcome = GtdSession::on(&topo)
//!     .root(NodeId(5))             // any processor can host the master
//!     .mode(EngineMode::Sparse)
//!     .run()
//!     .expect("protocol completes");
//! outcome.map.verify_against(&topo, NodeId(5)).expect("exact map");
//! assert!(outcome.ticks > 0);
//! assert_eq!(outcome.phases.rcas, outcome.stats.rcas());
//! ```
//!
//! A tick budget turns a wedged or oversized run into a structured error
//! instead of an endless loop:
//!
//! ```
//! use gtd_core::{GtdError, GtdSession};
//! use gtd_netsim::generators;
//!
//! let topo = generators::ring(16);
//! let err = GtdSession::on(&topo).tick_budget(10).run().unwrap_err();
//! assert!(matches!(err, GtdError::BudgetExhausted { budget: 10, .. }));
//! ```

use crate::events::TranscriptEvent;
use crate::master::{DecodeError, MasterComputer, NetworkMap};
use crate::node::{ProtocolNode, StartBehavior};
use crate::phases::{phase_breakdown, PhaseBreakdown};
use gtd_netsim::{
    algo, restart_victim, Engine, EngineMode, FaultPlane, MembershipChange, MutationKind,
    MutationSchedule, NodeId, ScheduledMutation, Topology,
};

/// A model precondition the session detected before simulating a single
/// tick (paper §1.1 assumes them; the protocol would simply never
/// terminate otherwise).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PreconditionViolation {
    /// The network is not strongly connected (checked via
    /// [`gtd_netsim::algo::is_strongly_connected`]).
    NotStronglyConnected,
    /// The configured root is not a processor of the network.
    RootOutOfRange {
        /// The requested root.
        root: NodeId,
        /// Number of processors in the network.
        nodes: usize,
    },
    /// The configured [`StartBehavior`] cannot drive a full GTD run to
    /// termination (only [`StartBehavior::GtdRoot`] initiates the DFS
    /// whose `Terminated` event ends a session run).
    StartNotRunnable(StartBehavior),
}

impl std::fmt::Display for PreconditionViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreconditionViolation::NotStronglyConnected => {
                write!(f, "network is not strongly connected")
            }
            PreconditionViolation::RootOutOfRange { root, nodes } => {
                write!(
                    f,
                    "root {root} out of range (network has {nodes} processors)"
                )
            }
            PreconditionViolation::StartNotRunnable(start) => {
                write!(f, "start behaviour {start:?} cannot terminate a GTD run")
            }
        }
    }
}

/// Why a run failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GtdError {
    /// The tick budget ran out before the root terminated. With the
    /// default budget this indicates a protocol bug; with a user budget
    /// it simply means the run was larger than allowed.
    BudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
        /// Ticks actually simulated (equals `budget` for a fresh run;
        /// for [`GtdSession::run_repeated`] it is the round-local count).
        ticks: u64,
    },
    /// A model precondition was violated; nothing was simulated.
    Precondition(PreconditionViolation),
    /// The root's transcript could not be replayed.
    Decode(DecodeError),
    /// A dynamic run kept producing stale or wedged mapping epochs
    /// without converging on a correct map — the defensive cap of
    /// [`GtdSession::run_dynamic`] (it cannot fire for valid mutations,
    /// which always leave a mappable, strongly-connected network).
    RemapDiverged {
        /// Mapping epochs executed before giving up.
        epochs: usize,
    },
}

impl std::fmt::Display for GtdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GtdError::BudgetExhausted { budget, ticks } => {
                write!(f, "tick budget {budget} exhausted after {ticks} ticks")
            }
            GtdError::Precondition(p) => write!(f, "precondition violated: {p}"),
            GtdError::Decode(e) => write!(f, "transcript decode error: {e}"),
            GtdError::RemapDiverged { epochs } => {
                write!(
                    f,
                    "dynamic run did not converge after {epochs} mapping epochs"
                )
            }
        }
    }
}

impl std::error::Error for GtdError {}

impl From<DecodeError> for GtdError {
    fn from(e: DecodeError) -> Self {
        GtdError::Decode(e)
    }
}

impl From<PreconditionViolation> for GtdError {
    fn from(p: PreconditionViolation) -> Self {
        GtdError::Precondition(p)
    }
}

/// Aggregate counters derived from the transcript.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RunStats {
    /// Network RCAs with a FORWARD report.
    pub forwards: usize,
    /// Network RCAs with a BACK report.
    pub backs: usize,
    /// Root-local forward transcriptions (token re-entered the root).
    pub local_forwards: usize,
    /// Root-local backs (BCA returned the token to the root).
    pub local_backs: usize,
    /// Snake characters the processors' bounded dwell queues refused at
    /// capacity during this run (summed over all processors at round end;
    /// see `DwellQueue::push_bounded`). Always 0 on clean runs — non-zero
    /// only when a live topology mutation orphaned a growing stream.
    pub dropped: u64,
    /// Characters the wire-level [`FaultPlane`] destroyed during this run
    /// (0 whenever the session runs without faults).
    pub fault_dropped: u64,
    /// Characters the fault plane delivered late during this run.
    pub fault_delayed: u64,
    /// Power-cycle retries a resilient run consumed before this outcome
    /// (0 for a first-attempt success and for every unfaulted run).
    pub retries: u32,
}

impl RunStats {
    /// Total RCAs run over the network.
    pub fn rcas(&self) -> usize {
        self.forwards + self.backs
    }

    /// Total BCAs run over the network: one per BACK report (every
    /// backwards token move rides a BCA) plus one per root-local back.
    pub fn bcas(&self) -> usize {
        self.backs + self.local_backs
    }

    /// Total edge reports — must equal E exactly (Theorem 4.1's "a FORWARD
    /// token is sent for every edge").
    pub fn edges_reported(&self) -> usize {
        self.forwards + self.local_forwards
    }
}

/// The unified outcome of one GTD run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The processor that hosted the master computer.
    pub root: NodeId,
    /// The reconstructed port-level map.
    pub map: NetworkMap,
    /// Global clock ticks from initiation to the root's terminal state
    /// (round-local for repeated runs).
    pub ticks: u64,
    /// Transcript-derived counters.
    pub stats: RunStats,
    /// Where the ticks went (empty unless the transcript was captured).
    pub phases: PhaseBreakdown,
    /// The tick-stamped transcript (for replay, tracing, phase analysis).
    /// Empty when [`GtdSession::capture_transcript`] was turned off.
    pub events: Vec<(u64, TranscriptEvent)>,
    /// True if after termination every processor's snake/token state was
    /// back to factory state (Lemma 4.2) and no signal was in flight.
    pub clean_at_end: bool,
    /// True if the DFS visited every processor.
    pub all_visited: bool,
}

impl RunOutcome {
    /// The transcript without tick stamps (replays into a
    /// [`MasterComputer`] verbatim).
    pub fn event_stream(&self) -> impl Iterator<Item = TranscriptEvent> + '_ {
        self.events.iter().map(|&(_, e)| e)
    }
}

/// Generous default tick budget: each edge costs at most two RCAs and one
/// BCA, each O(D) ⊆ O(N) with small constants (speed-1 = 3 ticks/hop,
/// ~4 loop traversals per RCA). A correct run always fits; exhaustion
/// under this budget means a protocol bug or a violated precondition that
/// slipped past the static check.
pub fn default_tick_budget(topo: &Topology) -> u64 {
    let n = topo.num_nodes() as u64;
    let e = topo.num_edges() as u64;
    1_000 + (e + 2) * (n + 8) * 60
}

/// Default wedge-detection window for [`GtdSession::run_resilient`]:
/// generously above the longest event-free stretch of a healthy run (one
/// edge's RCA+BCA costs O(N) speed-1 hop-dwells), so only a genuinely
/// stalled protocol trips it. Scaled up for wire delay and doubled per
/// retry by the resilient loop itself.
pub fn default_progress_window(topo: &Topology) -> u64 {
    let n = topo.num_nodes() as u64;
    1_000 + n * 240
}

/// When a dynamic run re-maps after a mid-epoch mutation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RemapPolicy {
    /// Let a disturbed epoch run to termination (or wedge) before
    /// re-mapping — no monitoring needed, but a mutation's remap latency
    /// includes the disturbed epoch's wasted tail.
    #[default]
    Lazy,
    /// Power-cycle the instant monitoring sees a mutation land mid-epoch:
    /// the disturbed epoch is cut short ([`EpochStatus::Preempted`]) and
    /// the remap latency is bounded by one fresh mapping run.
    Eager,
}

impl RemapPolicy {
    /// Every policy, in canonical order (CLI listings, campaign grids).
    pub const ALL: [RemapPolicy; 2] = [RemapPolicy::Lazy, RemapPolicy::Eager];

    /// Stable lowercase name (round-trips through [`std::str::FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            RemapPolicy::Lazy => "lazy",
            RemapPolicy::Eager => "eager",
        }
    }
}

impl std::fmt::Display for RemapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RemapPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        RemapPolicy::ALL
            .into_iter()
            .find(|p| p.name() == s.trim())
            .ok_or_else(|| {
                let known: Vec<&str> = RemapPolicy::ALL.iter().map(|p| p.name()).collect();
                format!("unknown remap policy {s:?} (known: {})", known.join(", "))
            })
    }
}

/// How one mapping epoch of a dynamic run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EpochStatus {
    /// The root terminated and its map matches the live topology.
    Verified,
    /// The root terminated but the map is wrong for the live topology
    /// (or the transcript failed to decode) — a mutation outdated it.
    Stale,
    /// The epoch could never terminate with a map: it ran out of tick
    /// budget, the network went quiet without terminating, or the
    /// transcript stopped decoding mid-run (protocol state lost to a
    /// mutation).
    Wedged,
    /// [`RemapPolicy::Eager`] cut the epoch short the moment a mutation
    /// landed mid-run; the master power-cycles and re-maps immediately.
    Preempted,
    /// A faulted run gave up retrying, but the master's transcript had
    /// decoded a usable **partial map**: every edge in it was reported by
    /// a completed RCA, so the map is exact on what it covers, merely
    /// incomplete (graceful degradation under an active [`FaultPlane`]).
    Partial,
    /// A faulted run exhausted its retries without decoding a single
    /// edge — the fault schedule destroyed every mapping attempt.
    Exhausted,
}

/// One mapping epoch of a dynamic run: a full protocol execution from
/// initiation (or re-initiation) to termination, wedge or budget
/// exhaustion, stamped in global timeline ticks.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochOutcome {
    /// Global tick at which the epoch's mapping run began.
    pub start_tick: u64,
    /// Global tick of termination (or of the wedge decision).
    pub end_tick: u64,
    /// How the epoch ended.
    pub status: EpochStatus,
    /// Processors in the network when the epoch ended (membership
    /// mutations change N mid-timeline).
    pub nodes: usize,
    /// The decoded map, when the transcript decoded (stale maps are kept
    /// — they are what the master *believed* before re-mapping).
    pub map: Option<NetworkMap>,
    /// The epoch's tick-stamped transcript (global ticks). Empty when
    /// [`GtdSession::capture_transcript`] was turned off.
    pub events: Vec<(u64, TranscriptEvent)>,
}

impl EpochOutcome {
    /// Ticks this epoch's mapping run took.
    pub fn ticks(&self) -> u64 {
        self.end_tick - self.start_tick
    }
}

/// What happened to one scheduled mutation over the timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The mutation as scheduled.
    pub scheduled: ScheduledMutation,
    /// Global tick at which it was actually applied (the first
    /// between-ticks opportunity at or after the scheduled tick).
    pub applied_at: Option<u64>,
    /// The kind actually applied —
    /// [`MutationKind::SwapLabels`] when the scheduled kind had no valid
    /// candidate and the fallback fired.
    pub applied_as: Option<MutationKind>,
    /// **Remap latency**: global ticks from the mutation's application to
    /// the end of the next verified mapping epoch — how long the master's
    /// picture of the network stayed wrong.
    pub remap_latency: Option<u64>,
}

/// The unified outcome of a schedule-aware dynamic run
/// ([`GtdSession::run_dynamic`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RemapOutcome {
    /// The processor that hosted the master computer, as configured (its
    /// id *in the base topology* — see [`RemapOutcome::final_root`]).
    pub root: NodeId,
    /// The master's host in the *final* topology: `node-leave` mutations
    /// below the root shift its id down (the root itself never leaves).
    pub final_root: NodeId,
    /// Every mapping epoch, in timeline order. The first epoch maps the
    /// pristine network; later ones are remaps.
    pub epochs: Vec<EpochOutcome>,
    /// Per-mutation application and remap-latency records, in schedule
    /// order.
    pub mutations: Vec<MutationOutcome>,
    /// Global ticks simulated over the whole timeline (mapping epochs,
    /// settling and idle gaps included).
    pub total_ticks: u64,
    /// The topology at the end of the timeline.
    pub final_topology: Topology,
    /// Characters the wire-level fault plane destroyed over the whole
    /// timeline (0 for unfaulted timelines).
    pub fault_dropped: u64,
    /// Characters the fault plane delivered late over the whole timeline.
    pub fault_delayed: u64,
}

impl RemapOutcome {
    /// Did the timeline end with a map matching the final topology?
    /// (Always true when `run_dynamic` returns `Ok` — kept as data so
    /// reports can assert it.)
    pub fn final_verified(&self) -> bool {
        matches!(
            self.epochs.last(),
            Some(e) if e.status == EpochStatus::Verified
        )
    }

    /// Ticks of the initial (pristine-network) mapping epoch.
    pub fn initial_ticks(&self) -> u64 {
        self.epochs.first().map_or(0, EpochOutcome::ticks)
    }

    /// Remap latencies in schedule order.
    pub fn remap_latencies(&self) -> Vec<Option<u64>> {
        self.mutations.iter().map(|m| m.remap_latency).collect()
    }

    /// Per-epoch processor counts, in timeline order (membership
    /// mutations change N; static timelines repeat the base count).
    pub fn epoch_nodes(&self) -> Vec<usize> {
        self.epochs.iter().map(|e| e.nodes).collect()
    }

    /// Did the timeline end in graceful degradation — a faulted run that
    /// gave up retrying with a [`EpochStatus::Partial`] map (or nothing,
    /// [`EpochStatus::Exhausted`]) instead of a verified one?
    pub fn final_degraded(&self) -> bool {
        matches!(
            self.epochs.last(),
            Some(e) if matches!(e.status, EpochStatus::Partial | EpochStatus::Exhausted)
        )
    }
}

/// One mapping attempt of a [`GtdSession::run_resilient`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AttemptOutcome {
    /// Attempt index (0 = first try; each retry power-cycles the whole
    /// network and re-seeds the fault plane via
    /// [`FaultPlane::with_attempt`]).
    pub attempt: u32,
    /// Ticks this attempt simulated before verifying, wedging or giving
    /// up — the per-retry latency record.
    pub ticks: u64,
    /// How the attempt ended: [`EpochStatus::Verified`],
    /// [`EpochStatus::Stale`] (terminated but the map failed
    /// verification) or [`EpochStatus::Wedged`] (progress window or
    /// budget expired, or the network went quiet without terminating).
    pub status: EpochStatus,
    /// Edges the master had decoded when the attempt ended.
    pub edges_reported: usize,
}

/// The unified outcome of a fault-tolerant run
/// ([`GtdSession::run_resilient`]): instead of hanging or erroring on a
/// wedge, the session retries up to [`GtdSession::max_retries`] times
/// and always ends in a structured status.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilientOutcome {
    /// The processor that hosted the master computer.
    pub root: NodeId,
    /// [`EpochStatus::Verified`] (some attempt produced an exact map),
    /// [`EpochStatus::Partial`] (all attempts failed but the best one
    /// decoded a usable partial map) or [`EpochStatus::Exhausted`]
    /// (nothing decoded at all).
    pub status: EpochStatus,
    /// The exact map on `Verified`, the best partial map on `Partial`
    /// (every edge in it is real — see
    /// [`MasterComputer::into_partial_map`]), `None` on `Exhausted`.
    pub map: Option<NetworkMap>,
    /// Every attempt, in order — the per-retry latency ledger.
    pub attempts: Vec<AttemptOutcome>,
    /// Transcript-derived counters of the winning (or best-partial)
    /// attempt; `retries` counts all consumed retries.
    pub stats: RunStats,
    /// Ticks of the winning (or best-partial) attempt.
    pub ticks: u64,
    /// Ticks summed over all attempts.
    pub total_ticks: u64,
    /// The winning (or best-partial) attempt's tick-stamped transcript
    /// (attempt-local ticks; empty when capture was off).
    pub events: Vec<(u64, TranscriptEvent)>,
}

impl ResilientOutcome {
    /// Did some attempt verify an exact map?
    pub fn verified(&self) -> bool {
        self.status == EpochStatus::Verified
    }

    /// Retries consumed after the first attempt.
    pub fn retries(&self) -> u32 {
        (self.attempts.len().saturating_sub(1)) as u32
    }
}

/// Observer callback: `(tick, event)` for every root transcript symbol.
type Observer<'a> = Box<dyn FnMut(u64, TranscriptEvent) + 'a>;

/// Builder for configured GTD runs. See the [module docs](self) for
/// examples.
pub struct GtdSession<'a> {
    topo: &'a Topology,
    root: NodeId,
    mode: EngineMode,
    tick_budget: Option<u64>,
    start: StartBehavior,
    capture: bool,
    policy: RemapPolicy,
    par_shards: Option<usize>,
    fault: FaultPlane,
    progress_window: Option<u64>,
    max_retries: u32,
    observer: Option<Observer<'a>>,
}

impl<'a> GtdSession<'a> {
    /// Start configuring a run on `topo`. Defaults: root `n0`, sparse
    /// engine, [`default_tick_budget`], transcript captured, lazy remap
    /// policy, no observer.
    pub fn on(topo: &'a Topology) -> Self {
        GtdSession {
            topo,
            root: NodeId(0),
            mode: EngineMode::Sparse,
            tick_budget: None,
            start: StartBehavior::GtdRoot,
            capture: true,
            policy: RemapPolicy::Lazy,
            par_shards: None,
            fault: FaultPlane::NONE,
            progress_window: None,
            max_retries: 3,
            observer: None,
        }
    }

    /// Which processor hosts the master computer. The protocol is
    /// identical at every processor, so any root works (§1.1: the root
    /// differs only by its power-on flag).
    pub fn root(mut self, root: NodeId) -> Self {
        self.root = root;
        self
    }

    /// Engine execution strategy (observationally identical across modes).
    pub fn mode(mut self, mode: EngineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Force the parallel engine's shard count (only meaningful with
    /// [`EngineMode::Parallel`]; other modes ignore it). `None` (the
    /// default) lets the engine auto-size from the core count and
    /// network size, honouring the `GTD_PAR_SHARDS` environment
    /// override. Outcomes are bit-identical at every shard count; the
    /// knob exists for benchmarking and for the equivalence sweeps.
    pub fn par_shards(mut self, shards: usize) -> Self {
        self.par_shards = Some(shards);
        self
    }

    /// Hard cap on simulated ticks (per round for repeated runs).
    /// Exhaustion returns [`GtdError::BudgetExhausted`] instead of
    /// spinning forever.
    pub fn tick_budget(mut self, budget: u64) -> Self {
        self.tick_budget = Some(budget);
        self
    }

    /// The root's power-on behaviour. Only [`StartBehavior::GtdRoot`]
    /// (the default) initiates the DFS whose `Terminated` event ends a
    /// session run, so [`Self::run`]/[`Self::run_repeated`] reject any
    /// other value up front with
    /// [`PreconditionViolation::StartNotRunnable`] — probe behaviours
    /// belong on non-root initiators and are driven by
    /// [`run_single_rca`](crate::runner::run_single_rca) /
    /// [`run_single_bca`](crate::runner::run_single_bca). The knob
    /// exists so future run shapes (e.g. probe sessions) keep the same
    /// builder surface.
    pub fn start(mut self, start: StartBehavior) -> Self {
        self.start = start;
        self
    }

    /// Keep (default) or drop the tick-stamped transcript. Dropping it
    /// saves memory on very large runs; the phase breakdown is then left
    /// empty (it is derived from the transcript).
    pub fn capture_transcript(mut self, capture: bool) -> Self {
        self.capture = capture;
        self
    }

    /// When a [`Self::run_dynamic`] timeline re-maps after a mid-epoch
    /// mutation (ignored by the static entry points). The default,
    /// [`RemapPolicy::Lazy`], lets a disturbed epoch run out;
    /// [`RemapPolicy::Eager`] power-cycles at the mutation so the remap
    /// latency is bounded by one fresh mapping run.
    pub fn policy(mut self, policy: RemapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Interpose a wire-level [`FaultPlane`] (per-character loss and
    /// bounded delay, deterministically seeded) on every delivery. An
    /// inactive plane (the default) leaves the engine's unfaulted fast
    /// path untouched. Faulted runs keep the engine's determinism
    /// contract — byte-identical transcripts across modes and shard
    /// counts — but may wedge: prefer [`Self::run_resilient`] (or
    /// [`Self::run_dynamic`], which degrades gracefully) over
    /// [`Self::run`] when the plane is active.
    pub fn faults(mut self, plane: FaultPlane) -> Self {
        self.fault = plane;
        self
    }

    /// Wedge-detection window for [`Self::run_resilient`]: an attempt
    /// that produces **no transcript progress** for this many ticks is
    /// preempted and retried. Defaults to [`default_progress_window`]
    /// scaled for the plane's wire delay; the window doubles on each
    /// retry so persistent wedges get increasing patience.
    pub fn progress_window(mut self, window: u64) -> Self {
        self.progress_window = Some(window.max(1));
        self
    }

    /// How many fresh power-cycle retries a faulted run may consume
    /// after its first attempt before degrading to
    /// [`EpochStatus::Partial`] / [`EpochStatus::Exhausted`]. Each retry
    /// re-seeds the fault plane ([`FaultPlane::with_attempt`]) so it
    /// does not replay the identical drop pattern. Default 3.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Stream every `(tick, event)` pair to `f` as the root emits it —
    /// independent of [`Self::capture_transcript`], so huge runs can be
    /// traced without buffering.
    pub fn observer(mut self, f: impl FnMut(u64, TranscriptEvent) + 'a) -> Self {
        self.observer = Some(Box::new(f));
        self
    }

    fn check_preconditions(&self) -> Result<(), PreconditionViolation> {
        if self.root.idx() >= self.topo.num_nodes() {
            return Err(PreconditionViolation::RootOutOfRange {
                root: self.root,
                nodes: self.topo.num_nodes(),
            });
        }
        if self.start != StartBehavior::GtdRoot {
            return Err(PreconditionViolation::StartNotRunnable(self.start));
        }
        if !algo::is_strongly_connected(self.topo) {
            return Err(PreconditionViolation::NotStronglyConnected);
        }
        Ok(())
    }

    fn build_engine(&self) -> Engine<ProtocolNode> {
        self.build_engine_on(self.topo, self.root, 0)
    }

    /// Build a fresh engine on `topo` with the master on `root` (the
    /// session's base topology and root, or a mutated successor during a
    /// dynamic run's power-cycle — membership mutations can have shifted
    /// the root's id by then). `attempt` re-seeds an active fault plane:
    /// a power-cycle resets the engine clock, so a retry under the
    /// identical seed would replay the identical fault pattern.
    fn build_engine_on(&self, topo: &Topology, root: NodeId, attempt: u32) -> Engine<ProtocolNode> {
        let start = self.start;
        let mut engine =
            Engine::with_root_sharded(topo, self.mode, root, self.par_shards, &mut |meta| {
                let behaviour = if meta.is_root {
                    start
                } else {
                    StartBehavior::Passive
                };
                ProtocolNode::new(&meta, behaviour)
            });
        if self.fault.is_active() {
            engine.set_fault_plane(self.fault.with_attempt(attempt));
        }
        engine
    }

    /// The effective per-run tick budget: the user's explicit budget, or
    /// [`default_tick_budget`] stretched for wire delay (each speed-1 hop
    /// costs 3 ticks unfaulted and up to `delay_max` more under the
    /// plane, so a delayed-but-lossless run still fits).
    fn effective_budget(&self, topo: &Topology) -> u64 {
        match self.tick_budget {
            Some(b) => b,
            None => {
                let base = default_tick_budget(topo);
                base.saturating_add(base / 3 * self.fault.delay_max)
            }
        }
    }

    /// Run the protocol once and return the unified outcome.
    pub fn run(self) -> Result<RunOutcome, GtdError> {
        Ok(self.run_repeated(1)?.pop().expect("one round requested"))
    }

    /// Run the protocol `rounds` times on the same live network: after
    /// each termination the master computer nudges the root
    /// ([`ProtocolNode::master_restart`]), a RESET flood clears the DFS
    /// bookkeeping, and the network is mapped again — the
    /// dynamic-remapping extension motivated by the paper's §1 ("the
    /// network topology or size might change…"). Determinism implies all
    /// rounds produce identical maps, which is asserted.
    pub fn run_repeated(mut self, rounds: usize) -> Result<Vec<RunOutcome>, GtdError> {
        assert!(rounds >= 1);
        self.check_preconditions()?;
        let budget = self.effective_budget(self.topo);
        let mut engine = self.build_engine();
        let root = self.root;
        let capture = self.capture;
        let faulted = self.fault.is_active();
        let mut outcomes: Vec<RunOutcome> = Vec::with_capacity(rounds);
        let mut scratch = Vec::new();
        // Drop counters are lifetime totals on the automata (and on the
        // engine's fault plane); report each round's delta so per-round
        // stats stay independent.
        let mut dropped_before = 0u64;
        let mut fault_dropped_before = 0u64;
        let mut fault_delayed_before = 0u64;
        for round in 0..rounds {
            let mut master = MasterComputer::new();
            let mut events: Vec<(u64, TranscriptEvent)> = Vec::new();
            let mut stats = RunStats::default();
            let start_tick = engine.tick_count();
            let mut end_tick = None;
            while end_tick.is_none() {
                // Fast-forward deadline-driven lulls (speed-1 dwells leave
                // whole ticks with nothing to step), capped at the budget
                // boundary so exhaustion fires at exactly the tick a
                // one-by-one loop would report.
                engine.skip_lull(start_tick.saturating_add(budget));
                let spent = engine.tick_count() - start_tick;
                if spent >= budget {
                    return Err(GtdError::BudgetExhausted {
                        budget,
                        ticks: spent,
                    });
                }
                scratch.clear();
                engine.tick(&mut scratch);
                let now = engine.tick_count();
                for (nid, ev) in scratch.drain(..) {
                    debug_assert_eq!(nid, root, "only the root emits transcript events");
                    match ev {
                        TranscriptEvent::LoopForward { .. } => stats.forwards += 1,
                        TranscriptEvent::LoopBack => stats.backs += 1,
                        TranscriptEvent::LocalForward { .. } => stats.local_forwards += 1,
                        TranscriptEvent::LocalBack => stats.local_backs += 1,
                        TranscriptEvent::Terminated => end_tick = Some(now),
                        _ => {}
                    }
                    if let Some(obs) = self.observer.as_mut() {
                        obs(now, ev);
                    }
                    if capture {
                        events.push((now, ev));
                    }
                    master.feed(ev)?;
                }
            }
            // Drain the terminal tick's emissions, then wait for total
            // quiescence (the master knows the map, hence a safe settling
            // bound; in practice 1–2 ticks). A faulted network may never
            // settle — a dropped UNMARK can leave a stray token
            // circulating — so under an active plane the wait is a
            // bounded best effort, not an invariant.
            let mut settle = 0;
            loop {
                scratch.clear();
                engine.tick(&mut scratch);
                debug_assert!(scratch.is_empty() || faulted);
                if engine.is_quiet() {
                    break;
                }
                settle += 1;
                if settle >= 1000 {
                    assert!(faulted, "network failed to settle after termination");
                    break;
                }
            }
            stats.dropped =
                engine.nodes().iter().map(|n| n.stat_dropped()).sum::<u64>() - dropped_before;
            dropped_before += stats.dropped;
            stats.fault_dropped = engine.fault_dropped() - fault_dropped_before;
            fault_dropped_before += stats.fault_dropped;
            stats.fault_delayed = engine.fault_delayed() - fault_delayed_before;
            fault_delayed_before += stats.fault_delayed;
            let clean_at_end = engine.signals_in_flight() == 0
                && engine.nodes().iter().all(|n| n.snake_state_pristine());
            let all_visited = engine.nodes().iter().all(|n| n.dfs_visited());
            let phases = if capture {
                phase_breakdown(&events)
            } else {
                PhaseBreakdown::default()
            };
            outcomes.push(RunOutcome {
                root,
                map: master.into_map()?,
                ticks: end_tick.expect("loop exits only on termination") - start_tick,
                stats,
                phases,
                events,
                clean_at_end,
                all_visited,
            });
            if round + 1 < rounds {
                engine.node_mut(root).master_restart();
            }
        }
        if !faulted {
            // Faulted rounds see different per-tick drop patterns (the
            // hash keys on the emit tick), so identical maps are only an
            // unfaulted invariant.
            for o in &outcomes[1..] {
                assert_eq!(
                    o.map, outcomes[0].map,
                    "re-mapping must reproduce the identical map"
                );
            }
        }
        Ok(outcomes)
    }

    /// Run the protocol with **graceful degradation** under an active
    /// [`FaultPlane`]: instead of hanging on a wedge or erroring on
    /// budget exhaustion, the session watches transcript progress and
    /// power-cycles the whole network when a configurable window
    /// ([`Self::progress_window`]) passes without a new root event,
    /// retrying up to [`Self::max_retries`] times with exponentially
    /// growing patience and a re-seeded fault plane per attempt.
    ///
    /// Always returns a structured [`ResilientOutcome`]:
    ///
    /// * **`Verified`** — some attempt terminated with an exact map
    ///   (faulted attempts that merely run slow still verify);
    /// * **`Partial`** — every attempt failed, but the best one decoded
    ///   a usable partial map (exact on the edges it covers);
    /// * **`Exhausted`** — the fault schedule destroyed every attempt
    ///   before a single edge decoded.
    ///
    /// Only [`GtdError::Precondition`] can make this return `Err`.
    /// Without an active plane it runs exactly one attempt (retries
    /// could only replay the identical deterministic run).
    pub fn run_resilient(mut self) -> Result<ResilientOutcome, GtdError> {
        self.check_preconditions()?;
        let budget = self.effective_budget(self.topo);
        let window0 = self.progress_window.unwrap_or_else(|| {
            let base = default_progress_window(self.topo);
            base.saturating_add(base / 3 * self.fault.delay_max)
        });
        let attempts_allowed = if self.fault.is_active() {
            self.max_retries.saturating_add(1)
        } else {
            1
        };
        let root = self.root;
        let capture = self.capture;
        let mut attempts: Vec<AttemptOutcome> = Vec::new();
        let mut total_ticks = 0u64;
        // Best failed attempt so far, by decoded-edge count.
        struct BestAttempt {
            edges: usize,
            map: NetworkMap,
            stats: RunStats,
            ticks: u64,
            events: Vec<(u64, TranscriptEvent)>,
        }
        let mut best: Option<BestAttempt> = None;
        let mut last_stats = RunStats::default();
        let mut scratch = Vec::new();
        for attempt in 0..attempts_allowed {
            let mut engine = self.build_engine_on(self.topo, root, attempt);
            let mut master = MasterComputer::new();
            let mut master_dead = false;
            let mut events: Vec<(u64, TranscriptEvent)> = Vec::new();
            let mut stats = RunStats::default();
            // Each retry doubles the wedge window: a pattern that stalls
            // slowly should not be preempted at the same impatience that
            // already failed.
            let window = window0.saturating_mul(1u64 << attempt.min(16));
            let mut last_progress = 0u64;
            let mut end_tick = None;
            let provisional = loop {
                let now = engine.tick_count();
                if now >= budget {
                    break EpochStatus::Wedged;
                }
                if engine.is_quiet() && !engine.node(root).terminated() {
                    // The plane destroyed the protocol's only token: a
                    // quiet network can never terminate on its own.
                    break EpochStatus::Wedged;
                }
                if now.saturating_sub(last_progress) >= window {
                    break EpochStatus::Wedged;
                }
                // Fast-forward lulls, capped so both the budget boundary
                // and the wedge deadline fire at their exact tick.
                let cap = budget.min(last_progress.saturating_add(window));
                if engine.skip_lull(cap) > 0 {
                    continue;
                }
                scratch.clear();
                engine.tick(&mut scratch);
                let t = engine.tick_count();
                let mut terminated = false;
                for (nid, ev) in scratch.drain(..) {
                    debug_assert_eq!(nid, root, "only the root emits transcript events");
                    last_progress = t;
                    match ev {
                        TranscriptEvent::LoopForward { .. } => stats.forwards += 1,
                        TranscriptEvent::LoopBack => stats.backs += 1,
                        TranscriptEvent::LocalForward { .. } => stats.local_forwards += 1,
                        TranscriptEvent::LocalBack => stats.local_backs += 1,
                        TranscriptEvent::Terminated => terminated = true,
                        _ => {}
                    }
                    if let Some(obs) = self.observer.as_mut() {
                        obs(t, ev);
                    }
                    if capture {
                        events.push((t, ev));
                    }
                    if !master_dead && master.feed(ev).is_err() {
                        // A faulted stream can stop decoding; keep
                        // simulating only if termination may still come.
                        master_dead = true;
                    }
                }
                if terminated {
                    end_tick = Some(t);
                    // Bounded settle: delayed stragglers may still be in
                    // flight, and a faulted network may never go quiet.
                    let mut settle = 0;
                    while !engine.is_quiet() && settle < 1_000 {
                        scratch.clear();
                        engine.tick(&mut scratch);
                        settle += 1;
                    }
                    break EpochStatus::Verified; // provisional — verified below
                }
                if master_dead {
                    break EpochStatus::Wedged;
                }
            };
            let spent = end_tick.unwrap_or_else(|| engine.tick_count());
            total_ticks += engine.tick_count();
            stats.dropped = engine.nodes().iter().map(|n| n.stat_dropped()).sum::<u64>();
            stats.fault_dropped = engine.fault_dropped();
            stats.fault_delayed = engine.fault_delayed();
            stats.retries = attempt;
            last_stats = stats;
            let (status, map) = match provisional {
                EpochStatus::Verified if !master_dead => {
                    match std::mem::take(&mut master).into_map() {
                        Ok(m) if m.verify_against(self.topo, root).is_ok() => {
                            (EpochStatus::Verified, Some(m))
                        }
                        // Terminated but wrong (or undecodable): the
                        // fault schedule corrupted the stream.
                        Ok(m) => (EpochStatus::Stale, Some(m)),
                        Err(_) => (EpochStatus::Stale, None),
                    }
                }
                EpochStatus::Verified => (EpochStatus::Stale, None),
                s => {
                    let m = if master_dead {
                        None
                    } else {
                        Some(std::mem::take(&mut master).into_partial_map())
                    };
                    (s, m)
                }
            };
            let edges = map.as_ref().map_or(0, NetworkMap::num_edges);
            attempts.push(AttemptOutcome {
                attempt,
                ticks: spent,
                status,
                edges_reported: edges,
            });
            if status == EpochStatus::Verified {
                let map = map.expect("verified attempts carry their map");
                return Ok(ResilientOutcome {
                    root,
                    status: EpochStatus::Verified,
                    map: Some(map),
                    attempts,
                    stats,
                    ticks: spent,
                    total_ticks,
                    events,
                });
            }
            if let Some(m) = map {
                if edges > 0 && best.as_ref().is_none_or(|b| edges > b.edges) {
                    best = Some(BestAttempt {
                        edges,
                        map: m,
                        stats,
                        ticks: spent,
                        events,
                    });
                }
            }
        }
        let retries = (attempts.len().saturating_sub(1)) as u32;
        Ok(match best {
            Some(mut b) => {
                b.stats.retries = retries;
                ResilientOutcome {
                    root,
                    status: EpochStatus::Partial,
                    map: Some(b.map),
                    attempts,
                    stats: b.stats,
                    ticks: b.ticks,
                    total_ticks,
                    events: b.events,
                }
            }
            None => ResilientOutcome {
                root,
                status: EpochStatus::Exhausted,
                map: None,
                attempts,
                stats: RunStats {
                    retries,
                    ..last_stats
                },
                ticks: 0,
                total_ticks,
                events: Vec::new(),
            },
        })
    }

    /// Run the protocol over a *changing* network — the paper's §1
    /// motivating scenario as one timeline.
    ///
    /// The schedule's mutations are applied to the live engine atomically
    /// between ticks ([`Engine::apply_topology`]): in-flight characters on
    /// removed wires vanish, affected processors' port awareness updates,
    /// and whatever protocol run is in progress continues on the changed
    /// network. Each mapping epoch then ends one of three ways:
    ///
    /// * **verified** — the root terminated and the decoded map matches
    ///   the live topology;
    /// * **stale** — it terminated but the map is outdated (or the
    ///   transcript no longer decodes): the master re-maps, via the RESET
    ///   flood when the network settled cleanly, via a full power-cycle
    ///   (fresh automata, same clock) when protocol state was lost;
    /// * **wedged** — the run lost its DFS token to a mutation (network
    ///   quiet without termination) or exhausted the epoch tick budget:
    ///   the master power-cycles and re-maps.
    ///
    /// The timeline ends when every scheduled mutation has been applied
    /// and re-mapped: each mutation's **remap latency** — global ticks
    /// from its application to the next verified map — is the headline
    /// metric of the returned [`RemapOutcome`]. Mutations whose kind has
    /// no valid candidate (dropping a wire from a directed ring) degrade
    /// to a label swap so a network event still happens; the outcome
    /// records the kind actually applied.
    ///
    /// Membership mutations change N mid-timeline: a `node-join` splices
    /// a fresh, passive automaton into the live engine (it powers on at
    /// the next tick), a `node-leave` removes one — never the root — and
    /// shifts higher ids down (the session tracks the root's id; see
    /// [`RemapOutcome::final_root`]). An epoch whose membership changed
    /// always re-maps via a full power-cycle: the RESET-flood shortcut
    /// assumes the automaton set that ran the last map still exists.
    ///
    /// [`Self::policy`] picks the remap trigger: lazy (default) lets a
    /// disturbed epoch run out; eager preempts it at the mutation
    /// ([`EpochStatus::Preempted`]), bounding remap latency by one fresh
    /// run.
    ///
    /// Deterministic across [`EngineMode`]s: all three produce identical
    /// epochs, transcripts and latencies.
    pub fn run_dynamic(mut self, schedule: &MutationSchedule) -> Result<RemapOutcome, GtdError> {
        self.check_preconditions()?;
        let capture = self.capture;
        let policy = self.policy;
        // The master's host: `node-leave` below the root shifts its id.
        let mut root = self.root;
        let mut topo = self.topo.clone();
        let mut engine = self.build_engine_on(&topo, root, 0);
        // Global timeline tick = `base` + the current engine's own count
        // (a power-cycle swaps the engine but not the clock).
        let mut base: u64 = 0;
        // Power-cycles re-seed an active fault plane (the fresh engine's
        // clock restarts, so the same seed would replay the same faults).
        let mut power_cycles: u32 = 0;
        // Fault counters are per-engine lifetimes; fold them into the
        // timeline totals whenever an engine is retired.
        let mut fault_dropped_total = 0u64;
        let mut fault_delayed_total = 0u64;
        // Consecutive epochs that failed with *no mutation landing
        // mid-epoch* — failures attributable to the fault plane alone.
        // Mutation-disturbed epochs are expected to fail and don't count.
        let mut fault_failures: u32 = 0;
        let mut epochs: Vec<EpochOutcome> = Vec::new();
        let mut muts: Vec<MutationOutcome> = schedule
            .iter()
            .map(|&sm| MutationOutcome {
                scheduled: sm,
                applied_at: None,
                applied_as: None,
                remap_latency: None,
            })
            .collect();
        let mut fired = 0usize;
        // Did membership change since this engine's automata were built?
        // If so, the next remap must power-cycle (lost members invalidate
        // the RESET-flood shortcut).
        let mut membership_dirty = false;
        let mut scratch = Vec::new();
        // Apply every mutation whose tick has arrived (between ticks).
        // Single-sourced: called at the timeline loop top and before each
        // epoch tick, so mutation bookkeeping cannot desynchronize.
        fn fire_due(
            muts: &mut [MutationOutcome],
            fired: &mut usize,
            topo: &mut Topology,
            engine: &mut Engine<ProtocolNode>,
            base: u64,
            root: &mut NodeId,
            membership_dirty: &mut bool,
        ) {
            while *fired < muts.len() && muts[*fired].scheduled.tick <= base + engine.tick_count() {
                if muts[*fired].scheduled.mutation.kind == MutationKind::NodeRestart {
                    // A node-restart is structurally the identity — no
                    // rewiring, no membership change — so it bypasses the
                    // topology plumbing entirely and power-cycles one live
                    // automaton in place: the victim goes dark for
                    // `RESTART_DOWNTIME` ticks, consumes (and drops)
                    // whatever arrives meanwhile, then rejoins with
                    // factory-state amnesia (no DFS mark, no RESET
                    // parity). The running epoch usually wedges and
                    // re-maps, exercising exactly the paper's §1.2.2
                    // transient-fault recovery story.
                    let victim =
                        restart_victim(topo, muts[*fired].scheduled.mutation.selector, *root);
                    let now = engine.tick_count();
                    engine.node_mut(victim).restart(now);
                    muts[*fired].applied_at = Some(base + engine.tick_count());
                    muts[*fired].applied_as = Some(MutationKind::NodeRestart);
                    *fired += 1;
                    continue;
                }
                let applied =
                    topo.apply_or_fallback_rooted(&muts[*fired].scheduled.mutation, *root);
                *topo = applied.topology;
                engine.apply_topology_with(topo, applied.membership, &mut |meta| {
                    ProtocolNode::new(&meta, StartBehavior::Passive)
                });
                *root = applied.membership.relabel(*root);
                if applied.membership != MembershipChange::None {
                    *membership_dirty = true;
                }
                muts[*fired].applied_at = Some(base + engine.tick_count());
                muts[*fired].applied_as = Some(applied.kind);
                *fired += 1;
            }
        }
        // Each mutation can spoil at most the epoch it lands in plus the
        // remap that follows; anything past this cap is a protocol bug.
        let max_epochs = 2 * muts.len() + 3;
        let mut first = true;
        loop {
            fire_due(
                &mut muts,
                &mut fired,
                &mut topo,
                &mut engine,
                base,
                &mut root,
                &mut membership_dirty,
            );
            if !first {
                let last_verified = matches!(
                    epochs.last(),
                    Some(e) if e.status == EpochStatus::Verified
                );
                let all_remapped = muts.iter().all(|m| m.remap_latency.is_some());
                if last_verified && fired == muts.len() && all_remapped {
                    break;
                }
                if last_verified && fired < muts.len() && engine.is_quiet() {
                    // Nothing to re-map yet: idle the quiet network to the
                    // next mutation tick (O(1) — quiet networks stay quiet).
                    let next_tick = muts[fired].scheduled.tick;
                    engine.skip_quiet_ticks(next_tick - (base + engine.tick_count()));
                    continue;
                }
                // (A verified epoch can leave mutation-era junk circulating
                // past the settle cap; the non-quiet case falls through so
                // the pristine check below power-cycles before idling.)
                if epochs.len() >= max_epochs {
                    if self.fault.is_active() {
                        // Graceful degradation instead of an error: the
                        // fault plane (not a protocol bug) kept spoiling
                        // epochs. Re-grade the last epoch by what its
                        // master salvaged and end the timeline.
                        if let Some(last) = epochs.last_mut() {
                            last.status = if last.map.as_ref().is_some_and(|m| m.num_edges() > 0) {
                                EpochStatus::Partial
                            } else {
                                EpochStatus::Exhausted
                            };
                        }
                        break;
                    }
                    return Err(GtdError::RemapDiverged {
                        epochs: epochs.len(),
                    });
                }
                // Begin a remap: the gentle RESET flood when the network
                // settled cleanly and its membership is intact, a
                // power-cycle otherwise.
                let can_restart = !membership_dirty
                    && engine.node(root).terminated()
                    && engine.signals_in_flight() == 0
                    && engine.nodes().iter().all(|n| n.snake_state_pristine());
                if can_restart {
                    engine.node_mut(root).master_restart();
                } else {
                    base += engine.tick_count();
                    fault_dropped_total += engine.fault_dropped();
                    fault_delayed_total += engine.fault_delayed();
                    power_cycles += 1;
                    engine = self.build_engine_on(&topo, root, power_cycles);
                    membership_dirty = false;
                }
            }
            first = false;

            // ---- one mapping epoch ----
            let epoch_start = base + engine.tick_count();
            let epoch_fired = fired;
            let budget = self.effective_budget(&topo);
            let mut master = MasterComputer::new();
            let mut master_dead = false;
            let mut events: Vec<(u64, TranscriptEvent)> = Vec::new();
            let (status, end_tick, map) = loop {
                fire_due(
                    &mut muts,
                    &mut fired,
                    &mut topo,
                    &mut engine,
                    base,
                    &mut root,
                    &mut membership_dirty,
                );
                let now = base + engine.tick_count();
                if policy == RemapPolicy::Eager && fired > epoch_fired {
                    // Monitoring saw a mutation land mid-epoch: cut the
                    // epoch short and re-map from scratch right away.
                    break (EpochStatus::Preempted, now, None);
                }
                if now - epoch_start >= budget {
                    break (EpochStatus::Wedged, now, None);
                }
                if engine.is_quiet() && !engine.node(root).terminated() {
                    // The DFS token died with a mutated wire: a quiet
                    // network can never terminate on its own.
                    break (EpochStatus::Wedged, now, None);
                }
                // Fast-forward deadline-driven lulls, capped at the next
                // scheduled mutation and the epoch budget boundary; after
                // a jump, loop back so due mutations fire (and eager
                // preemption triggers) before the next tick executes.
                let cap = muts
                    .get(fired)
                    .map_or(u64::MAX, |m| m.scheduled.tick)
                    .min(epoch_start.saturating_add(budget));
                if engine.skip_lull(cap.saturating_sub(base)) > 0 {
                    continue;
                }
                scratch.clear();
                engine.tick(&mut scratch);
                let t = base + engine.tick_count();
                let mut terminated = false;
                for (nid, ev) in scratch.drain(..) {
                    if nid != root {
                        // Mutation-era stray (e.g. a BCA probe event from a
                        // disturbed endpoint) — not part of the transcript.
                        continue;
                    }
                    if capture {
                        events.push((t, ev));
                    }
                    if let Some(obs) = self.observer.as_mut() {
                        obs(t, ev);
                    }
                    if ev == TranscriptEvent::Terminated {
                        terminated = true;
                    }
                    if !master_dead && master.feed(ev).is_err() {
                        master_dead = true;
                    }
                }
                if terminated {
                    // Drain to quiescence (bounded: a mutation-disturbed
                    // network may circulate junk forever — that forces a
                    // power-cycle before the next epoch anyway).
                    let mut settle = 0;
                    while !engine.is_quiet() && settle < 1_000 {
                        scratch.clear();
                        engine.tick(&mut scratch);
                        settle += 1;
                    }
                    if master_dead {
                        break (EpochStatus::Stale, t, None);
                    }
                    match std::mem::take(&mut master).into_map() {
                        Ok(m) => {
                            let status = if m.verify_against(&topo, root).is_ok() {
                                EpochStatus::Verified
                            } else {
                                EpochStatus::Stale
                            };
                            break (status, t, Some(m));
                        }
                        Err(_) => break (EpochStatus::Stale, t, None),
                    }
                }
                if master_dead {
                    // The transcript stopped decoding mid-run: the epoch
                    // can never yield a map — cut it short. The root never
                    // terminated, so this is a wedge (lost protocol
                    // state), not a stale termination.
                    break (EpochStatus::Wedged, t, None);
                }
            };
            if status == EpochStatus::Verified {
                for m in muts.iter_mut() {
                    if m.remap_latency.is_none() {
                        if let Some(at) = m.applied_at {
                            m.remap_latency = Some(end_tick.saturating_sub(at));
                        }
                    }
                }
            }
            // Wedge-retry accounting under an active fault plane: only
            // epochs that failed with no mutation landing mid-run count
            // against the retry budget (a mutation-disturbed epoch is
            // *supposed* to fail; the remap that follows is the fix).
            let epoch_had_mutation = fired > epoch_fired;
            match status {
                EpochStatus::Verified => fault_failures = 0,
                EpochStatus::Preempted => {}
                _ if epoch_had_mutation => fault_failures = 0,
                _ => fault_failures += 1,
            }
            if self.fault.is_active() && fault_failures > self.max_retries {
                // Retries exhausted: end the timeline with whatever the
                // last master salvaged instead of power-cycling forever.
                let salvage = map.or_else(|| {
                    if master_dead {
                        None
                    } else {
                        Some(std::mem::take(&mut master).into_partial_map())
                    }
                });
                let (status, map) = match salvage {
                    Some(m) if m.num_edges() > 0 => (EpochStatus::Partial, Some(m)),
                    _ => (EpochStatus::Exhausted, None),
                };
                epochs.push(EpochOutcome {
                    start_tick: epoch_start,
                    end_tick,
                    status,
                    nodes: topo.num_nodes(),
                    map,
                    events,
                });
                break;
            }
            epochs.push(EpochOutcome {
                start_tick: epoch_start,
                end_tick,
                status,
                nodes: topo.num_nodes(),
                map,
                events,
            });
        }
        Ok(RemapOutcome {
            root: self.root,
            final_root: root,
            epochs,
            mutations: muts,
            total_ticks: base + engine.tick_count(),
            final_topology: topo,
            fault_dropped: fault_dropped_total + engine.fault_dropped(),
            fault_delayed: fault_delayed_total + engine.fault_delayed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtd_netsim::{generators, NodeId, TopologyBuilder};

    #[test]
    fn session_defaults_match_protocol_contract() {
        let topo = generators::ring(5);
        let out = GtdSession::on(&topo).run().unwrap();
        out.map.verify_against(&topo, NodeId(0)).unwrap();
        assert_eq!(out.stats.edges_reported(), topo.num_edges());
        assert!(out.clean_at_end);
        assert!(out.all_visited);
        assert_eq!(out.root, NodeId(0));
        // tick-stamped transcript brackets the run
        assert!(matches!(
            out.events.first(),
            Some(&(_, TranscriptEvent::Start))
        ));
        assert!(matches!(
            out.events.last(),
            Some(&(_, TranscriptEvent::Terminated))
        ));
    }

    #[test]
    fn two_cycle_maps_exactly() {
        // the smallest legal network: one bidirectional pair (§1.1)
        let topo = generators::ring(2);
        let run = GtdSession::on(&topo).mode(EngineMode::Dense).run().unwrap();
        run.map.verify_against(&topo, NodeId(0)).unwrap();
        assert_eq!(run.map.num_nodes(), 2);
        assert_eq!(run.map.num_edges(), 2);
        assert_eq!(run.stats.edges_reported(), 2);
        assert!(run.clean_at_end, "Lemma 4.2 violated");
        assert!(run.all_visited);
    }

    #[test]
    fn non_default_root_maps_exactly() {
        let topo = generators::random_sc(18, 3, 4);
        for root in [1u32, 9, 17] {
            let out = GtdSession::on(&topo).root(NodeId(root)).run().unwrap();
            out.map.verify_against(&topo, NodeId(root)).unwrap();
            assert!(out.clean_at_end);
        }
    }

    #[test]
    fn budget_exhaustion_is_structured() {
        let topo = generators::ring(12);
        match GtdSession::on(&topo).tick_budget(25).run() {
            Err(GtdError::BudgetExhausted { budget: 25, ticks }) => assert!(ticks >= 25),
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn not_strongly_connected_is_rejected_up_front() {
        // two 2-cycles bridged one way: valid wiring, not strongly connected
        let mut b = TopologyBuilder::new(4, 2);
        b.connect_auto(NodeId(0), NodeId(1)).unwrap();
        b.connect_auto(NodeId(1), NodeId(0)).unwrap();
        b.connect_auto(NodeId(2), NodeId(3)).unwrap();
        b.connect_auto(NodeId(3), NodeId(2)).unwrap();
        b.connect_auto(NodeId(1), NodeId(2)).unwrap();
        let topo = b.build().unwrap();
        assert_eq!(
            GtdSession::on(&topo).run().unwrap_err(),
            GtdError::Precondition(PreconditionViolation::NotStronglyConnected)
        );
    }

    #[test]
    fn non_runnable_start_behaviour_is_rejected_up_front() {
        // A passive root would never emit `Terminated` and would burn the
        // whole default budget; the session rejects it before simulating.
        let topo = generators::ring(4);
        assert_eq!(
            GtdSession::on(&topo)
                .start(StartBehavior::Passive)
                .run()
                .unwrap_err(),
            GtdError::Precondition(PreconditionViolation::StartNotRunnable(
                StartBehavior::Passive
            ))
        );
    }

    #[test]
    fn bogus_root_is_rejected_up_front() {
        let topo = generators::ring(3);
        assert_eq!(
            GtdSession::on(&topo).root(NodeId(99)).run().unwrap_err(),
            GtdError::Precondition(PreconditionViolation::RootOutOfRange {
                root: NodeId(99),
                nodes: 3
            })
        );
    }

    #[test]
    fn observer_streams_the_whole_transcript() {
        let topo = generators::ring(4);
        let mut streamed = Vec::new();
        let out = GtdSession::on(&topo)
            .observer(|t, e| streamed.push((t, e)))
            .run()
            .unwrap();
        assert_eq!(streamed, out.events);
    }

    #[test]
    fn capture_off_still_produces_the_map() {
        let topo = generators::random_sc(16, 3, 2);
        let out = GtdSession::on(&topo)
            .capture_transcript(false)
            .run()
            .unwrap();
        assert!(out.events.is_empty());
        assert_eq!(out.phases, PhaseBreakdown::default());
        out.map.verify_against(&topo, NodeId(0)).unwrap();
    }

    #[test]
    fn phase_breakdown_covers_most_of_the_run() {
        let topo = generators::ring(8);
        let out = GtdSession::on(&topo).run().unwrap();
        assert_eq!(out.phases.rcas, out.stats.rcas());
        assert!(out.phases.total() <= out.ticks);
        assert!(
            out.phases.total() * 10 >= out.ticks * 8,
            "breakdown should cover >= 80% of the run: {} vs {}",
            out.phases.total(),
            out.ticks
        );
    }

    #[test]
    fn repeated_rounds_reproduce_the_map() {
        let topo = generators::random_sc(16, 3, 21);
        let outs = GtdSession::on(&topo)
            .mode(EngineMode::Dense)
            .run_repeated(2)
            .unwrap();
        assert_eq!(outs.len(), 2);
        for o in &outs {
            assert!(o.clean_at_end);
            o.map.verify_against(&topo, NodeId(0)).unwrap();
        }
    }

    #[test]
    fn dynamic_run_with_empty_schedule_matches_a_static_run() {
        use gtd_netsim::MutationSchedule;
        let topo = generators::random_sc(14, 3, 6);
        let plain = GtdSession::on(&topo).run().unwrap();
        let dynamic = GtdSession::on(&topo)
            .run_dynamic(&MutationSchedule::new())
            .unwrap();
        assert_eq!(dynamic.epochs.len(), 1);
        assert_eq!(dynamic.epochs[0].status, EpochStatus::Verified);
        assert_eq!(dynamic.epochs[0].map.as_ref(), Some(&plain.map));
        assert_eq!(dynamic.initial_ticks(), plain.ticks);
        assert_eq!(dynamic.epochs[0].events, plain.events);
        assert!(dynamic.mutations.is_empty());
        assert_eq!(dynamic.final_topology, topo);
        assert!(dynamic.final_verified());
    }

    #[test]
    fn mid_run_mutation_is_detected_and_remapped() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(16, 3, 3);
        // t=40 lands well inside the first mapping run
        let schedule = MutationSchedule::new().with(
            40,
            TopologyMutation {
                kind: MutationKind::RewirePort,
                selector: 2,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert!(out.final_verified());
        assert_eq!(out.mutations.len(), 1);
        let m = &out.mutations[0];
        assert_eq!(m.applied_at, Some(40));
        assert_eq!(m.applied_as, Some(MutationKind::RewirePort));
        let latency = m.remap_latency.expect("remap latency populated");
        assert!(latency > 0);
        // the final epoch's map matches the mutated network, not the base
        let final_map = out.epochs.last().unwrap().map.as_ref().unwrap();
        final_map
            .verify_against(&out.final_topology, NodeId(0))
            .unwrap();
        assert_ne!(out.final_topology, topo);
        assert!(final_map.verify_against(&topo, NodeId(0)).is_err());
    }

    #[test]
    fn post_termination_mutation_uses_the_reset_flood_remap() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(12, 3, 9);
        let first = GtdSession::on(&topo).run().unwrap();
        // schedule far past the first run: the network idles, then remaps
        let tick = first.ticks + 5_000;
        let schedule = MutationSchedule::new().with(
            tick,
            TopologyMutation {
                kind: MutationKind::AddEdge,
                selector: 7,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert_eq!(out.epochs.len(), 2, "one clean map, one clean remap");
        assert_eq!(out.epochs[0].status, EpochStatus::Verified);
        assert_eq!(out.epochs[1].status, EpochStatus::Verified);
        assert_eq!(out.mutations[0].applied_at, Some(tick));
        // the remap began at the mutation, so latency = remap epoch ticks
        assert_eq!(
            out.mutations[0].remap_latency,
            Some(out.epochs[1].end_tick - tick)
        );
        assert!(out.total_ticks >= tick);
    }

    #[test]
    fn inapplicable_mutations_fall_back_to_a_label_swap() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        // a directed ring cannot lose a wire: every edge is a bridge
        let topo = generators::ring(8);
        let schedule = MutationSchedule::new().with(
            30,
            TopologyMutation {
                kind: MutationKind::DropEdge,
                selector: 3,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert!(out.final_verified());
        assert_eq!(out.mutations[0].applied_as, Some(MutationKind::SwapLabels));
        assert!(out.mutations[0].remap_latency.is_some());
        assert_eq!(out.final_topology.num_edges(), topo.num_edges());
    }

    #[test]
    fn node_join_grows_the_network_and_is_remapped() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(14, 3, 8);
        let schedule = MutationSchedule::new().with(
            50,
            TopologyMutation {
                kind: MutationKind::NodeJoin,
                selector: 2,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert!(out.final_verified());
        assert_eq!(out.final_topology.num_nodes(), 15);
        assert_eq!(out.final_root, NodeId(0));
        let nodes = out.epoch_nodes();
        assert_eq!(*nodes.last().unwrap(), 15);
        out.epochs
            .last()
            .unwrap()
            .map
            .as_ref()
            .unwrap()
            .verify_against(&out.final_topology, NodeId(0))
            .unwrap();
    }

    #[test]
    fn node_leave_shrinks_the_network_and_tracks_the_root() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(14, 3, 8);
        let schedule = MutationSchedule::new().with(
            60,
            TopologyMutation {
                kind: MutationKind::NodeLeave,
                selector: 0,
            },
        );
        // a high root exercises the id shift when a lower node leaves
        let out = GtdSession::on(&topo)
            .root(NodeId(13))
            .run_dynamic(&schedule)
            .unwrap();
        assert!(out.final_verified());
        assert_eq!(out.final_topology.num_nodes(), 13);
        assert_eq!(out.root, NodeId(13));
        let m = &out.mutations[0];
        assert_eq!(m.applied_as, Some(MutationKind::NodeLeave));
        assert!(m.remap_latency.is_some());
        // the departed node's id was below the root, so the root shifted
        assert_eq!(out.final_root, NodeId(12));
        out.epochs
            .last()
            .unwrap()
            .map
            .as_ref()
            .unwrap()
            .verify_against(&out.final_topology, out.final_root)
            .unwrap();
    }

    #[test]
    fn membership_changes_force_a_power_cycle_remap() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(12, 3, 9);
        let first = GtdSession::on(&topo).run().unwrap();
        // schedule far past the first run: post-termination, where a
        // wire-level mutation would take the RESET-flood shortcut
        let tick = first.ticks + 5_000;
        let schedule = MutationSchedule::new().with(
            tick,
            TopologyMutation {
                kind: MutationKind::NodeJoin,
                selector: 1,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert_eq!(out.epochs.len(), 2);
        assert_eq!(out.epochs[1].status, EpochStatus::Verified);
        assert_eq!(out.epochs[1].nodes, 13);
        // a power-cycled remap re-emits Start from a fresh automaton set;
        // its transcript begins at the epoch's own start tick
        assert!(out.epochs[1].events.first().unwrap().0 >= tick);
        assert!(out.final_verified());
    }

    #[test]
    fn eager_policy_preempts_a_disturbed_epoch() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::ring(16);
        let schedule = MutationSchedule::new().with(
            100,
            TopologyMutation {
                kind: MutationKind::NodeLeave,
                selector: 3,
            },
        );
        let eager = GtdSession::on(&topo)
            .policy(RemapPolicy::Eager)
            .run_dynamic(&schedule)
            .unwrap();
        assert!(eager.final_verified());
        assert_eq!(eager.epochs[0].status, EpochStatus::Preempted);
        assert!(eager.epochs[0].map.is_none());
        let lazy = GtdSession::on(&topo)
            .policy(RemapPolicy::Lazy)
            .run_dynamic(&schedule)
            .unwrap();
        assert!(lazy.final_verified());
        assert_ne!(lazy.epochs[0].status, EpochStatus::Preempted);
        // eager bounds the remap latency by one fresh run; lazy pays the
        // disturbed epoch's tail on top
        let (e, l) = (
            eager.mutations[0].remap_latency.unwrap(),
            lazy.mutations[0].remap_latency.unwrap(),
        );
        assert!(e <= l, "eager {e} vs lazy {l}");
    }

    #[test]
    fn remap_policy_names_round_trip() {
        for p in RemapPolicy::ALL {
            assert_eq!(p.name().parse::<RemapPolicy>().unwrap(), p);
        }
        assert!("eventually".parse::<RemapPolicy>().is_err());
        assert_eq!(RemapPolicy::default(), RemapPolicy::Lazy);
    }

    #[test]
    fn resilient_without_faults_matches_a_plain_run() {
        let topo = generators::random_sc(14, 3, 6);
        let plain = GtdSession::on(&topo).run().unwrap();
        let res = GtdSession::on(&topo).run_resilient().unwrap();
        assert!(res.verified());
        assert_eq!(res.attempts.len(), 1, "no plane, no retries");
        assert_eq!(res.retries(), 0);
        assert_eq!(res.map.as_ref(), Some(&plain.map));
        assert_eq!(res.ticks, plain.ticks);
        assert_eq!(res.events, plain.events);
        assert_eq!(res.stats.fault_dropped, 0);
        assert_eq!(res.stats.fault_delayed, 0);
        assert_eq!(res.stats.retries, 0);
    }

    #[test]
    fn constant_delay_stretches_the_run_but_still_verifies() {
        // A degenerate delay span shifts every character uniformly: FIFO
        // and stream contiguity are preserved, so the protocol merely
        // runs slower — no retries, exact map.
        let topo = generators::ring(10);
        let plain = GtdSession::on(&topo).run().unwrap();
        let res = GtdSession::on(&topo)
            .faults(FaultPlane {
                loss: 0.0,
                delay_min: 2,
                delay_max: 2,
                seed: 5,
            })
            .run_resilient()
            .unwrap();
        assert!(
            res.verified(),
            "uniform shift must verify: {:?}",
            res.status
        );
        res.map
            .as_ref()
            .unwrap()
            .verify_against(&topo, NodeId(0))
            .unwrap();
        assert_eq!(res.stats.fault_dropped, 0);
        assert!(res.stats.fault_delayed > 0);
        assert!(res.ticks > plain.ticks, "delay must cost wall-clock ticks");
    }

    #[test]
    fn lossy_resilient_runs_are_structured_and_deterministic() {
        let topo = generators::ring(16);
        let plane = FaultPlane {
            loss: 0.05,
            delay_min: 0,
            delay_max: 0,
            seed: 7,
        };
        let run = || GtdSession::on(&topo).faults(plane).run_resilient().unwrap();
        let a = run();
        assert_eq!(a, run(), "faulted sessions replay byte-identically");
        assert!(matches!(
            a.status,
            EpochStatus::Verified | EpochStatus::Partial | EpochStatus::Exhausted
        ));
        assert_eq!(a.stats.retries as usize + 1, a.attempts.len());
        assert!(a.stats.fault_dropped > 0, "a 5% plane must bite");
        match &a.map {
            Some(m) if a.verified() => m.verify_against(&topo, NodeId(0)).unwrap(),
            Some(m) => assert!(m.num_edges() > 0, "partial maps carry real edges"),
            None => assert_eq!(a.status, EpochStatus::Exhausted),
        }
    }

    #[test]
    fn faulted_outcomes_are_identical_across_engine_modes() {
        let topo = generators::random_sc(12, 3, 5);
        let plane = FaultPlane {
            loss: 0.04,
            delay_min: 1,
            delay_max: 2,
            seed: 11,
        };
        let run = |mode| {
            GtdSession::on(&topo)
                .mode(mode)
                .faults(plane)
                .run_resilient()
                .unwrap()
        };
        let d = run(EngineMode::Dense);
        assert_eq!(d, run(EngineMode::Sparse), "dense vs sparse");
        assert_eq!(d, run(EngineMode::Parallel), "dense vs parallel");
    }

    #[test]
    fn total_loss_exhausts_every_attempt() {
        let topo = generators::ring(6);
        let res = GtdSession::on(&topo)
            .faults(FaultPlane {
                loss: 1.0,
                delay_min: 0,
                delay_max: 0,
                seed: 1,
            })
            .max_retries(2)
            .run_resilient()
            .unwrap();
        assert_eq!(res.status, EpochStatus::Exhausted);
        assert!(res.map.is_none());
        assert_eq!(res.attempts.len(), 3, "first try + two retries");
        assert_eq!(res.retries(), 2);
        assert_eq!(res.stats.retries, 2);
        assert!(res.attempts.iter().all(|a| a.status == EpochStatus::Wedged));
        assert!(res.stats.fault_dropped > 0);
    }

    #[test]
    fn node_restart_mutation_is_survived_and_remapped() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(14, 3, 8);
        // t=60 lands mid-epoch: the victim goes dark with amnesia, the
        // disturbed epoch fails and the master re-maps.
        let schedule = MutationSchedule::new().with(
            60,
            TopologyMutation {
                kind: MutationKind::NodeRestart,
                selector: 3,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert!(out.final_verified());
        assert_eq!(out.final_topology, topo, "a restart rewires nothing");
        let m = &out.mutations[0];
        assert_eq!(m.applied_at, Some(60));
        assert_eq!(m.applied_as, Some(MutationKind::NodeRestart));
        assert!(m.remap_latency.is_some());
        assert_eq!(out.fault_dropped, 0, "no wire plane was configured");
    }

    #[test]
    fn node_restart_after_termination_forces_a_fresh_map() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(12, 3, 9);
        let first = GtdSession::on(&topo).run().unwrap();
        // Post-termination restart: the victim misses the RESET flood
        // while dark (parity desync) — the session must still converge.
        let tick = first.ticks + 5_000;
        let schedule = MutationSchedule::new().with(
            tick,
            TopologyMutation {
                kind: MutationKind::NodeRestart,
                selector: 5,
            },
        );
        let out = GtdSession::on(&topo).run_dynamic(&schedule).unwrap();
        assert!(out.final_verified());
        assert!(out.epochs.len() >= 2, "the restart must trigger a remap");
        assert_eq!(out.mutations[0].applied_as, Some(MutationKind::NodeRestart));
        assert_eq!(out.final_topology, topo);
    }

    #[test]
    fn heavily_faulted_dynamic_timeline_degrades_gracefully() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        // loss=0.6 on a ring destroys every mapping attempt; the timeline
        // must end Ok with a structured degraded status, never hang or
        // return RemapDiverged.
        let topo = generators::ring(8);
        let schedule = MutationSchedule::new().with(
            50,
            TopologyMutation {
                kind: MutationKind::SwapLabels,
                selector: 1,
            },
        );
        let out = GtdSession::on(&topo)
            .faults(FaultPlane {
                loss: 0.6,
                delay_min: 0,
                delay_max: 0,
                seed: 3,
            })
            .max_retries(1)
            .run_dynamic(&schedule)
            .unwrap();
        assert!(out.final_degraded(), "expected graceful degradation");
        let last = out.epochs.last().unwrap();
        assert!(matches!(
            last.status,
            EpochStatus::Partial | EpochStatus::Exhausted
        ));
        if last.status == EpochStatus::Partial {
            assert!(last.map.as_ref().unwrap().num_edges() > 0);
        }
        assert!(out.fault_dropped > 0);
    }

    #[test]
    fn dynamic_runs_are_identical_across_engine_modes() {
        use gtd_netsim::{MutationKind, MutationSchedule, TopologyMutation};
        let topo = generators::random_sc(16, 3, 11);
        let schedule = MutationSchedule::new()
            .with(
                60,
                TopologyMutation {
                    kind: MutationKind::DropEdge,
                    selector: 1,
                },
            )
            .with(
                200,
                TopologyMutation {
                    kind: MutationKind::AddEdge,
                    selector: 4,
                },
            );
        let runs: Vec<RemapOutcome> = [EngineMode::Dense, EngineMode::Sparse, EngineMode::Parallel]
            .into_iter()
            .map(|mode| {
                GtdSession::on(&topo)
                    .mode(mode)
                    .run_dynamic(&schedule)
                    .unwrap()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "dense vs sparse");
        assert_eq!(runs[0], runs[2], "dense vs parallel");
        assert!(runs[0].final_verified());
    }
}
