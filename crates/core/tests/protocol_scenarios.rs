//! Hand-verifiable protocol scenarios: exact tick counts and transcript
//! contents on networks small enough to trace on paper (the 2-cycle and
//! 3-ring traces in the module docs of `gtd_core::node` were derived by
//! hand; these tests pin them).

use gtd_core::events::TranscriptEvent;
use gtd_core::{
    run_single_bca, run_single_rca, GtdSession, MasterComputer, ProtocolNode, StartBehavior,
};
use gtd_netsim::{generators, Engine, EngineMode, NodeId, Port, TopologyBuilder};
use gtd_snake::Hop;

/// Collect (tick, event) pairs from a full GTD run — the session captures
/// the tick-stamped transcript directly.
fn traced_gtd(topo: &gtd_netsim::Topology) -> Vec<(u64, TranscriptEvent)> {
    GtdSession::on(topo)
        .mode(EngineMode::Dense)
        .run()
        .expect("GTD terminates")
        .events
}

#[test]
fn two_cycle_transcript_is_exactly_the_hand_trace() {
    use TranscriptEvent::*;
    let topo = generators::ring(2);
    let events: Vec<TranscriptEvent> = traced_gtd(&topo).into_iter().map(|(_, e)| e).collect();
    let hop = Hop::new(Port(0), Port(0));
    assert_eq!(
        events,
        vec![
            Start,
            // n1's fresh-visit FORWARD RCA
            IgHop(hop),
            IgTail,
            IdHop(hop),
            IdTail,
            LoopForward {
                out_port: Port(0),
                in_port: Port(0)
            },
            // n1 explores its out-port; the token re-enters the root
            LocalForward {
                out_port: Port(0),
                in_port: Port(0)
            },
            // the root bounces via BCA; n1 reports BACK
            IgHop(hop),
            IgTail,
            IdHop(hop),
            IdTail,
            LoopBack,
            // n1 exhausted; BCA returns the token to the root
            LocalBack,
            Terminated,
        ]
    );
}

#[test]
fn three_ring_paths_have_expected_lengths() {
    // ring 0 -> 1 -> 2 -> 0: n1 is 1 hop from root (path root->n1 len 1,
    // n1->root len 2), n2 is 2 hops out, 1 back.
    let topo = generators::ring(3);
    let trace = traced_gtd(&topo);
    // decode and assert the name paths via the master computer
    let mut master = MasterComputer::new();
    for &(_, ev) in &trace {
        master.feed(ev).unwrap();
    }
    let map = master.into_map().unwrap();
    assert_eq!(map.num_nodes(), 3);
    let mut lens: Vec<usize> = map.paths.iter().map(|p| p.len()).collect();
    lens.sort_unstable();
    assert_eq!(lens, vec![0, 1, 2], "root, n1 at 1 hop, n2 at 2 hops");
    map.verify_against(&topo, NodeId(0)).unwrap();
}

#[test]
fn rca_on_two_cycle_takes_constant_ticks() {
    // The smallest possible RCA: loop length 2. The exact constant pins
    // the speed implementation (changing any dwell breaks this loudly).
    let topo = generators::ring(2);
    let p1 = run_single_rca(&topo, NodeId(1), EngineMode::Dense).unwrap();
    assert!(p1.clean_at_end);
    assert_eq!(p1.dist_to_root + p1.dist_from_root, 2);
    let p2 = run_single_rca(&topo, NodeId(1), EngineMode::Sparse).unwrap();
    assert_eq!(p1.ticks, p2.ticks, "modes agree on the exact tick count");
    assert!(
        (15..=40).contains(&p1.ticks),
        "2-cycle RCA should take a few dozen ticks, got {}",
        p1.ticks
    );
}

#[test]
fn bca_on_two_cycle_delivers_and_cleans() {
    let topo = generators::ring(2);
    let probe = run_single_bca(&topo, NodeId(1), Port(0), EngineMode::Dense).unwrap();
    assert_eq!(probe.loop_len, 2);
    assert!(probe.clean_at_end);
    assert!(probe.ticks_initiator < probe.ticks_delivered);
    assert!(
        probe.ticks_delivered < 50,
        "tiny loop, tiny cost: {}",
        probe.ticks_delivered
    );
}

#[test]
fn rca_ticks_exactly_linear_on_ring() {
    // Beyond O(D): on the ring the RCA cost is *exactly* affine in n —
    // measure the increment and check it is constant.
    let t: Vec<u64> = [4usize, 6, 8, 10]
        .iter()
        .map(|&n| {
            run_single_rca(&generators::ring(n), NodeId(1), EngineMode::Sparse)
                .unwrap()
                .ticks
        })
        .collect();
    let d1 = t[1] - t[0];
    let d2 = t[2] - t[1];
    let d3 = t[3] - t[2];
    assert_eq!(d1, d2, "non-affine RCA cost: {t:?}");
    assert_eq!(d2, d3, "non-affine RCA cost: {t:?}");
    assert_eq!(d1 % 2, 0, "two extra hops per ring step");
}

#[test]
fn probe_roles_can_be_assigned_anywhere() {
    // B in the middle of a line, message crossing the middle edge backwards.
    let topo = generators::line_bidi(9);
    // node 4's in-port fed by node 3: find it
    let (via, _) = topo
        .in_edges(NodeId(4))
        .find(|(_, ep)| ep.node == NodeId(3))
        .expect("wire 3 -> 4 exists");
    let probe = run_single_bca(&topo, NodeId(4), via, EngineMode::Dense).unwrap();
    assert!(probe.clean_at_end);
    // loop is 4 -> 3 (1 hop via the reverse edge!) .. shortest 4~>3 is direct
    assert_eq!(probe.loop_len, 2);
}

#[test]
fn gtd_root_with_high_degree_terminates() {
    // Root with the maximum degree: complete bidirectional K5.
    let topo = generators::complete_bidi(5);
    let run = GtdSession::on(&topo).run().unwrap();
    run.map.verify_against(&topo, NodeId(0)).unwrap();
    assert_eq!(run.map.num_edges(), 20);
}

#[test]
fn long_thin_network_terminates() {
    // Worst-case diameter vs N: a 40-node directed ring.
    let topo = generators::ring(40);
    let run = GtdSession::on(&topo).run().unwrap();
    run.map.verify_against(&topo, NodeId(0)).unwrap();
    assert!(run.clean_at_end);
}

#[test]
fn asymmetric_distances_handled() {
    // d(A, root) very different from d(root, A): ring + one shortcut back.
    let mut b = TopologyBuilder::new(12, 2);
    for u in 0..12u32 {
        b.connect_auto(NodeId(u), NodeId((u + 1) % 12)).unwrap();
    }
    b.connect_auto(NodeId(3), NodeId(0)).unwrap(); // shortcut 3 -> 0
    let topo = b.build().unwrap();
    let probe = run_single_rca(&topo, NodeId(3), EngineMode::Dense).unwrap();
    assert_eq!(probe.dist_to_root, 1, "via the shortcut");
    assert_eq!(probe.dist_from_root, 3);
    assert!(probe.clean_at_end);
    let run = GtdSession::on(&topo).run().unwrap();
    run.map.verify_against(&topo, NodeId(0)).unwrap();
}

#[test]
#[should_panic(expected = "root communicates with itself")]
fn rca_from_root_is_rejected() {
    let topo = generators::ring(3);
    let _ = run_single_rca(&topo, NodeId(0), EngineMode::Dense);
}

#[test]
#[should_panic(expected = "GtdRoot behaviour belongs on the root")]
fn gtd_start_on_non_root_is_rejected() {
    let topo = generators::ring(3);
    let _ = Engine::new(&topo, EngineMode::Dense, |meta| {
        // wrongly give every node the root behaviour
        ProtocolNode::new(&meta, StartBehavior::GtdRoot)
    });
}

#[test]
fn transcript_tick_spacing_shows_speed_one() {
    // Consecutive IgHop events at the root arrive 1 tick apart (stream
    // spacing), and the Ig->Id gap spans the OG+ID round trip.
    let topo = generators::ring(4);
    let trace = traced_gtd(&topo);
    let ig_ticks: Vec<u64> = trace
        .iter()
        .filter_map(|&(t, e)| matches!(e, TranscriptEvent::IgHop(_)).then_some(t))
        .collect();
    // first RCA: A = n1, path n1->root has 3 hops on the 4-ring
    assert!(ig_ticks.len() >= 3);
    assert_eq!(ig_ticks[1] - ig_ticks[0], 1, "stream chars 1 tick apart");
    assert_eq!(ig_ticks[2] - ig_ticks[1], 1);
}

#[test]
fn stats_counters_census() {
    let topo = generators::random_sc(20, 3, 13);
    let mut engine = gtd_core::runner::build_gtd_engine(&topo, EngineMode::Sparse);
    let mut events = Vec::new();
    loop {
        events.clear();
        engine.tick(&mut events);
        if events
            .iter()
            .any(|&(_, e)| e == TranscriptEvent::Terminated)
        {
            break;
        }
        assert!(engine.tick_count() < 5_000_000);
    }
    let e = topo.num_edges() as u64;
    let rcas: u64 = engine.nodes().iter().map(|n| n.stat_rcas_started).sum();
    let bcas: u64 = engine.nodes().iter().map(|n| n.stat_bcas_started).sum();
    // one FORWARD RCA per edge + one BACK RCA per BCA-returned token,
    // minus the root's local transcriptions; one BCA per edge.
    assert_eq!(bcas, e, "exactly one BCA per edge");
    assert!(rcas <= 2 * e, "at most two RCAs per edge");
    assert!(rcas >= e / 2, "at least the non-root FORWARDs");
}

#[test]
fn remapping_extension_reproduces_identical_maps() {
    // The dynamic-remapping extension: map, RESET-flood, map again — three
    // times on one live network, identical results each round.
    for seed in [1u64, 8] {
        let topo = generators::random_sc(18, 3, seed);
        let runs = GtdSession::on(&topo).run_repeated(3).unwrap();
        assert_eq!(runs.len(), 3);
        for r in &runs {
            r.map.verify_against(&topo, NodeId(0)).unwrap();
            assert!(r.clean_at_end);
        }
        // determinism: each round costs the same (the RESET flood itself
        // runs concurrently with the first RCA, so round 2+ may differ from
        // round 1 by at most the restart tick)
        assert_eq!(
            runs[1].ticks, runs[2].ticks,
            "steady-state rounds identical"
        );
        let stream = |i: usize| runs[i].event_stream().collect::<Vec<_>>();
        assert_eq!(stream(0), stream(1));
    }
}

#[test]
fn remapping_works_across_modes() {
    let topo = generators::ring(6);
    let a = GtdSession::on(&topo)
        .mode(EngineMode::Dense)
        .run_repeated(2)
        .unwrap();
    let b = GtdSession::on(&topo)
        .mode(EngineMode::Sparse)
        .run_repeated(2)
        .unwrap();
    // tick-stamped equality: the modes agree on *when* every transcript
    // symbol of the second round is emitted, not just the symbol order
    assert_eq!(a[1].events, b[1].events);
}
