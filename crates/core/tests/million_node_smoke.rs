//! Million-node smoke at debug-feasible scale: `random-sc:n=100000`
//! must build under the CSR/SoA layout, sparse and parallel must agree
//! byte-for-byte on a bounded flood window, and steady-state ticks must
//! not allocate once a node's dwell slabs are warm.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one test: any neighbour would race the counter.

use gtd_core::events::TranscriptEvent;
use gtd_core::{ProtocolNode, StartBehavior};
use gtd_netsim::{Engine, EngineMode, NodeId, TopologySpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every heap allocation (including `realloc` growth) made by the
/// test process. Frees are uncounted: the invariant under test is "no
/// new memory in steady state", not "no memory".
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// One bounded IG-flood window: build the engine, run `warm + measured`
/// ticks, and return the transcript bytes of the warm-up window plus the
/// per-tick allocation counts over the measured ticks.
fn flood_window(
    topo: &gtd_netsim::Topology,
    mode: EngineMode,
    warm: u64,
    measured: u64,
) -> (Vec<u8>, Vec<usize>) {
    let mut engine = Engine::new(topo, mode, |meta| {
        let start = if meta.id == NodeId(1) {
            StartBehavior::SingleRca
        } else {
            StartBehavior::Passive
        };
        ProtocolNode::new(&meta, start)
    });
    let mut transcript = Vec::new();
    let mut events: Vec<(NodeId, TranscriptEvent)> = Vec::new();
    let mut scratch = String::new();
    for t in 0..warm {
        engine.tick(&mut events);
        use std::fmt::Write;
        for (id, e) in events.drain(..) {
            scratch.clear();
            writeln!(scratch, "{t} {id} {e:?}").expect("fmt to String");
            transcript.extend_from_slice(scratch.as_bytes());
        }
    }
    let mut per_tick = Vec::with_capacity(measured as usize);
    for _ in 0..measured {
        let before = ALLOCS.load(Ordering::Relaxed);
        engine.tick(&mut events);
        events.clear();
        per_tick.push(ALLOCS.load(Ordering::Relaxed) - before);
    }
    (transcript, per_tick)
}

#[test]
fn hundred_k_nodes_build_agree_and_stay_alloc_free() {
    // The IG flood triples every ~3 ticks and covers the graph by tick
    // ~73 (measured); past that every node's flood-side lanes are warm
    // and the only remaining activity is the DFS crawl reaching one new
    // node every ~4 ticks.
    let spec = TopologySpec::RandomSc {
        n: 100_000,
        delta: 3,
        seed: 9,
    };
    let topo = spec.build();
    assert_eq!(topo.num_nodes(), 100_000);

    let warm = 76;
    let measured = 20u64;
    let (sparse, per_tick) = flood_window(&topo, EngineMode::Sparse, warm, measured);
    let (parallel, _) = flood_window(&topo, EngineMode::Parallel, warm, measured);
    assert!(
        !sparse.is_empty(),
        "the flood window must produce transcript events"
    );
    assert_eq!(
        sparse, parallel,
        "sparse and parallel transcripts must be byte-identical"
    );
    // Steady-state ticks allocate zero: any tick touching only warm
    // nodes must not allocate at all. The DFS crawl still reaches nodes
    // whose dying-passage lane has never fired; each such first touch
    // boxes exactly one fixed-size dwell slab (the lazy half of the
    // no-per-node-Vecs layout) — a one-time cost per node, bounded by
    // the crawl rate, never a recurring per-tick cost.
    let zero_ticks = per_tick.iter().filter(|&&a| a == 0).count();
    let total: usize = per_tick.iter().sum();
    let max = per_tick.iter().copied().max().unwrap_or(0);
    assert!(
        zero_ticks * 3 >= measured as usize * 2,
        "steady-state ticks must not allocate: {per_tick:?}"
    );
    assert!(
        max <= 1 && total <= measured as usize / 4 + 3,
        "non-zero ticks must be single first-touch slab boxes: {per_tick:?}"
    );
}
