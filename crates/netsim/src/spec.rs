//! Declarative topology specifications.
//!
//! A [`TopologySpec`] is a workload *as data*: every generator family in
//! [`generators`](crate::generators) has a spec variant, a stable textual
//! grammar (`family:arg,arg,…` with positional or `key=value` arguments),
//! and a [`FamilySpec`] entry in the [`REGISTRY`] so tools can enumerate
//! what exists. Specs round-trip through `Display`/`FromStr` — the
//! canonical rendering parses back to an equal spec — which makes them fit
//! for CLI flags, JSON rows and campaign grids alike.
//!
//! ```
//! use gtd_netsim::{generators, TopologySpec};
//!
//! let spec: TopologySpec = "debruijn:2,5".parse().unwrap();
//! assert_eq!(spec, TopologySpec::Debruijn { k: 2, m: 5 });
//! assert_eq!(spec.to_string(), "debruijn:2,5");
//! assert_eq!(spec.build(), generators::debruijn(2, 5));
//!
//! // named arguments parse too (in any order)
//! let named: TopologySpec = "random-sc:seed=7,n=64,delta=3".parse().unwrap();
//! assert_eq!(named.to_string(), "random-sc:n=64,delta=3,seed=7");
//! ```

use crate::engine::FaultPlane;
use crate::generators;
use crate::mutation::{MutationSchedule, MutationSuffixError, ScheduledMutation};
use crate::topology::Topology;
use std::fmt;
use std::str::FromStr;

/// A declarative description of one generator invocation.
///
/// `Display` renders the canonical grammar; `FromStr` parses it back
/// (accepting positional *or* named arguments); [`TopologySpec::build`]
/// produces the [`Topology`]. Specs are plain data: hash-free, cheap to
/// clone, and deterministic to build (same spec ⇒ identical port-level
/// wiring).
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// `ring:N` — directed ring, D = N − 1.
    Ring {
        /// Number of processors (≥ 2).
        n: usize,
    },
    /// `line-bidi:N` — bidirectional line.
    LineBidi {
        /// Number of processors (≥ 2).
        n: usize,
    },
    /// `torus:W,H` — directed torus (wrap-around right/down edges).
    Torus {
        /// Grid width (≥ 2).
        w: usize,
        /// Grid height (≥ 1).
        h: usize,
    },
    /// `debruijn:K,M` — de Bruijn graph B(K, M) on K^M nodes.
    Debruijn {
        /// Alphabet size / out-degree (≥ 2).
        k: usize,
        /// Word length; D = M.
        m: usize,
    },
    /// `kautz:K,M` — Kautz graph K(K, M) on (K+1)·K^M nodes.
    Kautz {
        /// Out-degree (≥ 2).
        k: usize,
        /// Word length; D = M + 1.
        m: usize,
    },
    /// `hypercube:D` — bidirectional hypercube Q_D.
    Hypercube {
        /// Dimensions (1..=7).
        dims: u32,
    },
    /// `complete:N` — complete bidirectional network (tiny N only).
    Complete {
        /// Number of processors (2..=9).
        n: usize,
    },
    /// `random-sc:n=…,delta=…,seed=…` — random strongly-connected digraph.
    RandomSc {
        /// Number of processors (≥ 2).
        n: usize,
        /// Degree bound δ (≥ 2).
        delta: u8,
        /// Deterministic seed.
        seed: u64,
    },
    /// `bidi-grid-faulty:w=…,h=…,p=…,seed=…` — the paper's §1.2.2
    /// bidirectional grid with per-direction link failures.
    BidiGridFaulty {
        /// Grid width.
        w: usize,
        /// Grid height (w·h ≥ 2).
        h: usize,
        /// Per-direction failure probability in `[0, 1)`.
        p: f64,
        /// Deterministic seed.
        seed: u64,
    },
    /// `tree-loop:h=…,seed=…` — the Lemma 5.1 lower-bound family with a
    /// seeded random leaf permutation.
    TreeLoop {
        /// Tree height (1..=20).
        h: u32,
        /// Permutation seed.
        seed: u64,
    },
}

/// One parameter of a spec family.
#[derive(Clone, Copy, Debug)]
pub struct ParamSpec {
    /// Parameter name (the `key` in `key=value`).
    pub name: &'static str,
    /// Default rendering when omitted, if the parameter is optional.
    pub default: Option<&'static str>,
    /// One-line description.
    pub doc: &'static str,
}

/// Registry entry describing one spec family.
#[derive(Clone, Copy, Debug)]
pub struct FamilySpec {
    /// Family name (the part before `:`).
    pub name: &'static str,
    /// Ordered parameters (positional order).
    pub params: &'static [ParamSpec],
    /// A canonical, buildable example spec string.
    pub example: &'static str,
    /// One-line description of the family.
    pub summary: &'static str,
}

const fn p(name: &'static str, doc: &'static str) -> ParamSpec {
    ParamSpec {
        name,
        default: None,
        doc,
    }
}

const fn p_opt(name: &'static str, default: &'static str, doc: &'static str) -> ParamSpec {
    ParamSpec {
        name,
        default: Some(default),
        doc,
    }
}

/// Every spec family, in display order. This is the single source of
/// truth tools enumerate (`harness list`, property tests, docs).
pub const REGISTRY: &[FamilySpec] = &[
    FamilySpec {
        name: "ring",
        params: &[p("n", "processors (>= 2)")],
        example: "ring:16",
        summary: "directed ring, D = N - 1 (worst case for O(N*D))",
    },
    FamilySpec {
        name: "line-bidi",
        params: &[p("n", "processors (>= 2)")],
        example: "line-bidi:16",
        summary: "bidirectional line; d(root, k) = k",
    },
    FamilySpec {
        name: "torus",
        params: &[p("w", "width (>= 2)"), p("h", "height (>= 1)")],
        example: "torus:4,4",
        summary: "directed torus with wrap-around right/down edges",
    },
    FamilySpec {
        name: "debruijn",
        params: &[
            p("k", "alphabet / out-degree (>= 2)"),
            p("m", "word length (>= 1)"),
        ],
        example: "debruijn:2,5",
        summary: "de Bruijn B(k,m): K^M nodes, D = m = log_k N",
    },
    FamilySpec {
        name: "kautz",
        params: &[p("k", "out-degree (>= 2)"), p("m", "word length (>= 1)")],
        example: "kautz:2,3",
        summary: "Kautz K(k,m): densest bounded-degree/low-diameter family",
    },
    FamilySpec {
        name: "hypercube",
        params: &[p("dims", "dimensions (1..=7)")],
        example: "hypercube:4",
        summary: "bidirectional hypercube Q_d, D = d = log2 N",
    },
    FamilySpec {
        name: "complete",
        params: &[p("n", "processors (2..=9)")],
        example: "complete:4",
        summary: "complete bidirectional network (dense adversarial case)",
    },
    FamilySpec {
        name: "random-sc",
        params: &[
            p("n", "processors (>= 2)"),
            p("delta", "degree bound (>= 2)"),
            p_opt("seed", "0", "deterministic seed"),
        ],
        example: "random-sc:n=32,delta=3,seed=1",
        summary: "random strongly-connected digraph with bounded degrees",
    },
    FamilySpec {
        name: "bidi-grid-faulty",
        params: &[
            p("w", "grid width"),
            p("h", "grid height (w*h >= 2)"),
            p("p", "per-direction failure probability in [0, 1)"),
            p_opt("seed", "0", "deterministic seed"),
        ],
        example: "bidi-grid-faulty:w=4,h=4,p=0.2,seed=11",
        summary: "bidirectional grid with directional link faults (paper 1.2.2)",
    },
    FamilySpec {
        name: "tree-loop",
        params: &[
            p("h", "tree height (1..=20)"),
            p_opt("seed", "0", "leaf-permutation seed"),
        ],
        example: "tree-loop:h=3,seed=7",
        summary: "Lemma 5.1 lower-bound family (tree + permuted leaf loop)",
    },
];

/// Registry entry describing one fault-plane suffix knob (`~key=value`).
#[derive(Clone, Copy, Debug)]
pub struct FaultKnobSpec {
    /// Knob name (the `key` in `~key=value`).
    pub name: &'static str,
    /// A canonical, parseable example spec string using the knob.
    pub example: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every fault-plane suffix knob, in display order. Like [`REGISTRY`]
/// this is the single source of truth tools enumerate (`harness list`,
/// docs). The knobs configure the engine's [`FaultPlane`]: decisions are
/// stateless per-character hashes, so a faulted spec's transcript is
/// byte-identical across engine modes and shard counts, and `~loss=0`
/// (or any all-zero combination) parses to exactly the unfaulted spec.
pub const FAULT_REGISTRY: &[FaultKnobSpec] = &[
    FaultKnobSpec {
        name: "loss",
        example: "ring:64~loss=0.01",
        summary: "per-character drop probability in [0, 1]",
    },
    FaultKnobSpec {
        name: "delay",
        example: "ring:64~delay=1..3",
        summary: "extra per-character delivery delay in ticks (d or a..b)",
    },
    FaultKnobSpec {
        name: "fault-seed",
        example: "ring:64~loss=0.02~fault-seed=42",
        summary: "seed for the stateless per-character fault hash",
    },
];

/// Look up a family by name.
pub fn family(name: &str) -> Option<&'static FamilySpec> {
    REGISTRY.iter().find(|f| f.name == name)
}

/// One canonical, buildable spec per registry family (parsed from each
/// entry's `example`).
pub fn registry_examples() -> Vec<TopologySpec> {
    REGISTRY
        .iter()
        .map(|f| {
            f.example
                .parse()
                .unwrap_or_else(|e| panic!("registry example {:?} must parse: {e}", f.example))
        })
        .collect()
}

/// Why a spec string failed to parse or validate.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseSpecError {
    /// The string was empty or had no family name before `:`.
    Empty,
    /// The family name is not in the [`REGISTRY`].
    UnknownFamily {
        /// The name that was given.
        family: String,
    },
    /// A required parameter was not supplied.
    MissingParam {
        /// The family.
        family: &'static str,
        /// The missing parameter.
        param: &'static str,
    },
    /// A named argument does not name a parameter of the family.
    UnknownParam {
        /// The family.
        family: &'static str,
        /// The unknown key.
        param: String,
    },
    /// The same parameter was supplied twice.
    DuplicateParam {
        /// The family.
        family: &'static str,
        /// The duplicated parameter.
        param: &'static str,
    },
    /// More positional arguments than the family has parameters.
    TooManyArgs {
        /// The family.
        family: &'static str,
        /// Arguments given.
        got: usize,
        /// Parameters available.
        max: usize,
    },
    /// A value failed to parse as the parameter's type.
    BadValue {
        /// The family.
        family: &'static str,
        /// The parameter.
        param: &'static str,
        /// The offending text.
        value: String,
        /// What was expected (e.g. `"an integer"`).
        expected: &'static str,
    },
    /// The spec parsed but its values violate the family's constraints.
    OutOfRange {
        /// The family.
        family: &'static str,
        /// Human-readable constraint, e.g. `"n must be >= 2"`.
        constraint: String,
    },
    /// A fault suffix (`~key=value`) of a [`DynamicSpec`] is malformed
    /// or out of range.
    BadFaultSuffix {
        /// The offending segment text (without the leading `~`).
        segment: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A mutation suffix (`+kind=selector@tTICK`) of a
    /// [`DynamicSpec`] is malformed.
    BadMutationSuffix {
        /// The offending suffix text (without the leading `+`).
        suffix: String,
        /// 1-based position of the suffix in the spec string.
        index: usize,
        /// The scheduled tick, when it parsed.
        tick: Option<u64>,
        /// What is wrong with the suffix.
        reason: MutationSuffixError,
    },
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSpecError::Empty => write!(f, "empty topology spec (expected family:args)"),
            ParseSpecError::UnknownFamily { family } => {
                let known: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
                write!(
                    f,
                    "unknown topology family {family:?} (known: {})",
                    known.join(", ")
                )
            }
            ParseSpecError::MissingParam { family, param } => {
                write!(f, "{family}: missing required parameter {param:?}")
            }
            ParseSpecError::UnknownParam { family, param } => {
                let known: Vec<&str> = crate::spec::family(family)
                    .map(|s| s.params.iter().map(|p| p.name).collect())
                    .unwrap_or_default();
                write!(
                    f,
                    "{family}: unknown parameter {param:?} (expected one of: {})",
                    known.join(", ")
                )
            }
            ParseSpecError::DuplicateParam { family, param } => {
                write!(f, "{family}: parameter {param:?} given more than once")
            }
            ParseSpecError::TooManyArgs { family, got, max } => {
                write!(f, "{family}: got {got} arguments but takes at most {max}")
            }
            ParseSpecError::BadValue {
                family,
                param,
                value,
                expected,
            } => write!(
                f,
                "{family}: parameter {param} = {value:?} is not {expected}"
            ),
            ParseSpecError::OutOfRange { family, constraint } => {
                write!(f, "{family}: {constraint}")
            }
            ParseSpecError::BadFaultSuffix { segment, reason } => {
                write!(f, "fault suffix ~{segment}: {reason}")
            }
            ParseSpecError::BadMutationSuffix {
                suffix,
                index,
                tick,
                reason,
            } => {
                write!(f, "mutation suffix #{index} {suffix:?}")?;
                if let Some(t) = tick {
                    write!(f, " (at tick {t})")?;
                }
                write!(f, ": {reason}")
            }
        }
    }
}

impl std::error::Error for ParseSpecError {}

impl TopologySpec {
    /// The family name (matches the [`REGISTRY`] entry).
    pub fn family_name(&self) -> &'static str {
        match self {
            TopologySpec::Ring { .. } => "ring",
            TopologySpec::LineBidi { .. } => "line-bidi",
            TopologySpec::Torus { .. } => "torus",
            TopologySpec::Debruijn { .. } => "debruijn",
            TopologySpec::Kautz { .. } => "kautz",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Complete { .. } => "complete",
            TopologySpec::RandomSc { .. } => "random-sc",
            TopologySpec::BidiGridFaulty { .. } => "bidi-grid-faulty",
            TopologySpec::TreeLoop { .. } => "tree-loop",
        }
    }

    /// Check the family's parameter constraints without building.
    ///
    /// [`FromStr`] validates automatically, so parsed specs always build;
    /// directly-constructed values can be checked here to get a structured
    /// error instead of a generator panic. Includes the 32-bit wire-slot
    /// bound (`n·δ < u32::MAX`) the engine's flat route tables require.
    pub fn validate(&self) -> Result<(), ParseSpecError> {
        // `n·δ` must stay below u32::MAX: slot indices are u32 and the
        // engine reserves u32::MAX as its unrouted sentinel.
        fn slots_overflow(n: usize, delta: u8) -> bool {
            n.checked_mul(delta as usize)
                .is_none_or(|slots| slots >= u32::MAX as usize)
        }
        let fail = |constraint: String| {
            Err(ParseSpecError::OutOfRange {
                family: self.family_name(),
                constraint,
            })
        };
        match *self {
            TopologySpec::Ring { n } | TopologySpec::LineBidi { n } if n < 2 => {
                fail(format!("n must be >= 2 (got {n})"))
            }
            TopologySpec::Torus { w, h } if w < 2 || h < 1 => {
                fail(format!("need w >= 2 and h >= 1 (got {w}x{h})"))
            }
            TopologySpec::Debruijn { k, m } | TopologySpec::Kautz { k, m } if k < 2 || m < 1 => {
                fail(format!("need k >= 2 and m >= 1 (got k={k}, m={m})"))
            }
            TopologySpec::Debruijn { k, m } | TopologySpec::Kautz { k, m }
                if (m as f64) * (k as f64).log2() > 22.0 =>
            {
                fail(format!("k^m too large to simulate (k={k}, m={m})"))
            }
            TopologySpec::Hypercube { dims } if !(1..=7).contains(&dims) => {
                fail(format!("dims must be in 1..=7 (got {dims})"))
            }
            TopologySpec::Complete { n } if !(2..=9).contains(&n) => {
                fail(format!("n must be in 2..=9 (got {n})"))
            }
            TopologySpec::RandomSc { n, delta, .. } if n < 2 || delta < 2 => fail(format!(
                "need n >= 2 and delta >= 2 (got n={n}, delta={delta})"
            )),
            TopologySpec::BidiGridFaulty { w, h, p, .. }
                if w * h < 2 || !(0.0..1.0).contains(&p) =>
            {
                fail(format!(
                    "need w*h >= 2 and p in [0, 1) (got {w}x{h}, p={p})"
                ))
            }
            TopologySpec::TreeLoop { h, .. } if !(1..=20).contains(&h) => {
                fail(format!("h must be in 1..=20 (got {h})"))
            }
            // Wire-slot bound: the engine's flat route tables index the
            // n·δ port slots with `u32` (one value reserved as the
            // unrouted sentinel), so networks whose slot count does not
            // fit in 32 bits must be rejected here with a structured
            // error — not silently truncated, and not a builder panic
            // halfway through generation.
            TopologySpec::Ring { n } | TopologySpec::LineBidi { n } if slots_overflow(n, 2) => {
                fail(format!("n too large: {n}*2 wire slots must fit in 32 bits"))
            }
            TopologySpec::Torus { w, h } if slots_overflow(w.saturating_mul(h), 2) => fail(
                format!("{w}x{h} too large: w*h*2 wire slots must fit in 32 bits"),
            ),
            TopologySpec::RandomSc { n, delta, .. } if slots_overflow(n, delta) => fail(format!(
                "n too large: {n}*{delta} wire slots must fit in 32 bits"
            )),
            TopologySpec::BidiGridFaulty { w, h, .. } if slots_overflow(w.saturating_mul(h), 4) => {
                fail(format!(
                    "{w}x{h} too large: w*h*4 wire slots must fit in 32 bits"
                ))
            }
            _ => Ok(()),
        }
    }

    /// Build the topology. The corresponding `generators::*` call is the
    /// backend, so `spec.build()` is port-for-port identical to calling
    /// the generator directly.
    ///
    /// Panics on constraint violations (see [`TopologySpec::validate`] for
    /// the structured check; parsed specs are always valid).
    pub fn build(&self) -> Topology {
        match *self {
            TopologySpec::Ring { n } => generators::ring(n),
            TopologySpec::LineBidi { n } => generators::line_bidi(n),
            TopologySpec::Torus { w, h } => generators::torus(w, h),
            TopologySpec::Debruijn { k, m } => generators::debruijn(k, m),
            TopologySpec::Kautz { k, m } => generators::kautz(k, m),
            TopologySpec::Hypercube { dims } => generators::hypercube_bidi(dims),
            TopologySpec::Complete { n } => generators::complete_bidi(n),
            TopologySpec::RandomSc { n, delta, seed } => generators::random_sc(n, delta, seed),
            TopologySpec::BidiGridFaulty { w, h, p, seed } => {
                generators::bidi_grid_faulty(w, h, p, seed)
            }
            TopologySpec::TreeLoop { h, seed } => generators::tree_loop_random(h, seed),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Ring { n } => write!(f, "ring:{n}"),
            TopologySpec::LineBidi { n } => write!(f, "line-bidi:{n}"),
            TopologySpec::Torus { w, h } => write!(f, "torus:{w},{h}"),
            TopologySpec::Debruijn { k, m } => write!(f, "debruijn:{k},{m}"),
            TopologySpec::Kautz { k, m } => write!(f, "kautz:{k},{m}"),
            TopologySpec::Hypercube { dims } => write!(f, "hypercube:{dims}"),
            TopologySpec::Complete { n } => write!(f, "complete:{n}"),
            TopologySpec::RandomSc { n, delta, seed } => {
                write!(f, "random-sc:n={n},delta={delta},seed={seed}")
            }
            TopologySpec::BidiGridFaulty { w, h, p, seed } => {
                write!(f, "bidi-grid-faulty:w={w},h={h},p={p},seed={seed}")
            }
            TopologySpec::TreeLoop { h, seed } => write!(f, "tree-loop:h={h},seed={seed}"),
        }
    }
}

/// Resolved textual arguments for one family, in parameter order.
struct Args {
    family: &'static FamilySpec,
    values: Vec<Option<String>>,
}

impl Args {
    fn resolve(family: &'static FamilySpec, raw: &str) -> Result<Self, ParseSpecError> {
        let mut values: Vec<Option<String>> = vec![None; family.params.len()];
        let mut next_positional = 0usize;
        let args: Vec<&str> = if raw.is_empty() {
            Vec::new()
        } else {
            raw.split(',').collect()
        };
        let total_args = args.len();
        for arg in args {
            let (idx, value) = match arg.split_once('=') {
                Some((key, value)) => {
                    let key = key.trim();
                    let idx = family
                        .params
                        .iter()
                        .position(|p| p.name == key)
                        .ok_or_else(|| ParseSpecError::UnknownParam {
                            family: family.name,
                            param: key.to_string(),
                        })?;
                    (idx, value)
                }
                None => {
                    if next_positional >= family.params.len() {
                        return Err(ParseSpecError::TooManyArgs {
                            family: family.name,
                            got: total_args,
                            max: family.params.len(),
                        });
                    }
                    let idx = next_positional;
                    next_positional += 1;
                    (idx, arg)
                }
            };
            if values[idx].is_some() {
                return Err(ParseSpecError::DuplicateParam {
                    family: family.name,
                    param: family.params[idx].name,
                });
            }
            values[idx] = Some(value.trim().to_string());
        }
        for (i, param) in family.params.iter().enumerate() {
            if values[i].is_none() {
                match param.default {
                    Some(d) => values[i] = Some(d.to_string()),
                    None => {
                        return Err(ParseSpecError::MissingParam {
                            family: family.name,
                            param: param.name,
                        })
                    }
                }
            }
        }
        Ok(Args { family, values })
    }

    fn get<T: FromStr>(&self, idx: usize, expected: &'static str) -> Result<T, ParseSpecError> {
        // Args::parse fills every slot (value or default) before get runs.
        #[allow(clippy::expect_used)]
        let text = self.values[idx].as_deref().expect("resolved above");
        text.parse().map_err(|_| ParseSpecError::BadValue {
            family: self.family.name,
            param: self.family.params[idx].name,
            value: text.to_string(),
            expected,
        })
    }
}

impl FromStr for TopologySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, ParseSpecError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(ParseSpecError::Empty);
        }
        let (name, raw_args) = match s.split_once(':') {
            Some((name, rest)) => (name.trim(), rest.trim()),
            None => (s, ""),
        };
        if name.is_empty() {
            return Err(ParseSpecError::Empty);
        }
        let fam = family(name).ok_or_else(|| ParseSpecError::UnknownFamily {
            family: name.to_string(),
        })?;
        let args = Args::resolve(fam, raw_args)?;
        const INT: &str = "an integer";
        let spec = match fam.name {
            "ring" => TopologySpec::Ring {
                n: args.get(0, INT)?,
            },
            "line-bidi" => TopologySpec::LineBidi {
                n: args.get(0, INT)?,
            },
            "torus" => TopologySpec::Torus {
                w: args.get(0, INT)?,
                h: args.get(1, INT)?,
            },
            "debruijn" => TopologySpec::Debruijn {
                k: args.get(0, INT)?,
                m: args.get(1, INT)?,
            },
            "kautz" => TopologySpec::Kautz {
                k: args.get(0, INT)?,
                m: args.get(1, INT)?,
            },
            "hypercube" => TopologySpec::Hypercube {
                dims: args.get(0, INT)?,
            },
            "complete" => TopologySpec::Complete {
                n: args.get(0, INT)?,
            },
            "random-sc" => TopologySpec::RandomSc {
                n: args.get(0, INT)?,
                delta: args.get(1, INT)?,
                seed: args.get(2, INT)?,
            },
            "bidi-grid-faulty" => TopologySpec::BidiGridFaulty {
                w: args.get(0, INT)?,
                h: args.get(1, INT)?,
                p: args.get(2, "a number")?,
                seed: args.get(3, INT)?,
            },
            "tree-loop" => TopologySpec::TreeLoop {
                h: args.get(0, INT)?,
                seed: args.get(1, INT)?,
            },
            other => unreachable!("family {other} in registry but not in parser"),
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// A topology spec plus a fault plane and a mutation timeline: the full
/// grammar `family:args~key=value~…+kind=selector@tTICK+…` (paper §1:
/// "the topology … might change"; §1.2.2: faulty communication).
///
/// An empty schedule is a static scenario, so every plain
/// [`TopologySpec`] string parses as a `DynamicSpec` too. The canonical
/// rendering puts fault segments (`~loss=…`, `~delay=…`, `~fault-seed=…`
/// — see [`FAULT_REGISTRY`]) between the base and the tick-ordered
/// mutation suffixes, omits inactive fault axes, and round-trips
/// through `Display`/`FromStr`; an all-zero fault plane parses to
/// exactly the unfaulted spec, so `ring:8~loss=0` *is* `ring:8`.
///
/// ```
/// use gtd_netsim::{DynamicSpec, MutationKind};
///
/// let spec: DynamicSpec = "ring:64~loss=0.01+drop-edge=3@t500".parse().unwrap();
/// assert_eq!(spec.base.to_string(), "ring:64");
/// assert_eq!(spec.fault.loss, 0.01);
/// assert_eq!(spec.schedule.len(), 1);
/// assert_eq!(spec.schedule.items()[0].tick, 500);
/// assert_eq!(spec.schedule.items()[0].mutation.kind, MutationKind::DropEdge);
/// assert_eq!(spec.to_string(), "ring:64~loss=0.01+drop-edge=3@t500");
///
/// let fixed: DynamicSpec = "ring:16".parse().unwrap();
/// assert!(fixed.is_static());
/// assert_eq!(fixed.effective_faults(), None);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DynamicSpec {
    /// The initial topology.
    pub base: TopologySpec,
    /// Wire-level fault plane ([`FaultPlane::NONE`] when reliable).
    pub fault: FaultPlane,
    /// Tick-stamped mutations applied over the run.
    pub schedule: MutationSchedule,
}

impl DynamicSpec {
    /// A static scenario over `base`.
    pub fn fixed(base: TopologySpec) -> Self {
        DynamicSpec {
            base,
            fault: FaultPlane::NONE,
            schedule: MutationSchedule::new(),
        }
    }

    /// Does the scenario never mutate?
    pub fn is_static(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The fault plane to install on the engine, or `None` when the
    /// spec is reliable — callers skip `set_fault_plane` entirely so the
    /// unfaulted path stays bit-identical and allocation-free.
    pub fn effective_faults(&self) -> Option<FaultPlane> {
        self.fault.is_active().then_some(self.fault)
    }

    /// Check the base family's parameter constraints and the fault
    /// plane's ranges (mutation validity is decided against the live
    /// topology at apply time).
    pub fn validate(&self) -> Result<(), ParseSpecError> {
        self.base.validate()?;
        if !self.fault.loss.is_finite() || !(0.0..=1.0).contains(&self.fault.loss) {
            return Err(ParseSpecError::BadFaultSuffix {
                segment: format!("loss={}", self.fault.loss),
                reason: "loss must be in [0, 1]".to_string(),
            });
        }
        if self.fault.delay_min > self.fault.delay_max {
            return Err(ParseSpecError::BadFaultSuffix {
                segment: format!("delay={}..{}", self.fault.delay_min, self.fault.delay_max),
                reason: "delay range must satisfy min <= max".to_string(),
            });
        }
        Ok(())
    }

    /// Build the initial topology (tick 0, before any mutation).
    pub fn build(&self) -> Topology {
        self.base.build()
    }

    /// The topology after the whole schedule has been applied (swap
    /// fallback for inapplicable mutations; collector on processor 0 —
    /// `node-leave` suffixes never remove it).
    pub fn final_topology(&self) -> Topology {
        self.schedule.final_topology(&self.base.build())
    }

    /// [`DynamicSpec::final_topology`] for a collector on `root` (the
    /// root id is tracked across membership changes).
    pub fn final_topology_rooted(&self, root: crate::NodeId) -> Topology {
        self.schedule
            .final_topology_rooted(&self.base.build(), root)
    }
}

impl From<TopologySpec> for DynamicSpec {
    fn from(base: TopologySpec) -> Self {
        DynamicSpec::fixed(base)
    }
}

impl fmt::Display for DynamicSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        // Canonical fault rendering: inactive axes are omitted, a
        // degenerate delay range prints as a single value, and the seed
        // only appears on an active plane — so an all-zero plane renders
        // (and therefore compares) exactly like the unfaulted spec.
        if self.fault.is_active() {
            if self.fault.loss > 0.0 {
                write!(f, "~loss={}", self.fault.loss)?;
            }
            if self.fault.delay_max > 0 {
                if self.fault.delay_min == self.fault.delay_max {
                    write!(f, "~delay={}", self.fault.delay_max)?;
                } else {
                    write!(
                        f,
                        "~delay={}..{}",
                        self.fault.delay_min, self.fault.delay_max
                    )?;
                }
            }
            if self.fault.seed != 0 {
                write!(f, "~fault-seed={}", self.fault.seed)?;
            }
        }
        for sm in self.schedule.iter() {
            write!(f, "+{sm}")?;
        }
        Ok(())
    }
}

/// Parse the `~key=value` fault segments following the base spec.
fn parse_fault_segments<'a>(
    segments: impl Iterator<Item = &'a str>,
) -> Result<FaultPlane, ParseSpecError> {
    let bad = |segment: &str, reason: String| ParseSpecError::BadFaultSuffix {
        segment: segment.to_string(),
        reason,
    };
    let mut fault = FaultPlane::NONE;
    let mut seen = [false; 3]; // loss, delay, fault-seed
    for segment in segments {
        let segment = segment.trim();
        let Some((key, value)) = segment.split_once('=') else {
            return Err(bad(segment, "expected key=value".to_string()));
        };
        let (key, value) = (key.trim(), value.trim());
        let idx = match key {
            "loss" => 0,
            "delay" => 1,
            "fault-seed" => 2,
            _ => {
                let known: Vec<&str> = FAULT_REGISTRY.iter().map(|k| k.name).collect();
                return Err(bad(
                    segment,
                    format!("unknown fault knob {key:?} (known: {})", known.join(", ")),
                ));
            }
        };
        if std::mem::replace(&mut seen[idx], true) {
            return Err(bad(segment, format!("fault knob {key:?} given twice")));
        }
        match idx {
            0 => {
                let loss: f64 = value
                    .parse()
                    .map_err(|_| bad(segment, format!("{value:?} is not a number")))?;
                if !loss.is_finite() || !(0.0..=1.0).contains(&loss) {
                    return Err(bad(segment, "loss must be in [0, 1]".to_string()));
                }
                fault.loss = loss;
            }
            1 => {
                let (lo, hi) = match value.split_once("..") {
                    Some((lo, hi)) => (lo.trim(), hi.trim()),
                    None => (value, value),
                };
                let parse_tick = |t: &str| {
                    t.parse::<u64>()
                        .map_err(|_| bad(segment, format!("{t:?} is not a tick count")))
                };
                let (min, max) = (parse_tick(lo)?, parse_tick(hi)?);
                if min > max {
                    return Err(bad(
                        segment,
                        "delay range must satisfy min <= max".to_string(),
                    ));
                }
                fault.delay_min = min;
                fault.delay_max = max;
            }
            _ => {
                fault.seed = value
                    .parse()
                    .map_err(|_| bad(segment, format!("{value:?} is not a seed")))?;
            }
        }
    }
    // Normalize: a plane with no active axis is *the* reliable plane —
    // `~loss=0` and a lone `~fault-seed=…` parse to the unfaulted spec.
    if !fault.is_active() {
        fault = FaultPlane::NONE;
    }
    Ok(fault)
}

impl FromStr for DynamicSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, ParseSpecError> {
        let mut parts = s.split('+');
        let head = parts.next().unwrap_or("");
        // Fault segments sit between the base spec and the mutation
        // suffixes: `family:args~loss=0.01~delay=1..3+rewire=2@t200`.
        let mut segments = head.split('~');
        let base: TopologySpec = segments.next().unwrap_or("").parse()?;
        let fault = parse_fault_segments(segments)?;
        let mut schedule = MutationSchedule::new();
        for (i, suffix) in parts.enumerate() {
            let suffix = suffix.trim();
            match ScheduledMutation::parse_suffix(suffix) {
                Ok(sm) => schedule.push(sm.tick, sm.mutation),
                Err((tick, reason)) => {
                    return Err(ParseSpecError::BadMutationSuffix {
                        suffix: suffix.to_string(),
                        index: i + 1,
                        tick,
                        reason,
                    })
                }
            }
        }
        Ok(DynamicSpec {
            base,
            fault,
            schedule,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;

    #[test]
    fn registry_examples_parse_build_and_roundtrip() {
        for fam in REGISTRY {
            let spec: TopologySpec = fam.example.parse().unwrap();
            assert_eq!(spec.family_name(), fam.name);
            let rendered = spec.to_string();
            let back: TopologySpec = rendered.parse().unwrap();
            assert_eq!(back, spec, "{} must round-trip", fam.example);
            let topo = spec.build();
            assert!(topo.num_nodes() >= 2, "{}", fam.example);
        }
    }

    #[test]
    fn positional_and_named_args_agree() {
        let a: TopologySpec = "random-sc:64,3,9".parse().unwrap();
        let b: TopologySpec = "random-sc:n=64,delta=3,seed=9".parse().unwrap();
        let c: TopologySpec = "random-sc:seed=9,delta=3,n=64".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn optional_seed_defaults_to_zero() {
        assert_eq!(
            "random-sc:n=16,delta=3".parse::<TopologySpec>().unwrap(),
            TopologySpec::RandomSc {
                n: 16,
                delta: 3,
                seed: 0
            }
        );
        assert_eq!(
            "tree-loop:h=3".parse::<TopologySpec>().unwrap(),
            TopologySpec::TreeLoop { h: 3, seed: 0 }
        );
    }

    #[test]
    fn whitespace_is_tolerated() {
        let spec: TopologySpec = "  debruijn: 2 , 5 ".parse().unwrap();
        assert_eq!(spec, TopologySpec::Debruijn { k: 2, m: 5 });
    }

    #[test]
    fn unknown_family_lists_known_families() {
        let err = "moebius:3".parse::<TopologySpec>().unwrap_err();
        assert!(matches!(err, ParseSpecError::UnknownFamily { .. }));
        let msg = err.to_string();
        assert!(msg.contains("moebius"), "{msg}");
        assert!(msg.contains("ring"), "{msg}");
        assert!(msg.contains("bidi-grid-faulty"), "{msg}");
    }

    #[test]
    fn missing_param_is_reported_by_name() {
        let err = "random-sc:n=16".parse::<TopologySpec>().unwrap_err();
        assert_eq!(
            err,
            ParseSpecError::MissingParam {
                family: "random-sc",
                param: "delta"
            }
        );
        assert!(err.to_string().contains("delta"));
    }

    #[test]
    fn unknown_param_lists_expected_keys() {
        let err = "random-sc:n=16,gamma=3"
            .parse::<TopologySpec>()
            .unwrap_err();
        assert!(matches!(err, ParseSpecError::UnknownParam { .. }));
        let msg = err.to_string();
        assert!(msg.contains("gamma") && msg.contains("delta"), "{msg}");
    }

    #[test]
    fn duplicate_and_excess_args_are_rejected() {
        assert_eq!(
            "ring:4,n=5".parse::<TopologySpec>().unwrap_err(),
            ParseSpecError::DuplicateParam {
                family: "ring",
                param: "n"
            }
        );
        assert_eq!(
            "ring:4,5".parse::<TopologySpec>().unwrap_err(),
            ParseSpecError::TooManyArgs {
                family: "ring",
                got: 2,
                max: 1
            }
        );
    }

    #[test]
    fn bad_values_name_the_parameter() {
        let err = "ring:banana".parse::<TopologySpec>().unwrap_err();
        assert_eq!(
            err,
            ParseSpecError::BadValue {
                family: "ring",
                param: "n",
                value: "banana".into(),
                expected: "an integer"
            }
        );
        let err = "bidi-grid-faulty:w=3,h=3,p=maybe,seed=0"
            .parse::<TopologySpec>()
            .unwrap_err();
        assert!(err.to_string().contains("maybe"), "{err}");
    }

    #[test]
    fn out_of_range_values_are_structured_errors_not_panics() {
        for bad in [
            "ring:1",
            "hypercube:9",
            "complete:64",
            "bidi-grid-faulty:w=4,h=4,p=1.5,seed=0",
            "tree-loop:h=0",
            "random-sc:n=16,delta=1",
            "debruijn:2,40",
        ] {
            let err = bad.parse::<TopologySpec>().unwrap_err();
            assert!(
                matches!(err, ParseSpecError::OutOfRange { .. }),
                "{bad} -> {err:?}"
            );
        }
    }

    #[test]
    fn oversized_networks_are_structured_errors_not_truncation() {
        // n·δ must fit in 32 bits (flat route-table slot indices with a
        // u32 sentinel); anything larger is a structured parse error, not
        // a silent node-id truncation inside the engine.
        for bad in [
            "ring:4294967295",
            "ring:18446744073709551615",
            "line-bidi:2147483648",
            "torus:65536,65536",
            "random-sc:n=4294967295,delta=3,seed=1",
            "random-sc:n=1431655766,delta=3,seed=1",
            "bidi-grid-faulty:w=40000,h=40000,p=0.1,seed=0",
        ] {
            let err = bad.parse::<TopologySpec>().unwrap_err();
            assert!(
                matches!(err, ParseSpecError::OutOfRange { .. }),
                "{bad} -> {err:?}"
            );
            assert!(err.to_string().contains("32 bits"), "{bad} -> {err}");
        }
        // The million-node bench regime sits comfortably inside the bound.
        let ok: TopologySpec = "random-sc:n=1000000,delta=3,seed=9".parse().unwrap();
        ok.validate().unwrap();
    }

    #[test]
    fn empty_specs_are_rejected() {
        assert_eq!(
            "".parse::<TopologySpec>().unwrap_err(),
            ParseSpecError::Empty
        );
        assert_eq!(
            "  ".parse::<TopologySpec>().unwrap_err(),
            ParseSpecError::Empty
        );
        assert_eq!(
            ":4".parse::<TopologySpec>().unwrap_err(),
            ParseSpecError::Empty
        );
    }

    #[test]
    fn spec_builds_match_generator_calls() {
        assert_eq!(TopologySpec::Ring { n: 9 }.build(), generators::ring(9));
        assert_eq!(
            TopologySpec::BidiGridFaulty {
                w: 4,
                h: 3,
                p: 0.2,
                seed: 5
            }
            .build(),
            generators::bidi_grid_faulty(4, 3, 0.2, 5)
        );
        assert_eq!(
            TopologySpec::TreeLoop { h: 3, seed: 11 }.build(),
            generators::tree_loop_random(3, 11)
        );
    }

    #[test]
    fn dynamic_specs_round_trip_and_sort_suffixes_by_tick() {
        let spec: DynamicSpec = "random-sc:n=512,delta=3,seed=7+rewire=5@t900+rewire=2@t200"
            .parse()
            .unwrap();
        assert_eq!(spec.schedule.len(), 2);
        // canonical rendering orders by tick
        assert_eq!(
            spec.to_string(),
            "random-sc:n=512,delta=3,seed=7+rewire=2@t200+rewire=5@t900"
        );
        let back: DynamicSpec = spec.to_string().parse().unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn static_specs_parse_as_dynamic_specs() {
        let spec: DynamicSpec = "debruijn:2,5".parse().unwrap();
        assert!(spec.is_static());
        assert_eq!(spec.base, TopologySpec::Debruijn { k: 2, m: 5 });
        assert_eq!(spec.to_string(), "debruijn:2,5");
        assert_eq!(DynamicSpec::from(TopologySpec::Ring { n: 4 }), {
            let s: DynamicSpec = "ring:4".parse().unwrap();
            s
        });
    }

    #[test]
    fn malformed_mutation_suffixes_report_suffix_index_and_tick() {
        use crate::mutation::MutationSuffixError as E;
        let cases: [(&str, usize, Option<u64>, E); 6] = [
            ("ring:8+", 1, None, E::Empty),
            ("ring:8+drop-edge=3", 1, None, E::MissingTick),
            (
                "ring:8+drop-edge=3@500",
                1,
                None,
                E::BadTick {
                    value: "500".into(),
                },
            ),
            (
                "ring:8+swap=1@t2+warp=1@t5",
                2,
                Some(5),
                E::UnknownKind {
                    kind: "warp".into(),
                },
            ),
            ("ring:8+drop-edge@t5", 1, Some(5), E::MissingSelector),
            (
                "ring:8+drop-edge=banana@t5",
                1,
                Some(5),
                E::BadSelector {
                    value: "banana".into(),
                },
            ),
        ];
        for (text, index, tick, reason) in cases {
            let err = text.parse::<DynamicSpec>().unwrap_err();
            let ParseSpecError::BadMutationSuffix {
                index: got_index,
                tick: got_tick,
                reason: ref got_reason,
                ref suffix,
            } = err
            else {
                panic!("{text:?}: expected BadMutationSuffix, got {err:?}");
            };
            assert_eq!(got_index, index, "{text:?}");
            assert_eq!(got_tick, tick, "{text:?}");
            assert_eq!(*got_reason, reason, "{text:?}");
            assert!(
                text.ends_with(suffix.as_str()) || suffix.is_empty(),
                "{text:?}"
            );
            // the human rendering names the suffix (and the tick if known)
            let msg = err.to_string();
            if !suffix.is_empty() {
                assert!(msg.contains(suffix.as_str()), "{msg}");
            }
            if let Some(t) = tick {
                assert!(msg.contains(&format!("tick {t}")), "{msg}");
            }
        }
    }

    #[test]
    fn fault_suffixes_parse_and_render_canonically() {
        let spec: DynamicSpec = "ring:64~loss=0.01~delay=1..3~fault-seed=42+rewire=2@t200"
            .parse()
            .unwrap();
        assert_eq!(spec.base, TopologySpec::Ring { n: 64 });
        assert_eq!(
            spec.fault,
            FaultPlane {
                loss: 0.01,
                delay_min: 1,
                delay_max: 3,
                seed: 42
            }
        );
        assert_eq!(spec.schedule.len(), 1);
        assert_eq!(
            spec.to_string(),
            "ring:64~loss=0.01~delay=1..3~fault-seed=42+rewire=2@t200"
        );
        let back: DynamicSpec = spec.to_string().parse().unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.effective_faults(), Some(spec.fault));
    }

    #[test]
    fn degenerate_delay_ranges_render_as_a_single_value() {
        let a: DynamicSpec = "ring:8~delay=2".parse().unwrap();
        let b: DynamicSpec = "ring:8~delay=2..2".parse().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fault.delay_min, 2);
        assert_eq!(a.fault.delay_max, 2);
        assert_eq!(b.to_string(), "ring:8~delay=2");
    }

    #[test]
    fn zero_fault_suffixes_are_exactly_the_unfaulted_spec() {
        let plain: DynamicSpec = "ring:8".parse().unwrap();
        for text in ["ring:8~loss=0", "ring:8~delay=0", "ring:8~fault-seed=7"] {
            let spec: DynamicSpec = text.parse().unwrap();
            assert_eq!(spec, plain, "{text}");
            assert_eq!(spec.fault, FaultPlane::NONE, "{text}");
            assert_eq!(spec.effective_faults(), None, "{text}");
            assert_eq!(spec.to_string(), "ring:8", "{text}");
        }
        // …but a seed on an *active* plane is kept
        let seeded: DynamicSpec = "ring:8~loss=0.5~fault-seed=7".parse().unwrap();
        assert_eq!(seeded.fault.seed, 7);
    }

    #[test]
    fn malformed_fault_suffixes_are_structured_errors() {
        for (text, needle) in [
            ("ring:8~loss", "key=value"),
            ("ring:8~loss=2", "loss must be in [0, 1]"),
            ("ring:8~loss=-0.5", "loss must be in [0, 1]"),
            ("ring:8~loss=nan", "loss must be in [0, 1]"),
            ("ring:8~loss=banana", "not a number"),
            ("ring:8~delay=3..1", "min <= max"),
            ("ring:8~delay=x..2", "not a tick count"),
            ("ring:8~jitter=2", "unknown fault knob"),
            ("ring:8~loss=0.1~loss=0.2", "given twice"),
        ] {
            let err = text.parse::<DynamicSpec>().unwrap_err();
            assert!(
                matches!(err, ParseSpecError::BadFaultSuffix { .. }),
                "{text} -> {err:?}"
            );
            assert!(err.to_string().contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn fault_registry_examples_parse_and_use_their_knob() {
        for knob in FAULT_REGISTRY {
            let spec: DynamicSpec = knob
                .example
                .parse()
                .unwrap_or_else(|e| panic!("{}: {e}", knob.example));
            assert!(spec.fault.is_active(), "{}", knob.example);
            assert!(knob.example.contains(&format!("~{}=", knob.name)));
        }
    }

    #[test]
    fn validate_rejects_out_of_range_planes_built_directly() {
        let mut spec = DynamicSpec::fixed(TopologySpec::Ring { n: 8 });
        spec.validate().unwrap();
        spec.fault.loss = 1.5;
        assert!(matches!(
            spec.validate(),
            Err(ParseSpecError::BadFaultSuffix { .. })
        ));
        spec.fault.loss = 0.1;
        spec.fault.delay_min = 5;
        spec.fault.delay_max = 2;
        assert!(matches!(
            spec.validate(),
            Err(ParseSpecError::BadFaultSuffix { .. })
        ));
    }

    #[test]
    fn bad_base_spec_in_a_dynamic_string_reports_the_family_error() {
        let err = "moebius:3+swap=1@t5".parse::<DynamicSpec>().unwrap_err();
        assert!(
            matches!(err, ParseSpecError::UnknownFamily { .. }),
            "{err:?}"
        );
    }
}
