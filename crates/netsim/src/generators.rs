//! Workload topology generators.
//!
//! These produce the graph families used throughout the test suite and the
//! experiment harness (DESIGN.md §8): structured families with known
//! diameters, random bounded-degree strongly-connected digraphs, the
//! paper's motivating "bidirectional network with directional faults"
//! (§1.2.2), and the Lemma 5.1 lower-bound family (full binary tree with
//! bidirectional edges plus a permuted loop through the leaves).
//!
//! All generators are deterministic: identical arguments (including seeds)
//! produce identical port-level topologies.
//!
//! These functions are the *backends* of the declarative
//! [`TopologySpec`](crate::spec::TopologySpec) layer: every family here has
//! a spec variant (`"ring:64"`, `"debruijn:2,5"`, …) whose `build()`
//! dispatches to the corresponding generator, so workloads can be written
//! as data and still produce port-for-port identical networks.
//!
//! Generators wire fixed shapes through `TopologyBuilder`, so every
//! `connect`/`build` call is on inputs the function itself computed; a
//! failure is a generator bug, and panicking with the builder's message
//! is the most diagnosable outcome. Hence the module-wide exemption
//! from the crate's `unwrap_used`/`expect_used` policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::algo::is_strongly_connected;
use crate::ids::NodeId;
use crate::rng::DetRng;
use crate::topology::{Topology, TopologyBuilder};

/// Directed ring `0 → 1 → … → n-1 → 0`. N = n, D = n − 1, δ = 2.
///
/// The worst case for the paper's O(N·D) bound (D = N − 1) and the family
/// used for the RCA distance sweep (E3): every node is at loop distance
/// exactly n from the root through the ring.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new(n, 2);
    for u in 0..n {
        b.connect_auto(NodeId(u as u32), NodeId(((u + 1) % n) as u32))
            .expect("ring wiring");
    }
    b.build().expect("ring is a valid network")
}

/// Bidirectional line `0 ↔ 1 ↔ … ↔ n-1`. N = n, D = n − 1, δ = 2.
///
/// Distance from the root (node 0) to node k and back is exactly 2k, which
/// gives a second, independent distance sweep for E3/E4.
pub fn line_bidi(n: usize) -> Topology {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new(n, 2);
    for u in 0..n - 1 {
        b.connect_auto(NodeId(u as u32), NodeId(u as u32 + 1))
            .expect("line wiring");
        b.connect_auto(NodeId(u as u32 + 1), NodeId(u as u32))
            .expect("line wiring");
    }
    b.build().expect("line is a valid network")
}

/// Directed torus on a `w × h` grid with wrap-around "right" and "down"
/// edges only. N = w·h, D = (w−1) + (h−1), δ = 2.
pub fn torus(w: usize, h: usize) -> Topology {
    assert!(w >= 2 && h >= 1 && w * h >= 2);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    let mut b = TopologyBuilder::new(w * h, 2);
    for y in 0..h {
        for x in 0..w {
            b.connect_auto(id(x, y), id((x + 1) % w, y))
                .expect("torus right");
            if h >= 2 {
                b.connect_auto(id(x, y), id(x, (y + 1) % h))
                    .expect("torus down");
            }
        }
    }
    b.build().expect("torus is a valid network")
}

/// De Bruijn graph B(k, m) on k^m nodes: `u → (u·k + a) mod k^m`, with the
/// self-loops at the two fixed points dropped (self-loops are outside the
/// model, DESIGN.md §5). D = m = log_k N, δ = k — the "large network with
/// small diameter" regime in which the paper's protocol is asymptotically
/// optimal.
pub fn debruijn(k: usize, m: usize) -> Topology {
    assert!(k >= 2 && m >= 1);
    let n = k.pow(m as u32);
    assert!(n >= 2);
    let mut b = TopologyBuilder::new(n, k as u8);
    for u in 0..n {
        for a in 0..k {
            let v = (u * k + a) % n;
            if v != u {
                b.connect_auto(NodeId(u as u32), NodeId(v as u32))
                    .expect("debruijn wiring");
            }
        }
    }
    b.build().expect("debruijn is a valid network")
}

/// Random strongly-connected digraph with degrees bounded by `delta`.
///
/// Construction: a random Hamiltonian cycle (guaranteeing strong
/// connectivity and one in-/out-port per node), then random extra edges
/// added wherever both endpoints have free ports, skipping self-loops and
/// duplicate (same-direction) pairs. Extra edges are attempted until ~
/// `(delta − 1) · n` additions or the attempt budget runs out, yielding an
/// expected out-degree close to δ.
pub fn random_sc(n: usize, delta: u8, seed: u64) -> Topology {
    assert!(n >= 2 && delta >= 2);
    let mut rng = DetRng::seed_from_u64(seed ^ 0x6774645f72616e64); // "gtd_rand"
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let mut b = TopologyBuilder::new(n, delta);
    for w in 0..n {
        let u = order[w];
        let v = order[(w + 1) % n];
        b.connect_auto(NodeId(u), NodeId(v))
            .expect("hamiltonian cycle wiring");
    }
    let target_extra = n * (delta as usize - 1);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let attempt_budget = target_extra * 20 + 100;
    while added < target_extra && attempts < attempt_budget {
        attempts += 1;
        let u = NodeId(rng.random_range(0..n as u32));
        let v = NodeId(rng.random_range(0..n as u32));
        if u == v || b.has_edge(u, v) || !b.can_connect(u, v) {
            continue;
        }
        b.connect_auto(u, v).expect("checked free ports");
        added += 1;
    }
    let t = b.build().expect("random_sc is a valid network");
    debug_assert!(is_strongly_connected(&t));
    t
}

/// The paper's motivating failure scenario (§1.2.2): a bidirectional grid
/// in which individual *directions* of links fail independently with
/// probability `p` ("bidirectional networks with in-port or out-port
/// shutdown failures"). Directions are re-instated as needed to keep the
/// network strongly connected: failed directions are retried with fresh
/// randomness until the survivor graph is strongly connected.
pub fn bidi_grid_faulty(w: usize, h: usize, p: f64, seed: u64) -> Topology {
    assert!(w * h >= 2);
    assert!((0.0..1.0).contains(&p));
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    // Undirected neighbour pairs of the grid.
    let mut pairs = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                pairs.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                pairs.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    for round in 0..64u64 {
        let mut rng =
            DetRng::seed_from_u64(seed.wrapping_add(round.wrapping_mul(0x9e3779b97f4a7c15)));
        let mut b = TopologyBuilder::new(w * h, 4);
        for &(u, v) in &pairs {
            if !rng.random_bool(p) {
                b.connect_auto(u, v).expect("grid wiring");
            }
            if !rng.random_bool(p) {
                b.connect_auto(v, u).expect("grid wiring");
            }
        }
        let Ok(t) = b.build() else { continue };
        if is_strongly_connected(&t) {
            return t;
        }
    }
    // Fall back to the fault-free grid: always strongly connected.
    let mut b = TopologyBuilder::new(w * h, 4);
    for &(u, v) in &pairs {
        b.connect_auto(u, v).expect("grid wiring");
        b.connect_auto(v, u).expect("grid wiring");
    }
    b.build().expect("fault-free grid is valid")
}

/// The Lemma 5.1 lower-bound family: a full binary tree of height `h` with
/// bidirectional edges, plus a simple directed loop visiting every leaf in
/// the order given by `leaf_perm` (a permutation of `0..2^h`).
///
/// N = 2^(h+1) − 1, D ≤ 2h + 1, δ = 3. Every distinct leaf ordering yields
/// a distinct topology, which is what makes `G(N) ≥ N^{CN}` — the heart of
/// the Ω(N log N) bound (Theorem 5.1).
pub fn tree_loop(h: u32, leaf_perm: &[usize]) -> Topology {
    let leaves = 1usize << h;
    assert_eq!(
        leaf_perm.len(),
        leaves,
        "leaf_perm must order all 2^h leaves"
    );
    {
        let mut seen = vec![false; leaves];
        for &l in leaf_perm {
            assert!(l < leaves && !seen[l], "leaf_perm must be a permutation");
            seen[l] = true;
        }
    }
    let n = (1usize << (h + 1)) - 1;
    assert!(n >= 2, "height 0 tree has a single node; use h >= 1");
    // Heap indexing: node 0 is the tree root; children of i are 2i+1, 2i+2;
    // leaves occupy indices (2^h - 1)..(2^(h+1) - 1).
    let mut b = TopologyBuilder::new(n, 3);
    for i in 0..(1usize << h) - 1 {
        for c in [2 * i + 1, 2 * i + 2] {
            b.connect_auto(NodeId(i as u32), NodeId(c as u32))
                .expect("tree edge down");
            b.connect_auto(NodeId(c as u32), NodeId(i as u32))
                .expect("tree edge up");
        }
    }
    let first_leaf = (1usize << h) - 1;
    for w in 0..leaves {
        let u = first_leaf + leaf_perm[w];
        let v = first_leaf + leaf_perm[(w + 1) % leaves];
        if leaves == 1 {
            break; // single leaf: no loop needed (h = 0 is rejected above anyway)
        }
        b.connect_auto(NodeId(u as u32), NodeId(v as u32))
            .expect("leaf loop edge");
    }
    b.build().expect("tree_loop is a valid network")
}

/// `tree_loop` with a seeded random permutation — convenient for sweeps.
pub fn tree_loop_random(h: u32, seed: u64) -> Topology {
    let leaves = 1usize << h;
    let mut perm: Vec<usize> = (0..leaves).collect();
    let mut rng = DetRng::seed_from_u64(seed ^ 0x74726565); // "tree"
    rng.shuffle(&mut perm);
    tree_loop(h, &perm)
}

/// A chain of 2-cycles: `0 ↔ 1 ↔ 2 ↔ …` — same shape as [`line_bidi`] but
/// named per the paper's "pair of processors … connected with two
/// communication links, one in either direction, simulating a bidirectional
/// link" (§1.1). Kept as an alias for workload tables.
pub fn two_cycle_chain(n: usize) -> Topology {
    line_bidi(n)
}

/// Kautz graph K(k, m): the de Bruijn variant without repeated symbols —
/// nodes are strings s₁…s_{m+1} over k+1 symbols with sᵢ ≠ sᵢ₊₁, and
/// u = s₁…s_{m+1} → s₂…s_{m+1}a for every a ≠ s_{m+1}. Self-loop-free by
/// construction, strongly connected, D = m + 1, out-degree exactly k —
/// the densest known bounded-degree/low-diameter family, a harder E2/E6
/// workload than de Bruijn.
pub fn kautz(k: usize, m: usize) -> Topology {
    assert!(k >= 2 && m >= 1);
    // enumerate nodes as (first symbol, sequence of "offsets" 1..=k):
    // a string maps to an integer in (k+1)·k^m.
    let n = (k + 1) * k.pow(m as u32);
    let decode = |mut x: usize| -> Vec<usize> {
        // reconstruct the symbol string of length m+1
        let first = x % (k + 1);
        x /= k + 1;
        let mut sym = vec![first];
        for _ in 0..m {
            let off = x % k + 1; // offset 1..=k avoids repetition
            x /= k;
            let prev = *sym.last().unwrap();
            sym.push((prev + off) % (k + 1));
        }
        sym
    };
    let encode = |sym: &[usize]| -> usize {
        let mut x = 0usize;
        for w in (1..sym.len()).rev() {
            let prev = sym[w - 1];
            let off = (sym[w] + k + 1 - prev) % (k + 1);
            debug_assert!(off >= 1);
            x = x * k + (off - 1);
        }
        x * (k + 1) + sym[0]
    };
    let mut b = TopologyBuilder::new(n, k as u8);
    for u in 0..n {
        let sym = decode(u);
        let last = *sym.last().unwrap();
        for a in 0..=k {
            if a == last {
                continue;
            }
            let mut next: Vec<usize> = sym[1..].to_vec();
            next.push(a);
            let v = encode(&next);
            debug_assert_ne!(u, v, "kautz graphs are self-loop-free");
            b.connect_auto(NodeId(u as u32), NodeId(v as u32))
                .expect("kautz wiring");
        }
    }
    b.build().expect("kautz is a valid network")
}

/// Bidirectional hypercube Q_d: 2^d nodes, wires both ways across every
/// dimension. δ = d, D = d = log₂N. The classic HPC interconnect, included
/// as a "this is what your cluster fabric looks like" workload.
pub fn hypercube_bidi(dims: u32) -> Topology {
    assert!(
        (1..=7).contains(&dims),
        "delta = dims must stay a small constant"
    );
    let n = 1usize << dims;
    let mut b = TopologyBuilder::new(n, dims as u8);
    for u in 0..n {
        for bit in 0..dims {
            let v = u ^ (1 << bit);
            if u < v {
                b.connect_auto(NodeId(u as u32), NodeId(v as u32))
                    .expect("cube wiring");
                b.connect_auto(NodeId(v as u32), NodeId(u as u32))
                    .expect("cube wiring");
            }
        }
    }
    b.build().expect("hypercube is a valid network")
}

/// Small complete bidirectional network (every ordered pair wired).
/// Only valid for n ≤ δ_max; used in tests for dense adversarial cases.
pub fn complete_bidi(n: usize) -> Topology {
    assert!(
        (2..=9).contains(&n),
        "complete networks only make sense tiny (delta = n-1)"
    );
    let mut b = TopologyBuilder::new(n, (n - 1) as u8);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.connect_auto(NodeId(u as u32), NodeId(v as u32))
                    .expect("complete wiring");
            }
        }
    }
    b.build().expect("complete network is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs_dist, diameter, is_strongly_connected};

    #[test]
    fn ring_shape() {
        let t = ring(6);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_edges(), 6);
        assert!(is_strongly_connected(&t));
        assert_eq!(diameter(&t), 5);
        for u in t.node_ids() {
            assert_eq!(t.out_degree(u), 1);
            assert_eq!(t.in_degree(u), 1);
        }
    }

    #[test]
    fn line_bidi_distances() {
        let t = line_bidi(5);
        let d = bfs_dist(&t, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert!(is_strongly_connected(&t));
        assert_eq!(diameter(&t), 4);
    }

    #[test]
    fn torus_regular_and_connected() {
        let t = torus(4, 4);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_edges(), 32);
        assert!(is_strongly_connected(&t));
        for u in t.node_ids() {
            assert_eq!(t.out_degree(u), 2);
            assert_eq!(t.in_degree(u), 2);
        }
    }

    #[test]
    fn torus_single_row_is_ring() {
        let t = torus(5, 1);
        assert_eq!(t.num_edges(), 5);
        assert_eq!(diameter(&t), 4);
    }

    #[test]
    fn debruijn_diameter_is_logarithmic() {
        let t = debruijn(2, 4); // 16 nodes
        assert_eq!(t.num_nodes(), 16);
        assert!(is_strongly_connected(&t));
        assert!(
            diameter(&t) <= 5,
            "D should be ~m = 4, got {}",
            diameter(&t)
        );
        // self-loops at 0 and k^m - 1 dropped:
        assert_eq!(t.out_degree(NodeId(0)), 1);
        assert_eq!(t.out_degree(NodeId(15)), 1);
    }

    #[test]
    fn random_sc_is_strongly_connected_many_seeds() {
        for seed in 0..30 {
            let t = random_sc(30, 3, seed);
            assert!(is_strongly_connected(&t), "seed {seed}");
            for u in t.node_ids() {
                assert!(t.out_degree(u) >= 1 && t.out_degree(u) <= 3);
                assert!(t.in_degree(u) >= 1 && t.in_degree(u) <= 3);
            }
        }
    }

    #[test]
    fn random_sc_is_deterministic() {
        let a = random_sc(50, 4, 7);
        let b = random_sc(50, 4, 7);
        assert_eq!(a, b);
        let c = random_sc(50, 4, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_sc_density_close_to_delta() {
        let t = random_sc(200, 4, 1);
        let avg = t.num_edges() as f64 / 200.0;
        assert!(avg > 2.5, "expected density near delta = 4, got {avg}");
    }

    #[test]
    fn faulty_grid_strongly_connected() {
        for seed in 0..10 {
            let t = bidi_grid_faulty(5, 4, 0.2, seed);
            assert!(is_strongly_connected(&t), "seed {seed}");
            assert_eq!(t.num_nodes(), 20);
        }
    }

    #[test]
    fn faulty_grid_zero_p_is_full_grid() {
        let t = bidi_grid_faulty(3, 3, 0.0, 0);
        // 12 undirected grid edges, both directions each
        assert_eq!(t.num_edges(), 24);
    }

    #[test]
    fn tree_loop_shape() {
        let t = tree_loop(2, &[0, 1, 2, 3]);
        assert_eq!(t.num_nodes(), 7);
        // 6 tree edges * 2 directions + 4 loop edges
        assert_eq!(t.num_edges(), 16);
        assert!(is_strongly_connected(&t));
        assert!(diameter(&t) <= 5);
    }

    #[test]
    fn tree_loop_distinct_permutations_distinct_topologies() {
        let a = tree_loop(2, &[0, 1, 2, 3]);
        let b = tree_loop(2, &[0, 2, 1, 3]);
        assert_ne!(a.sorted_edges(), b.sorted_edges());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn tree_loop_rejects_bad_perm() {
        let _ = tree_loop(2, &[0, 1, 2, 2]);
    }

    #[test]
    fn tree_loop_random_deterministic() {
        assert_eq!(tree_loop_random(3, 5), tree_loop_random(3, 5));
    }

    #[test]
    fn kautz_shape() {
        let t = kautz(2, 2); // 12 nodes, out-degree 2
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_edges(), 24);
        assert!(is_strongly_connected(&t));
        assert_eq!(diameter(&t), 3); // D = m + 1
        for u in t.node_ids() {
            assert_eq!(t.out_degree(u), 2);
            assert_eq!(t.in_degree(u), 2);
        }
    }

    #[test]
    fn kautz_larger_instances_connected() {
        for (k, m) in [(2usize, 3usize), (3, 2)] {
            let t = kautz(k, m);
            assert_eq!(t.num_nodes(), (k + 1) * k.pow(m as u32));
            assert!(is_strongly_connected(&t), "kautz({k},{m})");
            assert!(diameter(&t) as usize <= m + 1);
        }
    }

    #[test]
    fn hypercube_shape() {
        let t = hypercube_bidi(4);
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.num_edges(), 64);
        assert!(is_strongly_connected(&t));
        assert_eq!(diameter(&t), 4);
        for u in t.node_ids() {
            assert_eq!(t.out_degree(u), 4);
        }
    }

    #[test]
    fn complete_bidi_shape() {
        let t = complete_bidi(4);
        assert_eq!(t.num_edges(), 12);
        assert!(is_strongly_connected(&t));
        assert_eq!(diameter(&t), 1);
    }

    #[test]
    fn two_cycle_chain_is_line() {
        assert_eq!(two_cycle_chain(4), line_bidi(4));
    }
}
