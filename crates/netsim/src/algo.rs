//! Reference graph algorithms over [`Topology`].
//!
//! These run on the simulator's omniscient view of the network and serve two
//! purposes: (a) generators use them to enforce model preconditions (strong
//! connectivity), and (b) tests use them as ground truth for protocol
//! behaviour — in particular [`canonical_bfs`], which predicts exactly which
//! breadth-first tree the paper's growing snakes carve and therefore the
//! *canonical shortest paths* (Definition 4.1) the master computer decodes.

use crate::ids::{NodeId, Port};
use crate::topology::Topology;
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances (in hops) from `src` along forward edges.
pub fn bfs_dist(topo: &Topology, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.num_nodes()];
    let mut q = VecDeque::new();
    dist[src.idx()] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let du = dist[u.idx()];
        for (_, ep) in topo.out_edges(u) {
            if dist[ep.node.idx()] == UNREACHABLE {
                dist[ep.node.idx()] = du + 1;
                q.push_back(ep.node);
            }
        }
    }
    dist
}

/// BFS distances (in hops) *to* `dst` along forward edges, i.e. BFS from
/// `dst` over reversed edges.
pub fn bfs_dist_rev(topo: &Topology, dst: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.num_nodes()];
    let mut q = VecDeque::new();
    dist[dst.idx()] = 0;
    q.push_back(dst);
    while let Some(u) = q.pop_front() {
        let du = dist[u.idx()];
        for (_, ep) in topo.in_edges(u) {
            if dist[ep.node.idx()] == UNREACHABLE {
                dist[ep.node.idx()] = du + 1;
                q.push_back(ep.node);
            }
        }
    }
    dist
}

/// Is the network strongly connected? (Model precondition, §1.1.)
///
/// Kosaraju-style double sweep: every node reachable from node 0 along
/// forward edges and along reversed edges.
pub fn is_strongly_connected(topo: &Topology) -> bool {
    if topo.num_nodes() == 0 {
        return false;
    }
    let fwd = bfs_dist(topo, NodeId(0));
    if fwd.contains(&UNREACHABLE) {
        return false;
    }
    let rev = bfs_dist_rev(topo, NodeId(0));
    rev.iter().all(|&d| d != UNREACHABLE)
}

/// Strongly connected components via Tarjan's algorithm (iterative).
///
/// Returns a component id per node; ids are assigned in reverse topological
/// order of the condensation (Tarjan's natural output order).
pub fn tarjan_scc(topo: &Topology) -> Vec<u32> {
    let n = topo.num_nodes();
    const NONE: u32 = u32::MAX;
    let mut index = vec![NONE; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![NONE; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut next_comp = 0u32;

    // Explicit DFS stack of (node, out-edge cursor).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != NONE {
            continue;
        }
        call.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            let succs: Vec<u32> = topo.out_edges(NodeId(v)).map(|(_, ep)| ep.node.0).collect();
            if *cursor < succs.len() {
                let w = succs[*cursor];
                *cursor += 1;
                if index[w as usize] == NONE {
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        // Tarjan guarantees v is still on the stack when
                        // its SCC closes, so the pop cannot miss.
                        #[allow(clippy::expect_used)]
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp[w as usize] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// Exact directed diameter D: `max_{u,v} dist(u, v)` over ordered pairs.
///
/// Panics if the network is not strongly connected (diameter undefined).
/// All-pairs BFS, O(N·(N+E)); fine for the network sizes the harness uses.
pub fn diameter(topo: &Topology) -> u32 {
    let mut d = 0;
    for u in topo.node_ids() {
        let dist = bfs_dist(topo, u);
        for &x in &dist {
            assert!(
                x != UNREACHABLE,
                "diameter of a non-strongly-connected network"
            );
            d = d.max(x);
        }
    }
    d
}

/// One node's entry in a canonical breadth-first tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CanonicalEntry {
    /// Hop distance from the tree root (`UNREACHABLE` if unreached).
    pub dist: u32,
    /// The in-port through which the first (canonical) arrival happens.
    pub parent_in_port: Port,
    /// The node on the far side of `parent_in_port`.
    pub parent: NodeId,
    /// The out-port of `parent` that feeds `parent_in_port`.
    pub parent_out_port: Port,
}

/// The canonical BFS tree rooted at `src`, mirroring the paper's growing
/// snakes: all frontier nodes transmit simultaneously, a node adopts the
/// first arrival, and simultaneous arrivals are broken by the
/// lowest-numbered in-port (paper §4.2.1, footnote 1).
///
/// Entry for `src` itself is `None` (the initiator has no parent).
pub fn canonical_bfs(topo: &Topology, src: NodeId) -> Vec<Option<CanonicalEntry>> {
    let n = topo.num_nodes();
    let mut entries: Vec<Option<CanonicalEntry>> = vec![None; n];
    let mut dist = vec![UNREACHABLE; n];
    dist[src.idx()] = 0;
    let mut frontier = vec![src];
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        // Collect all arrivals at distance d, then resolve ties per node by
        // the lowest in-port. Iterating candidates in (node, in-port) order
        // makes "first wins" deterministic.
        let mut next = Vec::new();
        let mut arrivals: Vec<(NodeId, Port, NodeId, Port)> = Vec::new();
        for &u in &frontier {
            for (out_port, ep) in topo.out_edges(u) {
                if dist[ep.node.idx()] == UNREACHABLE {
                    arrivals.push((ep.node, ep.port, u, out_port));
                }
            }
        }
        arrivals.sort_unstable_by_key(|&(v, i, _, _)| (v, i));
        for (v, in_port, u, out_port) in arrivals {
            if dist[v.idx()] == UNREACHABLE {
                dist[v.idx()] = d;
                entries[v.idx()] = Some(CanonicalEntry {
                    dist: d,
                    parent_in_port: in_port,
                    parent: u,
                    parent_out_port: out_port,
                });
                next.push(v);
            }
        }
        frontier = next;
    }
    entries
}

/// The canonical shortest path `src → dst` as a sequence of
/// `(out-port, in-port)` hops, derived from [`canonical_bfs`].
///
/// Returns `None` if `dst` is unreachable from `src`. For `src == dst`
/// returns the empty path.
pub fn canonical_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<(Port, Port)>> {
    let tree = canonical_bfs(topo, src);
    if src == dst {
        return Some(Vec::new());
    }
    let mut hops = Vec::new();
    let mut cur = dst;
    while cur != src {
        let e = tree[cur.idx()]?;
        hops.push((e.parent_out_port, e.parent_in_port));
        cur = e.parent;
    }
    hops.reverse();
    Some(hops)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;
    use crate::generators;
    use crate::topology::TopologyBuilder;

    fn ring(n: usize) -> Topology {
        generators::ring(n)
    }

    #[test]
    fn bfs_on_ring() {
        let t = ring(5);
        let d = bfs_dist(&t, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let dr = bfs_dist_rev(&t, NodeId(0));
        assert_eq!(dr, vec![0, 4, 3, 2, 1]);
    }

    #[test]
    fn ring_strongly_connected_and_diameter() {
        let t = ring(7);
        assert!(is_strongly_connected(&t));
        assert_eq!(diameter(&t), 6);
    }

    #[test]
    fn broken_ring_not_strongly_connected() {
        // 0 -> 1 -> 2 and 2 -> 1 only: 1,2 can't reach 0... but then 0 has no
        // in-port, so build a shape that passes the builder: 0->1, 1->2, 2->1,
        // 1->0 missing — use 2->0? that'd be a ring. Instead: two 2-cycles
        // sharing no edge, bridged one way.
        let mut b = TopologyBuilder::new(4, 2);
        b.connect_auto(NodeId(0), NodeId(1)).unwrap();
        b.connect_auto(NodeId(1), NodeId(0)).unwrap();
        b.connect_auto(NodeId(2), NodeId(3)).unwrap();
        b.connect_auto(NodeId(3), NodeId(2)).unwrap();
        b.connect_auto(NodeId(1), NodeId(2)).unwrap(); // one-way bridge
        let t = b.build().unwrap();
        assert!(!is_strongly_connected(&t));
        let comp = tarjan_scc(&t);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn tarjan_matches_double_bfs_on_random_graphs() {
        for seed in 0..20 {
            let t = generators::random_sc(40, 3, seed);
            let comp = tarjan_scc(&t);
            let all_same = comp.iter().all(|&c| c == comp[0]);
            assert_eq!(all_same, is_strongly_connected(&t));
            assert!(all_same, "random_sc must be strongly connected");
        }
    }

    #[test]
    fn tarjan_on_dag_of_cycles() {
        // 0<->1 -> 2<->3 -> 4<->5 : three components in a chain.
        let mut b = TopologyBuilder::new(6, 3);
        for &(u, v) in &[
            (0, 1),
            (1, 0),
            (2, 3),
            (3, 2),
            (4, 5),
            (5, 4),
            (1, 2),
            (3, 4),
        ] {
            b.connect_auto(NodeId(u), NodeId(v)).unwrap();
        }
        // give 0 an in-edge from 1 (already), 4 in from 3 (already): builder ok
        let t = b.build().unwrap();
        let comp = tarjan_scc(&t);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[2], comp[4]);
    }

    #[test]
    fn canonical_bfs_distances_match_bfs() {
        for seed in 0..10 {
            let t = generators::random_sc(60, 3, seed);
            let d = bfs_dist(&t, NodeId(0));
            let c = canonical_bfs(&t, NodeId(0));
            for v in t.node_ids() {
                if v == NodeId(0) {
                    assert!(c[v.idx()].is_none());
                } else {
                    assert_eq!(c[v.idx()].unwrap().dist, d[v.idx()]);
                }
            }
        }
    }

    #[test]
    fn canonical_bfs_tie_break_prefers_lowest_in_port() {
        // Diamond: 0 -> 1, 0 -> 2, 1 -> 3 (in-port chosen), 2 -> 3.
        // Both arrivals at 3 happen at distance 2 simultaneously; the lower
        // in-port must win regardless of insertion order.
        let mut b = TopologyBuilder::new(4, 2);
        b.connect(NodeId(0), Port(0), NodeId(1), Port(0)).unwrap();
        b.connect(NodeId(0), Port(1), NodeId(2), Port(0)).unwrap();
        b.connect(NodeId(2), Port(0), NodeId(3), Port(0)).unwrap(); // in-port 0 via node 2
        b.connect(NodeId(1), Port(0), NodeId(3), Port(1)).unwrap(); // in-port 1 via node 1
                                                                    // close the graph: 3 -> 0
        b.connect(NodeId(3), Port(0), NodeId(0), Port(0)).unwrap();
        // give 1 and 2 in..: 1 has in from 0 ok; 2 in from 0 ok; all good
        let t = b.build().unwrap();
        let c = canonical_bfs(&t, NodeId(0));
        let e3 = c[3].unwrap();
        assert_eq!(e3.parent_in_port, Port(0));
        assert_eq!(e3.parent, NodeId(2));
    }

    #[test]
    fn canonical_path_walks_to_destination() {
        for seed in 0..10 {
            let t = generators::random_sc(50, 3, seed);
            let d = bfs_dist(&t, NodeId(0));
            for v in t.node_ids() {
                let p = canonical_path(&t, NodeId(0), v).unwrap();
                assert_eq!(p.len() as u32, d[v.idx()]);
                let outs: Vec<Port> = p.iter().map(|&(o, _)| o).collect();
                assert_eq!(t.walk_out_ports(NodeId(0), &outs), Some(v));
                // in-ports must match the wires walked
                let mut cur = NodeId(0);
                for &(o, i) in &p {
                    let ep = t.out_endpoint(cur, o).unwrap();
                    assert_eq!(ep.port, i);
                    cur = ep.node;
                }
            }
        }
    }

    #[test]
    fn canonical_path_empty_for_self() {
        let t = ring(4);
        assert_eq!(canonical_path(&t, NodeId(2), NodeId(2)), Some(vec![]));
    }

    #[test]
    fn diameter_of_two_cycle_is_one() {
        let t = ring(2);
        assert_eq!(diameter(&t), 1);
    }

    #[test]
    fn diameter_of_torus() {
        let t = generators::torus(4, 3);
        // directed torus: wrap-around right+down moves only; D = (w-1)+(h-1)
        // is wrong for directed wrap: worst case is w-1 + h-1 going forward
        // only... with wrap edges distance (dx mod w) + (dy mod h), max = (w-1)+(h-1).
        assert_eq!(diameter(&t), 3 + 2);
    }
}
