//! Strongly-typed identifiers for processors and ports.
//!
//! The paper's processors are anonymous (finite-state automata cannot hold
//! unique names); [`NodeId`]s exist only in the simulator and the master
//! computer, never inside protocol logic. Ports are numbered `0..δ`
//! (the paper numbers them from 1; we are 0-based throughout).

/// Index of a processor in a [`crate::Topology`].
///
/// `u32` keeps hot per-node tables small (see the type-size guidance in the
/// Rust performance book); networks beyond 2³² processors are out of scope.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The processor index as a `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A port number on a single processor, in `0..δ`.
///
/// The same `Port` value can denote an in-port or an out-port depending on
/// context; the two namespaces are independent (a processor has up to δ
/// in-ports *and* up to δ out-ports).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Port(pub u8);

impl Port {
    /// The port number as a `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A set of port numbers as a 64-bit mask: bit `p` set ⇔ port `p` present.
///
/// Connectivity awareness (§1.2.1) is per-port boolean state; one machine
/// word replaces the per-node `Vec<bool>` the engine used to allocate for
/// every processor's metadata. δ is capped at 64
/// ([`crate::topology::MAX_DELTA`]) so every legal port fits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct PortMask(u64);

impl PortMask {
    /// The empty set.
    pub const EMPTY: PortMask = PortMask(0);

    /// Build from a raw bit pattern (bit `p` ⇔ port `p`).
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        PortMask(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// A copy with `p` added.
    #[inline]
    pub fn with(self, p: Port) -> Self {
        debug_assert!(p.0 < 64, "ports are bounded by MAX_DELTA = 64");
        PortMask(self.0 | 1u64 << p.0)
    }

    /// Is `p` in the set?
    #[inline]
    pub fn contains(self, p: Port) -> bool {
        p.0 < 64 && self.0 & (1u64 << p.0) != 0
    }

    /// Number of ports in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The `i`-th port in ascending order, if any.
    #[inline]
    pub fn nth(self, i: usize) -> Option<Port> {
        self.iter().nth(i)
    }

    /// Iterate over the ports in ascending order.
    #[inline]
    pub fn iter(self) -> PortMaskIter {
        PortMaskIter(self.0)
    }
}

impl IntoIterator for PortMask {
    type Item = Port;
    type IntoIter = PortMaskIter;
    fn into_iter(self) -> PortMaskIter {
        self.iter()
    }
}

/// Ascending-order iterator over a [`PortMask`].
#[derive(Clone, Copy, Debug)]
pub struct PortMaskIter(u64);

impl Iterator for PortMaskIter {
    type Item = Port;

    #[inline]
    fn next(&mut self) -> Option<Port> {
        if self.0 == 0 {
            return None;
        }
        let p = self.0.trailing_zeros() as u8;
        self.0 &= self.0 - 1;
        Some(Port(p))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PortMaskIter {}

/// One end of a wire: a specific port on a specific processor.
///
/// Stored in the topology's adjacency tables: the entry for an out-port
/// holds the *remote* endpoint `(dst node, dst in-port)` and vice versa.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// The processor on this end of the wire.
    pub node: NodeId,
    /// The port on that processor the wire plugs into.
    pub port: Port,
}

impl Endpoint {
    /// Convenience constructor.
    #[inline]
    pub fn new(node: NodeId, port: Port) -> Self {
        Endpoint { node, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_order() {
        let a = NodeId(3);
        let b = NodeId(7);
        assert!(a < b);
        assert_eq!(a.idx(), 3);
        assert_eq!(format!("{a}"), "n3");
    }

    #[test]
    fn port_order_and_display() {
        assert!(Port(0) < Port(1));
        assert_eq!(Port(5).idx(), 5);
        assert_eq!(format!("{}", Port(2)), "p2");
    }

    #[test]
    fn endpoint_display_and_eq() {
        let e = Endpoint::new(NodeId(1), Port(2));
        assert_eq!(format!("{e}"), "n1:p2");
        assert_eq!(e, Endpoint::new(NodeId(1), Port(2)));
        assert_ne!(e, Endpoint::new(NodeId(1), Port(3)));
    }

    #[test]
    fn port_mask_set_semantics() {
        let m = PortMask::EMPTY.with(Port(0)).with(Port(5)).with(Port(63));
        assert!(m.contains(Port(0)) && m.contains(Port(5)) && m.contains(Port(63)));
        assert!(!m.contains(Port(1)));
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), [Port(0), Port(5), Port(63)]);
        assert_eq!(m.nth(1), Some(Port(5)));
        assert_eq!(m.nth(3), None);
        assert!(PortMask::EMPTY.is_empty());
        assert_eq!(std::mem::size_of::<PortMask>(), 8);
    }

    #[test]
    fn ids_are_small() {
        // Hot tables index by these; keep them machine-word friendly.
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Port>(), 1);
        assert!(std::mem::size_of::<Endpoint>() <= 8);
    }
}
