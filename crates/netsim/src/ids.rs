//! Strongly-typed identifiers for processors and ports.
//!
//! The paper's processors are anonymous (finite-state automata cannot hold
//! unique names); [`NodeId`]s exist only in the simulator and the master
//! computer, never inside protocol logic. Ports are numbered `0..δ`
//! (the paper numbers them from 1; we are 0-based throughout).

/// Index of a processor in a [`crate::Topology`].
///
/// `u32` keeps hot per-node tables small (see the type-size guidance in the
/// Rust performance book); networks beyond 2³² processors are out of scope.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The processor index as a `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A port number on a single processor, in `0..δ`.
///
/// The same `Port` value can denote an in-port or an out-port depending on
/// context; the two namespaces are independent (a processor has up to δ
/// in-ports *and* up to δ out-ports).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Port(pub u8);

impl Port {
    /// The port number as a `usize`, for table lookups.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One end of a wire: a specific port on a specific processor.
///
/// Stored in the topology's adjacency tables: the entry for an out-port
/// holds the *remote* endpoint `(dst node, dst in-port)` and vice versa.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Endpoint {
    /// The processor on this end of the wire.
    pub node: NodeId,
    /// The port on that processor the wire plugs into.
    pub port: Port,
}

impl Endpoint {
    /// Convenience constructor.
    #[inline]
    pub fn new(node: NodeId, port: Port) -> Self {
        Endpoint { node, port }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.node, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_order() {
        let a = NodeId(3);
        let b = NodeId(7);
        assert!(a < b);
        assert_eq!(a.idx(), 3);
        assert_eq!(format!("{a}"), "n3");
    }

    #[test]
    fn port_order_and_display() {
        assert!(Port(0) < Port(1));
        assert_eq!(Port(5).idx(), 5);
        assert_eq!(format!("{}", Port(2)), "p2");
    }

    #[test]
    fn endpoint_display_and_eq() {
        let e = Endpoint::new(NodeId(1), Port(2));
        assert_eq!(format!("{e}"), "n1:p2");
        assert_eq!(e, Endpoint::new(NodeId(1), Port(2)));
        assert_ne!(e, Endpoint::new(NodeId(1), Port(3)));
    }

    #[test]
    fn ids_are_small() {
        // Hot tables index by these; keep them machine-word friendly.
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Port>(), 1);
        assert!(std::mem::size_of::<Endpoint>() <= 8);
    }
}
