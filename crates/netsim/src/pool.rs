//! Persistent worker pool for [`EngineMode::Parallel`](crate::EngineMode).
//!
//! The old parallel mode spawned and joined fresh `thread::scope` workers
//! twice per tick; at protocol tick rates the dispatch tax dwarfed the
//! work. This pool is built once at engine construction, parks between
//! jobs, and is coordinated entirely through atomics — a seqlock-style
//! epoch handshake, never a Mutex/Condvar (the `no-lock-in-tick-path`
//! lint enforces that), so a steady-state dispatch allocates nothing and
//! takes no lock.
//!
//! Protocol per job (one job = one tick phase over all shards):
//!
//! 1. The main thread publishes the phase function, a context pointer,
//!    and the shard count, resets the claim/done/exit counters, bumps
//!    `seq` (release), and unparks every worker. The release bump makes
//!    the published fields visible to any thread that acquires `seq`.
//! 2. Every thread — workers *and* the main thread — claims shard
//!    indices with a `fetch_add` on `next` and runs the phase on each
//!    claimed shard, bumping `done` per completed shard.
//! 3. The main thread waits until `done` reaches the shard count **and**
//!    every worker has bumped `exited` (left its claim loop). The second
//!    condition is what makes the claim counter reusable: without it a
//!    straggler's final empty `fetch_add` could race the next job's
//!    reset and steal a shard under the previous phase function.
//!
//! Workers spin briefly, then yield, then `thread::park`. The main
//! thread always unparks after publishing; the park token makes the
//! check-then-park race benign (a worker that parks just after the
//! unpark consumes the token and returns immediately). A phase panic is
//! caught in the claiming thread so the barrier still completes, and
//! rethrown on the main thread after the job.
//!
//! The phase function is type-erased (`unsafe fn(*const (), usize)`)
//! because the engine is generic over its automaton type while the pool
//! is not — and because the context points at the engine's stack frame,
//! it is republished on every dispatch and must never outlive the call.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::{AcqRel, Acquire, Release};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A type-erased tick phase: called once per shard index with the
/// engine's `ParCtx` behind the pointer.
///
/// # Safety
/// The pointer must reference a live `ParCtx` for the engine that
/// published the job, and the phase must only touch state owned by (or
/// provably disjoint per) the given shard index.
pub(crate) type PhaseFn = unsafe fn(*const (), usize);

/// Spins before the first yield while waiting for work or completion.
const SPINS_BEFORE_YIELD: u32 = 64;
/// Yields before a waiting worker parks. Kept short: on a loaded or
/// single-core host the scheduler, not the spin, is what makes progress.
const YIELDS_BEFORE_PARK: u32 = 16;

/// Atomics shared between the main thread and the workers.
struct PoolShared {
    /// Job epoch; bumped (release) once per published job.
    seq: AtomicU64,
    /// Phase function of the current job (type-erased).
    job_fn: AtomicPtr<()>,
    /// `ParCtx` pointer of the current job.
    job_ctx: AtomicPtr<()>,
    /// Shard count of the current job.
    shards: AtomicUsize,
    /// Claim counter: `fetch_add` hands out shard indices.
    next: AtomicUsize,
    /// Completed-shard counter.
    done: AtomicUsize,
    /// Workers that have left the current job's claim loop.
    exited: AtomicUsize,
    /// A phase panicked in some claiming thread.
    panicked: AtomicBool,
    /// Tells parked workers to exit (engine drop).
    shutdown: AtomicBool,
}

/// Pre-spawned tick-phase workers. Built once per parallel engine
/// (worker count = shards − 1: the main thread is the final worker),
/// parked between jobs, shut down and joined on drop.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` parked phase workers.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            seq: AtomicU64::new(0),
            job_fn: AtomicPtr::new(std::ptr::null_mut()),
            job_ctx: AtomicPtr::new(std::ptr::null_mut()),
            shards: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            exited: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gtd-shard-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .unwrap_or_else(|e| panic!("failed to spawn pool worker {i}: {e}"))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Worker threads owned by the pool (excludes the main thread).
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `phase` once per shard in `0..shards`, fanned over the pool
    /// plus the calling thread, and return when every shard completed
    /// and every worker is idle again. Allocation-free.
    ///
    /// # Safety
    /// `ctx` must satisfy the [`PhaseFn`] contract for `phase` and stay
    /// valid until this call returns.
    pub(crate) unsafe fn dispatch(&self, phase: PhaseFn, ctx: *const (), shards: usize) {
        let sh = &*self.shared;
        sh.job_fn.store(phase as *mut (), Release);
        sh.job_ctx.store(ctx.cast_mut(), Release);
        sh.shards.store(shards, Release);
        sh.next.store(0, Release);
        sh.done.store(0, Release);
        sh.exited.store(0, Release);
        sh.seq.fetch_add(1, AcqRel);
        for h in &self.handles {
            h.thread().unpark();
        }
        run_claims(sh, phase, ctx, shards);
        let workers = self.handles.len();
        let mut spins = 0u32;
        while sh.done.load(Acquire) < shards || sh.exited.load(Acquire) < workers {
            spins += 1;
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if sh.panicked.swap(false, AcqRel) {
            panic!("a parallel tick phase panicked in the worker pool");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            // A worker that panicked outside a phase (impossible today)
            // already poisoned nothing; ignore its join result.
            let _ = h.join();
        }
    }
}

/// Claim shard indices until the job is exhausted, running the phase on
/// each. Shared by workers and the dispatching main thread. A panicking
/// phase is recorded and swallowed so the barrier still completes.
fn run_claims(sh: &PoolShared, phase: PhaseFn, ctx: *const (), shards: usize) {
    loop {
        let i = sh.next.fetch_add(1, AcqRel);
        if i >= shards {
            return;
        }
        if catch_unwind(AssertUnwindSafe(|| unsafe { phase(ctx, i) })).is_err() {
            sh.panicked.store(true, Release);
        }
        sh.done.fetch_add(1, AcqRel);
    }
}

/// A pool worker: wait for the next epoch (spin → yield → park), run the
/// published job's claim loop, check out via `exited`, repeat until
/// shutdown.
fn worker_loop(sh: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        let seq = loop {
            let s = sh.seq.load(Acquire);
            if s != seen {
                break s;
            }
            if sh.shutdown.load(Acquire) {
                return;
            }
            spins += 1;
            if spins < SPINS_BEFORE_YIELD {
                std::hint::spin_loop();
            } else if spins < SPINS_BEFORE_YIELD + YIELDS_BEFORE_PARK {
                std::thread::yield_now();
            } else {
                std::thread::park();
            }
        };
        seen = seq;
        let raw = sh.job_fn.load(Acquire);
        let ctx = sh.job_ctx.load(Acquire).cast_const();
        let shards = sh.shards.load(Acquire);
        // The erased pointer was produced from a PhaseFn in dispatch();
        // round-tripping it through *mut () preserves the value.
        let phase = unsafe { std::mem::transmute::<*mut (), PhaseFn>(raw) };
        run_claims(sh, phase, ctx, shards);
        sh.exited.fetch_add(1, AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::Relaxed;

    /// A phase that adds `shard + 1` into a per-shard cell.
    unsafe fn bump(ctx: *const (), s: usize) {
        let cells = &*ctx.cast::<Vec<AtomicUsize>>();
        cells[s].fetch_add(s + 1, Relaxed);
    }

    #[test]
    fn dispatch_runs_every_shard_exactly_once() {
        let pool = WorkerPool::new(3);
        let cells: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            unsafe { pool.dispatch(bump, (&cells as *const Vec<AtomicUsize>).cast(), 7) };
        }
        for (s, c) in cells.iter().enumerate() {
            assert_eq!(c.load(Relaxed), (s + 1) * 100, "shard {s}");
        }
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let cells: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        unsafe { pool.dispatch(bump, (&cells as *const Vec<AtomicUsize>).cast(), 4) };
        assert_eq!(cells[3].load(Relaxed), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        drop(pool); // must not hang
    }

    #[test]
    fn phase_panic_is_rethrown_on_the_dispatching_thread() {
        unsafe fn boom(_: *const (), s: usize) {
            if s == 1 {
                panic!("shard 1 exploded");
            }
        }
        let pool = WorkerPool::new(1);
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            pool.dispatch(boom, std::ptr::null(), 3);
        }));
        assert!(err.is_err());
        // the pool is still usable after a panic
        let cells: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        unsafe { pool.dispatch(bump, (&cells as *const Vec<AtomicUsize>).cast(), 2) };
        assert_eq!(cells[1].load(Relaxed), 2);
    }
}
