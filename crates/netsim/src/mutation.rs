//! Topology mutations — the paper's §1 motivating scenario made
//! declarative.
//!
//! "The topology or size of the network might change", forcing the master
//! to re-determine the map. This module turns such changes into data: a
//! [`TopologyMutation`] names one structural edit (drop a wire, add a
//! wire, rewire a wire's head, swap two processors' labels, splice a
//! fresh processor in, remove a processor, or burst a processor's
//! out-wires), a [`ScheduledMutation`] stamps it with the global clock
//! tick at which it happens, and a [`MutationSchedule`] is the full
//! timeline of a dynamic scenario.
//!
//! Mutations are **validity-preserving**: [`Topology::apply`] never
//! produces a network that violates the model (δ port bound, ≥ 1
//! connected in-/out-port per processor, no self-loops) or breaks strong
//! connectivity — the protocol's standing precondition. Each mutation
//! carries a `selector`: a deterministic scan starts at the selector and
//! settles on the first candidate edit whose result is valid, so the same
//! `(topology, mutation)` pair always yields the identical new topology
//! and campaign grids stay byte-reproducible. When *no* candidate of the
//! requested kind exists (a directed ring cannot lose a wire — every edge
//! is a bridge), [`Topology::apply`] reports
//! [`MutationError::NoCandidate`] and
//! [`Topology::apply_or_fallback`] degrades to the always-applicable
//! [`MutationKind::SwapLabels`] so a scheduled network event still
//! happens and remap latency stays measurable.
//!
//! The membership kinds ([`MutationKind::NodeJoin`],
//! [`MutationKind::NodeLeave`]) change N itself: a join appends processor
//! `n` and splices it into an existing wire (`u→v` becomes `u→n→v`), a
//! leave removes a processor, shifts higher ids down by one, and
//! deterministically re-stitches the departed processor's in- and
//! out-wires pairwise so the network stays strongly connected within the
//! δ bound. The collector's host is never removed, so leaves take the
//! root-aware entry points ([`Topology::apply_rooted`],
//! [`Topology::apply_or_fallback_rooted`]); the root-free methods protect
//! processor 0 by convention. Each application reports a
//! [`MembershipChange`] so engines and collectors can track how node ids
//! (the root's included) relabel across the edit. When a leave has no
//! valid candidate (N ≤ 2, or every removal disconnects the network), the
//! swap fallback fires as for any other kind.
//!
//! ```
//! use gtd_netsim::{generators, MutationKind, TopologyMutation};
//!
//! let topo = generators::random_sc(24, 3, 7);
//! let mutated = topo
//!     .apply(&TopologyMutation { kind: MutationKind::DropEdge, selector: 3 })
//!     .expect("a random-sc graph has droppable wires");
//! assert_eq!(mutated.num_edges(), topo.num_edges() - 1);
//! assert!(gtd_netsim::algo::is_strongly_connected(&mutated));
//! ```

use crate::algo;
use crate::ids::{Endpoint, NodeId, Port};
use crate::topology::{Edge, Topology, TopologyBuilder};
use std::fmt;
use std::str::FromStr;

/// The seven structural edits a network can undergo.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// `drop-edge` — remove one wire.
    DropEdge,
    /// `add-edge` — wire a free out-port to a free in-port.
    AddEdge,
    /// `rewire` — exchange the heads of two wires (degree-preserving, so
    /// it applies even to port-saturated networks).
    RewirePort,
    /// `swap` — exchange two processors' positions in the wiring (as if
    /// their cable bundles were swapped). Always applicable.
    SwapLabels,
    /// `node-join` — splice a fresh processor into an existing wire
    /// (`u→v` becomes `u→new→v`). N grows by one; always applicable.
    NodeJoin,
    /// `node-leave` — remove a processor and re-stitch its wires pairwise
    /// (predecessors to successors) so the network stays strongly
    /// connected. N shrinks by one; higher node ids shift down.
    NodeLeave,
    /// `burst` — a correlated failure of one processor's out-wires: drop
    /// every out-wire of the selected processor that validity allows
    /// (always keeping its last one), or exchange their heads when none
    /// can be dropped — one scheduled event, the paper's §1.2.2 region
    /// fault in miniature.
    Burst,
    /// `node-restart` — power-cycle one processor: it leaves the protocol
    /// at the scheduled tick and rejoins with amnesia after a fixed
    /// downtime, its wires untouched (the paper's §1.2.2 transient fault,
    /// exercising RESET parity). Structurally the identity — live
    /// drivers reset the victim's automaton via [`restart_victim`].
    NodeRestart,
    /// `burst-r` — radius-r region failure: drop the out-wires of every
    /// processor within `r` out-hops of the victim where validity and
    /// strong connectivity allow. The selector packs `victim:radius`
    /// (see [`burst_r_selector`] / [`burst_r_parts`]).
    BurstRadius,
}

impl MutationKind {
    /// Every kind, in canonical (registry) order.
    pub const ALL: [MutationKind; 9] = [
        MutationKind::DropEdge,
        MutationKind::AddEdge,
        MutationKind::RewirePort,
        MutationKind::SwapLabels,
        MutationKind::NodeJoin,
        MutationKind::NodeLeave,
        MutationKind::Burst,
        MutationKind::NodeRestart,
        MutationKind::BurstRadius,
    ];

    /// Stable suffix-grammar name.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::DropEdge => "drop-edge",
            MutationKind::AddEdge => "add-edge",
            MutationKind::RewirePort => "rewire",
            MutationKind::SwapLabels => "swap",
            MutationKind::NodeJoin => "node-join",
            MutationKind::NodeLeave => "node-leave",
            MutationKind::Burst => "burst",
            MutationKind::NodeRestart => "node-restart",
            MutationKind::BurstRadius => "burst-r",
        }
    }

    /// Look a kind up by its grammar name.
    pub fn by_name(name: &str) -> Option<MutationKind> {
        MutationKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Can this kind change the processor count?
    pub fn changes_membership(self) -> bool {
        matches!(self, MutationKind::NodeJoin | MutationKind::NodeLeave)
    }
}

impl fmt::Display for MutationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Registry entry describing one mutation kind (mirrors
/// [`FamilySpec`](crate::spec::FamilySpec) for the suffix grammar).
#[derive(Clone, Copy, Debug)]
pub struct MutationSpec {
    /// Suffix-grammar name (matches [`MutationKind::name`]).
    pub name: &'static str,
    /// A canonical suffix example.
    pub example: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every mutation kind, in display order — the enumerable source of truth
/// for `harness list`, docs and property tests.
pub const MUTATION_REGISTRY: &[MutationSpec] = &[
    MutationSpec {
        name: "drop-edge",
        example: "drop-edge=3@t500",
        summary: "remove one wire (validity-preserving scan from the selector)",
    },
    MutationSpec {
        name: "add-edge",
        example: "add-edge=1@t200",
        summary: "wire a free out-port to a free in-port",
    },
    MutationSpec {
        name: "rewire",
        example: "rewire=2@t200",
        summary: "exchange the heads of two wires (degree-preserving)",
    },
    MutationSpec {
        name: "swap",
        example: "swap=5@t900",
        summary: "swap two processors' cable bundles (always applicable)",
    },
    MutationSpec {
        name: "node-join",
        example: "node-join=2@t300",
        summary: "splice a fresh processor into an existing wire (N grows by one)",
    },
    MutationSpec {
        name: "node-leave",
        example: "node-leave=3@t500",
        summary: "remove a processor, re-stitching its wires (N shrinks by one)",
    },
    MutationSpec {
        name: "burst",
        example: "burst=5@t800",
        summary: "correlated failure of one processor's out-wires (drop or head-exchange)",
    },
    MutationSpec {
        name: "node-restart",
        example: "node-restart=3@t400",
        summary: "power-cycle a processor: amnesia rejoin after a fixed downtime, wires unchanged",
    },
    MutationSpec {
        name: "burst-r",
        example: "burst-r=5:2@t800",
        summary: "radius-r region failure: drop out-wires of every processor within r hops",
    },
];

/// Pack a `burst-r` `victim:radius` pair into a selector (victim in the
/// low 32 bits, radius in the high 32).
pub fn burst_r_selector(victim: u64, radius: u64) -> u64 {
    (radius.min(u64::from(u32::MAX)) << 32) | (victim & u64::from(u32::MAX))
}

/// Unpack a `burst-r` selector into `(victim scan start, raw radius)`.
/// The exact inverse of [`burst_r_selector`] — a radius of zero is kept
/// as written so `Display`/`FromStr` round-trip bit-for-bit; application
/// clamps the radius to ≥ 1, so a bare selector (radius bits zero) still
/// behaves as a radius-1 burst around the victim.
pub fn burst_r_parts(selector: u64) -> (u64, u64) {
    (selector & u64::from(u32::MAX), selector >> 32)
}

/// The processor a `node-restart` mutation power-cycles: a deterministic
/// cyclic scan from the selector, skipping the root (the collector's host
/// never goes dark; the model's n ≥ 2 guarantees a candidate).
pub fn restart_victim(topo: &Topology, selector: u64, root: NodeId) -> NodeId {
    let n = topo.num_nodes();
    for k in 0..n {
        let x = NodeId((((selector % n as u64) as usize + k) % n) as u32);
        if x != root {
            return x;
        }
    }
    root // unreachable: the model requires at least two processors
}

/// One structural edit, selected deterministically.
///
/// The `selector` is not an exact edge index but the *start* of a
/// deterministic candidate scan: the mutation applies to the first
/// candidate (cyclically from the selector) whose result is a valid,
/// strongly-connected network. This keeps mutations total over their
/// candidate space and independent of how the topology was produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TopologyMutation {
    /// What kind of edit.
    pub kind: MutationKind,
    /// Deterministic candidate selector.
    pub selector: u64,
}

impl fmt::Display for TopologyMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            MutationKind::BurstRadius => {
                let (victim, radius) = burst_r_parts(self.selector);
                write!(f, "{}={victim}:{radius}", self.kind)
            }
            _ => write!(f, "{}={}", self.kind, self.selector),
        }
    }
}

/// A mutation stamped with the global clock tick at which it happens.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduledMutation {
    /// Global tick at which the edit takes effect (between ticks).
    pub tick: u64,
    /// The edit.
    pub mutation: TopologyMutation,
}

impl fmt::Display for ScheduledMutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@t{}", self.mutation, self.tick)
    }
}

/// Why a mutation suffix (`kind=selector@tTICK`) failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MutationSuffixError {
    /// The suffix was empty.
    Empty,
    /// No `@t…` tick stamp.
    MissingTick,
    /// The tick after `@t` is not an unsigned integer (or the `t` marker
    /// is missing).
    BadTick {
        /// The offending tick text (after `@`).
        value: String,
    },
    /// The kind before `=` is not in the [`MUTATION_REGISTRY`].
    UnknownKind {
        /// The name that was given.
        kind: String,
    },
    /// A known kind with no `=selector`.
    MissingSelector,
    /// The selector after `=` is not an unsigned integer.
    BadSelector {
        /// The offending selector text.
        value: String,
    },
}

/// Levenshtein edit distance, for the [`MutationSuffixError::UnknownKind`]
/// nearest-name suggestion.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The registry kind nearest (by edit distance) to `kind`, ties broken by
/// registry order — the deterministic "did you mean" suggestion.
pub fn nearest_kind(kind: &str) -> &'static str {
    // min_by_key on a non-empty const registry always yields a value.
    #[allow(clippy::expect_used)]
    MUTATION_REGISTRY
        .iter()
        .map(|m| m.name)
        .min_by_key(|name| edit_distance(kind, name))
        .expect("registry is non-empty")
}

impl fmt::Display for MutationSuffixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationSuffixError::Empty => write!(f, "empty mutation suffix"),
            MutationSuffixError::MissingTick => {
                write!(f, "missing @t tick stamp (expected kind=selector@tTICK)")
            }
            MutationSuffixError::BadTick { value } => {
                write!(f, "tick {value:?} is not t<unsigned integer>")
            }
            MutationSuffixError::UnknownKind { kind } => {
                let known: Vec<&str> = MUTATION_REGISTRY.iter().map(|m| m.name).collect();
                write!(
                    f,
                    "unknown mutation kind {kind:?} (known: {}; did you mean {:?}?)",
                    known.join(", "),
                    nearest_kind(kind)
                )
            }
            MutationSuffixError::MissingSelector => {
                write!(f, "missing =selector (expected kind=selector@tTICK)")
            }
            MutationSuffixError::BadSelector { value } => {
                write!(f, "selector {value:?} is not an unsigned integer")
            }
        }
    }
}

impl std::error::Error for MutationSuffixError {}

impl ScheduledMutation {
    /// Parse one `kind=selector@tTICK` suffix. On failure the scheduled
    /// tick is reported alongside the reason whenever it parsed — spec
    /// errors must name the offending suffix *and* tick.
    pub fn parse_suffix(s: &str) -> Result<Self, (Option<u64>, MutationSuffixError)> {
        let s = s.trim();
        if s.is_empty() {
            return Err((None, MutationSuffixError::Empty));
        }
        let (head, tick_text) = s
            .split_once('@')
            .ok_or((None, MutationSuffixError::MissingTick))?;
        let tick_text = tick_text.trim();
        let tick: u64 = tick_text
            .strip_prefix('t')
            .and_then(|t| t.trim().parse().ok())
            .ok_or_else(|| {
                (
                    None,
                    MutationSuffixError::BadTick {
                        value: tick_text.to_string(),
                    },
                )
            })?;
        let head = head.trim();
        let (kind_text, selector_text) = match head.split_once('=') {
            Some((k, v)) => (k.trim(), Some(v.trim())),
            None => (head, None),
        };
        let kind = MutationKind::by_name(kind_text).ok_or_else(|| {
            (
                Some(tick),
                MutationSuffixError::UnknownKind {
                    kind: kind_text.to_string(),
                },
            )
        })?;
        let selector_text =
            selector_text.ok_or((Some(tick), MutationSuffixError::MissingSelector))?;
        let bad_selector = |value: &str| {
            (
                Some(tick),
                MutationSuffixError::BadSelector {
                    value: value.to_string(),
                },
            )
        };
        // `burst-r` selectors are `victim:radius` pairs (bare `victim`
        // reads as radius 1); every other kind takes a plain integer.
        let selector: u64 = if kind == MutationKind::BurstRadius {
            let (v_text, r_text) = match selector_text.split_once(':') {
                Some((v, r)) => (v.trim(), Some(r.trim())),
                None => (selector_text, None),
            };
            let victim: u64 = v_text.parse().map_err(|_| bad_selector(selector_text))?;
            let radius: u64 = match r_text {
                Some(t) => t.parse().map_err(|_| bad_selector(selector_text))?,
                None => 1,
            };
            burst_r_selector(victim, radius)
        } else {
            selector_text
                .parse()
                .map_err(|_| bad_selector(selector_text))?
        };
        Ok(ScheduledMutation {
            tick,
            mutation: TopologyMutation { kind, selector },
        })
    }
}

impl FromStr for ScheduledMutation {
    type Err = MutationSuffixError;

    fn from_str(s: &str) -> Result<Self, MutationSuffixError> {
        ScheduledMutation::parse_suffix(s).map_err(|(_, reason)| reason)
    }
}

/// A tick-ordered timeline of mutations (the dynamic half of a
/// [`DynamicSpec`](crate::spec::DynamicSpec)).
///
/// Insertion keeps the schedule sorted by tick (stable, so same-tick
/// mutations keep their insertion order), which makes the rendered suffix
/// string canonical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationSchedule {
    items: Vec<ScheduledMutation>,
}

impl MutationSchedule {
    /// An empty (static) schedule.
    pub fn new() -> Self {
        MutationSchedule::default()
    }

    /// Add a mutation at `tick`, keeping the timeline sorted.
    pub fn push(&mut self, tick: u64, mutation: TopologyMutation) {
        self.items.push(ScheduledMutation { tick, mutation });
        self.items.sort_by_key(|s| s.tick);
    }

    /// Builder-style [`MutationSchedule::push`].
    pub fn with(mut self, tick: u64, mutation: TopologyMutation) -> Self {
        self.push(tick, mutation);
        self
    }

    /// Number of scheduled mutations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the schedule empty (a static scenario)?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The timeline in tick order.
    pub fn items(&self) -> &[ScheduledMutation] {
        &self.items
    }

    /// Iterate the timeline in tick order.
    pub fn iter(&self) -> impl Iterator<Item = &ScheduledMutation> {
        self.items.iter()
    }

    /// The topology after the whole timeline has been applied to `base`,
    /// with the swap fallback for inapplicable mutations (the same
    /// semantics every dynamic driver uses). The collector is assumed to
    /// sit on processor 0 (see [`MutationSchedule::final_topology_rooted`]
    /// for other roots — `node-leave` never removes the root).
    pub fn final_topology(&self, base: &Topology) -> Topology {
        self.final_topology_rooted(base, NodeId(0))
    }

    /// [`MutationSchedule::final_topology`] for a collector on `root`.
    /// The root id is tracked across membership changes (a leave below
    /// the root shifts it down by one).
    pub fn final_topology_rooted(&self, base: &Topology, root: NodeId) -> Topology {
        let mut topo = base.clone();
        let mut root = root;
        for sm in &self.items {
            let applied = topo.apply_or_fallback_rooted(&sm.mutation, root);
            root = applied.membership.relabel(root);
            topo = applied.topology;
        }
        topo
    }
}

impl FromIterator<ScheduledMutation> for MutationSchedule {
    fn from_iter<I: IntoIterator<Item = ScheduledMutation>>(iter: I) -> Self {
        let mut s = MutationSchedule::new();
        for sm in iter {
            s.push(sm.tick, sm.mutation);
        }
        s
    }
}

/// How one applied mutation changed the processor set.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MembershipChange {
    /// The processor set is unchanged (the wire-level kinds).
    #[default]
    None,
    /// A fresh processor joined; it holds the highest id of the new
    /// topology (ids of existing processors are unchanged).
    Joined {
        /// The new processor's id in the *new* topology.
        node: NodeId,
    },
    /// A processor left. Ids above it shift down by one; `node` is its id
    /// in the *old* topology.
    Left {
        /// The departed processor's id in the *old* topology.
        node: NodeId,
    },
}

impl MembershipChange {
    /// Map a surviving processor's old id to its id in the new topology.
    /// `id` must not be the departed processor (leaves never remove the
    /// root, so tracked roots are always survivors).
    pub fn relabel(self, id: NodeId) -> NodeId {
        match self {
            MembershipChange::Left { node } => {
                debug_assert_ne!(id, node, "the departed processor has no new id");
                if id.0 > node.0 {
                    NodeId(id.0 - 1)
                } else {
                    id
                }
            }
            _ => id,
        }
    }
}

/// The result of [`Topology::apply_or_fallback_rooted`]: the new
/// topology, the kind actually applied (the swap fallback may differ from
/// the scheduled kind), and how the processor set changed.
#[derive(Clone, Debug, PartialEq)]
pub struct AppliedMutation {
    /// The mutated topology.
    pub topology: Topology,
    /// The kind actually applied.
    pub kind: MutationKind,
    /// Membership effect ([`MembershipChange::None`] for wire-level kinds).
    pub membership: MembershipChange,
}

/// Why a mutation could not be applied to a particular topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationError {
    /// No candidate edit of this kind yields a valid, strongly-connected
    /// network (e.g. dropping a wire from a directed ring).
    NoCandidate {
        /// The kind that had no candidate.
        kind: MutationKind,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::NoCandidate { kind } => write!(
                f,
                "no {kind} candidate keeps the network valid and strongly connected"
            ),
        }
    }
}

impl std::error::Error for MutationError {}

/// Rebuild a topology from an edge list; `None` if the wiring is invalid
/// or the result is not strongly connected.
fn rebuild(n: usize, delta: u8, edges: &[Edge]) -> Option<Topology> {
    let mut b = TopologyBuilder::new(n, delta);
    for e in edges {
        b.connect(e.src, e.src_port, e.dst, e.dst_port).ok()?;
    }
    let t = b.build().ok()?;
    algo::is_strongly_connected(&t).then_some(t)
}

fn free_out_port(topo: &Topology, node: NodeId) -> Option<Port> {
    (0..topo.delta())
        .map(Port)
        .find(|&o| !topo.out_mask(node).contains(o))
}

fn free_in_port(topo: &Topology, node: NodeId) -> Option<Port> {
    (0..topo.delta())
        .map(Port)
        .find(|&i| !topo.in_mask(node).contains(i))
}

/// Remove processor `x`, shift higher ids down, and re-stitch its wires:
/// the `i`-th feeder pairs with the `i`-th target cyclically, so every
/// feeder keeps an out-wire and every target an in-wire where ports
/// allow. Freed ports are reused first; extra stitches take the lowest
/// free ports. `None` when any stitch is impossible (port exhaustion,
/// forced self-loop leaving a node wireless) or the result is not
/// strongly connected.
fn try_leave(topo: &Topology, x: NodeId) -> Option<Topology> {
    let n = topo.num_nodes();
    if n < 3 {
        return None; // the model requires at least two processors
    }
    let change = MembershipChange::Left { node: x };
    let relabel = |id: NodeId| change.relabel(id);
    let mut b = TopologyBuilder::new(n - 1, topo.delta());
    for e in topo.sorted_edges() {
        if e.src == x || e.dst == x {
            continue;
        }
        b.connect(relabel(e.src), e.src_port, relabel(e.dst), e.dst_port)
            .ok()?;
    }
    // (feeder, its freed out-port) and (target, its freed in-port), in
    // x's port order — deterministic.
    let preds: Vec<(NodeId, Port)> = topo.in_edges(x).map(|(_, ep)| (ep.node, ep.port)).collect();
    let succs: Vec<(NodeId, Port)> = topo
        .out_edges(x)
        .map(|(_, ep)| (ep.node, ep.port))
        .collect();
    let (p, q) = (preds.len(), succs.len());
    for i in 0..p.max(q) {
        let (u, uo) = preds[i % p];
        let (v, vi) = succs[i % q];
        if u == v {
            continue; // a stitch here would be a self-loop
        }
        if i < p && i < q {
            b.connect(relabel(u), uo, relabel(v), vi).ok()?;
        } else {
            b.connect_auto(relabel(u), relabel(v)).ok()?;
        }
    }
    let t = b.build().ok()?;
    algo::is_strongly_connected(&t).then_some(t)
}

/// Radius-`r` region failure around `x`: BFS the out-edge ball of radius
/// `r` from the victim, then greedily drop each ball processor's
/// out-wires where validity and strong connectivity allow (always
/// keeping a processor's last out-wire). Ball processors are dropped in
/// ascending id order, so the edit is deterministic. `None` when the
/// region cannot lose a single wire.
fn try_burst_r(topo: &Topology, x: NodeId, radius: u64) -> Option<Topology> {
    let n = topo.num_nodes();
    let delta = topo.delta();
    let mut dist = vec![u64::MAX; n];
    dist[x.idx()] = 0;
    let mut ball = vec![x];
    let mut queue = std::collections::VecDeque::from([x]);
    while let Some(u) = queue.pop_front() {
        if dist[u.idx()] == radius {
            continue;
        }
        for (_, ep) in topo.out_edges(u) {
            if dist[ep.node.idx()] == u64::MAX {
                dist[ep.node.idx()] = dist[u.idx()] + 1;
                ball.push(ep.node);
                queue.push_back(ep.node);
            }
        }
    }
    ball.sort_unstable();
    let mut cur = topo.clone();
    let mut dropped = 0usize;
    for &b in &ball {
        let ports: Vec<Port> = cur.out_edges(b).map(|(o, _)| o).collect();
        for o in ports {
            if cur.out_degree(b) <= 1 {
                break;
            }
            let rest: Vec<Edge> = cur
                .sorted_edges()
                .into_iter()
                .filter(|e| !(e.src == b && e.src_port == o))
                .collect();
            if let Some(t) = rebuild(n, delta, &rest) {
                cur = t;
                dropped += 1;
            }
        }
    }
    (dropped > 0).then_some(cur)
}

/// Correlated failure of `x`'s out-wires: greedily drop each out-wire
/// whose removal keeps the network valid and strongly connected (always
/// keeping x's last one); when nothing is droppable, exchange the heads
/// of x's out-wires cyclically (degree-preserving). `None` when neither
/// variant produces a changed, valid network.
fn try_burst(topo: &Topology, x: NodeId) -> Option<Topology> {
    let n = topo.num_nodes();
    let delta = topo.delta();
    let ports: Vec<Port> = topo.out_edges(x).map(|(o, _)| o).collect();
    let mut cur = topo.clone();
    let mut dropped = 0usize;
    for &o in &ports {
        if cur.out_degree(x) <= 1 {
            break;
        }
        let rest: Vec<Edge> = cur
            .sorted_edges()
            .into_iter()
            .filter(|e| !(e.src == x && e.src_port == o))
            .collect();
        if let Some(t) = rebuild(n, delta, &rest) {
            cur = t;
            dropped += 1;
        }
    }
    if dropped > 0 {
        return Some(cur);
    }
    if ports.len() >= 2 {
        // `ports` was filtered to wired out-ports a few lines up.
        #[allow(clippy::expect_used)]
        let heads: Vec<Endpoint> = ports
            .iter()
            .map(|&o| topo.out_endpoint(x, o).expect("out-port is wired"))
            .collect();
        let mut edges: Vec<Edge> = topo
            .sorted_edges()
            .into_iter()
            .filter(|e| e.src != x)
            .collect();
        for (i, &o) in ports.iter().enumerate() {
            let h = heads[(i + 1) % heads.len()];
            edges.push(Edge {
                src: x,
                src_port: o,
                dst: h.node,
                dst_port: h.port,
            });
        }
        if let Some(t) = rebuild(n, delta, &edges) {
            if t != *topo {
                return Some(t);
            }
        }
    }
    None
}

impl Topology {
    /// Apply one mutation, returning the new topology. The candidate scan
    /// starts at the mutation's selector and settles on the first edit
    /// whose result satisfies the model (δ bound, ≥ 1 in-/out-port per
    /// processor, no self-loops) *and* stays strongly connected —
    /// deterministic for a given `(topology, mutation)` pair.
    ///
    /// Root-agnostic convenience over [`Topology::apply_rooted`]:
    /// `node-leave` protects processor 0 (the conventional collector) and
    /// the membership report is dropped.
    pub fn apply(&self, m: &TopologyMutation) -> Result<Topology, MutationError> {
        self.apply_rooted(m, NodeId(0)).map(|(t, _)| t)
    }

    /// [`Topology::apply`] for a collector on `root`: `node-leave` skips
    /// the root in its candidate scan (the master computer's host cannot
    /// leave the network it is mapping) and every application reports how
    /// the processor set changed.
    pub fn apply_rooted(
        &self,
        m: &TopologyMutation,
        root: NodeId,
    ) -> Result<(Topology, MembershipChange), MutationError> {
        let n = self.num_nodes();
        let delta = self.delta();
        let no_candidate = MutationError::NoCandidate { kind: m.kind };
        match m.kind {
            MutationKind::DropEdge => {
                let edges = self.sorted_edges();
                let e = edges.len();
                for k in 0..e {
                    let skip = ((m.selector % e as u64) as usize + k) % e;
                    let rest: Vec<Edge> = edges
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &e)| e)
                        .collect();
                    if let Some(t) = rebuild(n, delta, &rest) {
                        return Ok((t, MembershipChange::None));
                    }
                }
                Err(no_candidate)
            }
            MutationKind::AddEdge => {
                let total = n * n;
                let start = (m.selector % total as u64) as usize;
                for k in 0..total {
                    let idx = (start + k) % total;
                    let (u, v) = (NodeId((idx / n) as u32), NodeId((idx % n) as u32));
                    if u == v {
                        continue;
                    }
                    let (Some(o), Some(i)) = (free_out_port(self, u), free_in_port(self, v)) else {
                        continue;
                    };
                    let mut edges = self.sorted_edges();
                    edges.push(Edge {
                        src: u,
                        src_port: o,
                        dst: v,
                        dst_port: i,
                    });
                    if let Some(t) = rebuild(n, delta, &edges) {
                        return Ok((t, MembershipChange::None));
                    }
                }
                Err(no_candidate)
            }
            MutationKind::RewirePort => {
                // Exchange the heads of two wires: e1 = u1→v1, e2 = u2→v2
                // become u1→v2 and u2→v1 (same in-ports). Degrees are
                // preserved, so this works even on port-saturated networks
                // (e.g. `random-sc` at its δ target) where no in-port is
                // free for a one-sided re-route.
                let edges = self.sorted_edges();
                let e = edges.len();
                for k1 in 0..e {
                    let i1 = ((m.selector % e as u64) as usize + k1) % e;
                    let e1 = edges[i1];
                    for k2 in 1..e {
                        let i2 = (i1 + k2) % e;
                        let e2 = edges[i2];
                        if e1.src == e2.dst || e2.src == e1.dst {
                            continue; // the exchange would create a self-loop
                        }
                        let mut new_edges = edges.clone();
                        new_edges[i1] = Edge {
                            src: e1.src,
                            src_port: e1.src_port,
                            dst: e2.dst,
                            dst_port: e2.dst_port,
                        };
                        new_edges[i2] = Edge {
                            src: e2.src,
                            src_port: e2.src_port,
                            dst: e1.dst,
                            dst_port: e1.dst_port,
                        };
                        if let Some(t) = rebuild(n, delta, &new_edges) {
                            return Ok((t, MembershipChange::None));
                        }
                    }
                }
                Err(no_candidate)
            }
            MutationKind::SwapLabels => {
                let a = (m.selector % n as u64) as usize;
                let b = (a + 1 + ((m.selector / n as u64) % (n as u64 - 1)) as usize) % n;
                let relabel = |x: NodeId| -> NodeId {
                    if x.idx() == a {
                        NodeId(b as u32)
                    } else if x.idx() == b {
                        NodeId(a as u32)
                    } else {
                        x
                    }
                };
                let edges: Vec<Edge> = self
                    .sorted_edges()
                    .into_iter()
                    .map(|e| Edge {
                        src: relabel(e.src),
                        src_port: e.src_port,
                        dst: relabel(e.dst),
                        dst_port: e.dst_port,
                    })
                    .collect();
                // A relabelling is an isomorphism: always valid.
                rebuild(n, delta, &edges)
                    .map(|t| (t, MembershipChange::None))
                    .ok_or(no_candidate)
            }
            MutationKind::NodeJoin => {
                // Splice processor `n` into an existing wire: u→v becomes
                // u→n→v. Degrees at u and v are untouched and every old
                // path through the wire reroutes through the newcomer, so
                // the first candidate is always valid — the scan exists
                // only for uniformity with the other kinds.
                let edges = self.sorted_edges();
                let e = edges.len();
                let new = NodeId(n as u32);
                for k in 0..e {
                    let idx = ((m.selector % e as u64) as usize + k) % e;
                    let spliced = edges[idx];
                    let mut new_edges = edges.clone();
                    new_edges[idx] = Edge {
                        src: spliced.src,
                        src_port: spliced.src_port,
                        dst: new,
                        dst_port: Port(0),
                    };
                    new_edges.push(Edge {
                        src: new,
                        src_port: Port(0),
                        dst: spliced.dst,
                        dst_port: spliced.dst_port,
                    });
                    if let Some(t) = rebuild(n + 1, delta, &new_edges) {
                        return Ok((t, MembershipChange::Joined { node: new }));
                    }
                }
                Err(no_candidate)
            }
            MutationKind::NodeLeave => {
                for k in 0..n {
                    let x = NodeId((((m.selector % n as u64) as usize + k) % n) as u32);
                    if x == root {
                        continue; // the collector's host never leaves
                    }
                    if let Some(t) = try_leave(self, x) {
                        return Ok((t, MembershipChange::Left { node: x }));
                    }
                }
                Err(no_candidate)
            }
            MutationKind::Burst => {
                for k in 0..n {
                    let x = NodeId((((m.selector % n as u64) as usize + k) % n) as u32);
                    if let Some(t) = try_burst(self, x) {
                        return Ok((t, MembershipChange::None));
                    }
                }
                Err(no_candidate)
            }
            MutationKind::NodeRestart => {
                // Structurally the identity: the victim's processor state
                // resets (amnesia) but the physical network is untouched.
                // Timeline folds treat it as a no-op; live drivers
                // power-cycle the victim chosen by [`restart_victim`].
                Ok((self.clone(), MembershipChange::None))
            }
            MutationKind::BurstRadius => {
                let (start, radius) = burst_r_parts(m.selector);
                let radius = radius.max(1);
                for k in 0..n {
                    let x = NodeId((((start % n as u64) as usize + k) % n) as u32);
                    if let Some(t) = try_burst_r(self, x, radius) {
                        return Ok((t, MembershipChange::None));
                    }
                }
                Err(no_candidate)
            }
        }
    }

    /// Apply `m`, degrading to [`MutationKind::SwapLabels`] (with the
    /// same selector) when no candidate of the requested kind exists, so
    /// a scheduled network event always happens. Returns the new topology
    /// and the kind that was actually applied. Root-agnostic convenience
    /// over [`Topology::apply_or_fallback_rooted`] (collector on
    /// processor 0).
    pub fn apply_or_fallback(&self, m: &TopologyMutation) -> (Topology, MutationKind) {
        let applied = self.apply_or_fallback_rooted(m, NodeId(0));
        (applied.topology, applied.kind)
    }

    /// [`Topology::apply_or_fallback`] for a collector on `root`,
    /// reporting the full [`AppliedMutation`] (including the membership
    /// change a join or leave performed). The swap fallback never changes
    /// membership.
    pub fn apply_or_fallback_rooted(&self, m: &TopologyMutation, root: NodeId) -> AppliedMutation {
        match self.apply_rooted(m, root) {
            Ok((topology, membership)) => AppliedMutation {
                topology,
                kind: m.kind,
                membership,
            },
            Err(MutationError::NoCandidate { .. }) => {
                let swap = TopologyMutation {
                    kind: MutationKind::SwapLabels,
                    selector: m.selector,
                };
                // SwapLabels has no candidate preconditions, so the
                // fallback application cannot itself fail.
                #[allow(clippy::expect_used)]
                let (topology, membership) = self
                    .apply_rooted(&swap, root)
                    .expect("label swap applies to any valid network");
                AppliedMutation {
                    topology,
                    kind: MutationKind::SwapLabels,
                    membership,
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // asserts may panic freely
mod tests {
    use super::*;
    use crate::generators;

    fn mutation(kind: MutationKind, selector: u64) -> TopologyMutation {
        TopologyMutation { kind, selector }
    }

    #[test]
    fn drop_edge_keeps_validity_and_connectivity() {
        let topo = generators::random_sc(24, 3, 7);
        for sel in 0..8u64 {
            let t = topo.apply(&mutation(MutationKind::DropEdge, sel)).unwrap();
            assert_eq!(t.num_edges(), topo.num_edges() - 1);
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn drop_edge_on_a_ring_has_no_candidate() {
        // every wire of a directed ring is a bridge
        let topo = generators::ring(8);
        assert_eq!(
            topo.apply(&mutation(MutationKind::DropEdge, 3)),
            Err(MutationError::NoCandidate {
                kind: MutationKind::DropEdge
            })
        );
        // ...but the fallback still produces a changed, valid network
        let (t, applied) = topo.apply_or_fallback(&mutation(MutationKind::DropEdge, 3));
        assert_eq!(applied, MutationKind::SwapLabels);
        assert_ne!(t, topo);
        t.validate().unwrap();
        assert!(algo::is_strongly_connected(&t));
    }

    #[test]
    fn add_edge_adds_exactly_one_wire() {
        let topo = generators::ring(8); // delta 2, one port used per side
        for sel in [0u64, 5, 63] {
            let t = topo.apply(&mutation(MutationKind::AddEdge, sel)).unwrap();
            assert_eq!(t.num_edges(), topo.num_edges() + 1);
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn add_edge_on_a_saturated_network_has_no_candidate() {
        // complete_bidi uses every port of every node
        let topo = generators::complete_bidi(4);
        assert_eq!(
            topo.apply(&mutation(MutationKind::AddEdge, 1)),
            Err(MutationError::NoCandidate {
                kind: MutationKind::AddEdge
            })
        );
    }

    #[test]
    fn rewire_preserves_edge_count_and_connectivity() {
        let topo = generators::random_sc(20, 3, 9);
        for sel in 0..6u64 {
            let t = topo
                .apply(&mutation(MutationKind::RewirePort, sel))
                .unwrap();
            assert_eq!(t.num_edges(), topo.num_edges());
            assert_ne!(t, topo, "rewire must move a wire");
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn swap_is_an_isomorphic_relabelling() {
        let topo = generators::random_sc(16, 3, 2);
        let t = topo
            .apply(&mutation(MutationKind::SwapLabels, 12345))
            .unwrap();
        assert_eq!(t.num_edges(), topo.num_edges());
        assert_eq!(t.num_nodes(), topo.num_nodes());
        t.validate().unwrap();
        assert!(algo::is_strongly_connected(&t));
        // applying the same swap twice undoes it
        let back = t.apply(&mutation(MutationKind::SwapLabels, 12345)).unwrap();
        assert_eq!(back, topo);
    }

    #[test]
    fn mutations_are_deterministic() {
        let topo = generators::random_sc(18, 3, 4);
        for kind in MutationKind::ALL {
            let a = topo.apply_or_fallback(&mutation(kind, 7)).0;
            let b = topo.apply_or_fallback(&mutation(kind, 7)).0;
            assert_eq!(a, b, "{kind}");
        }
    }

    #[test]
    fn schedule_sorts_by_tick_stably() {
        let mut s = MutationSchedule::new();
        s.push(900, mutation(MutationKind::RewirePort, 5));
        s.push(200, mutation(MutationKind::RewirePort, 2));
        s.push(900, mutation(MutationKind::DropEdge, 1));
        let ticks: Vec<u64> = s.iter().map(|m| m.tick).collect();
        assert_eq!(ticks, vec![200, 900, 900]);
        // same-tick entries keep insertion order
        assert_eq!(s.items()[1].mutation.kind, MutationKind::RewirePort);
        assert_eq!(s.items()[2].mutation.kind, MutationKind::DropEdge);
    }

    #[test]
    fn suffix_grammar_round_trips() {
        for text in ["drop-edge=3@t500", "rewire=2@t200", "swap=0@t0"] {
            let sm: ScheduledMutation = text.parse().unwrap();
            assert_eq!(sm.to_string(), text);
        }
        let sm = ScheduledMutation::parse_suffix(" add-edge = 4 @ t 17 ").unwrap();
        assert_eq!(sm.to_string(), "add-edge=4@t17");
    }

    #[test]
    fn suffix_errors_are_structured_and_carry_the_tick() {
        use MutationSuffixError::*;
        let cases: [(&str, Option<u64>, MutationSuffixError); 6] = [
            ("", None, Empty),
            ("drop-edge=3", None, MissingTick),
            (
                "drop-edge=3@500",
                None,
                BadTick {
                    value: "500".into(),
                },
            ),
            (
                "warp=1@t5",
                Some(5),
                UnknownKind {
                    kind: "warp".into(),
                },
            ),
            ("drop-edge@t5", Some(5), MissingSelector),
            ("drop-edge=x@t5", Some(5), BadSelector { value: "x".into() }),
        ];
        for (text, tick, reason) in cases {
            assert_eq!(
                ScheduledMutation::parse_suffix(text),
                Err((tick, reason.clone())),
                "{text:?}"
            );
        }
    }

    #[test]
    fn node_join_splices_a_fresh_processor_into_a_wire() {
        let topo = generators::ring(8);
        for sel in [0u64, 3, 17] {
            let (t, change) = topo
                .apply_rooted(&mutation(MutationKind::NodeJoin, sel), NodeId(0))
                .unwrap();
            assert_eq!(change, MembershipChange::Joined { node: NodeId(8) });
            assert_eq!(t.num_nodes(), 9);
            assert_eq!(t.num_edges(), topo.num_edges() + 1);
            assert_eq!(t.in_degree(NodeId(8)), 1);
            assert_eq!(t.out_degree(NodeId(8)), 1);
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn node_leave_removes_and_restitches() {
        let topo = generators::random_sc(16, 3, 7);
        for sel in 0..6u64 {
            let (t, change) = topo
                .apply_rooted(&mutation(MutationKind::NodeLeave, sel), NodeId(0))
                .unwrap();
            let MembershipChange::Left { node } = change else {
                panic!("leave must report the departed processor");
            };
            assert_ne!(node, NodeId(0), "the root never leaves");
            assert_eq!(t.num_nodes(), 15);
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(&t));
        }
    }

    #[test]
    fn node_leave_turns_a_ring_into_a_smaller_ring() {
        let topo = generators::ring(8);
        let (t, change) = topo
            .apply_rooted(&mutation(MutationKind::NodeLeave, 3), NodeId(0))
            .unwrap();
        assert_eq!(change, MembershipChange::Left { node: NodeId(3) });
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.num_edges(), 7, "pred stitched straight to succ");
        t.validate().unwrap();
        assert!(algo::is_strongly_connected(&t));
    }

    #[test]
    fn node_leave_respects_the_root_protection_for_any_root() {
        let topo = generators::random_sc(12, 3, 4);
        for root in [0u32, 5, 11] {
            let applied =
                topo.apply_or_fallback_rooted(&mutation(MutationKind::NodeLeave, 5), NodeId(root));
            let MembershipChange::Left { node } = applied.membership else {
                panic!("random-sc networks always have a leavable processor");
            };
            assert_ne!(node, NodeId(root));
            let new_root = applied.membership.relabel(NodeId(root));
            assert!(new_root.idx() < applied.topology.num_nodes());
        }
    }

    #[test]
    fn node_leave_on_a_two_cycle_has_no_candidate() {
        let topo = generators::ring(2);
        assert_eq!(
            topo.apply(&mutation(MutationKind::NodeLeave, 1)),
            Err(MutationError::NoCandidate {
                kind: MutationKind::NodeLeave
            })
        );
        let (t, applied) = topo.apply_or_fallback(&mutation(MutationKind::NodeLeave, 1));
        assert_eq!(applied, MutationKind::SwapLabels);
        assert_eq!(t.num_nodes(), 2);
    }

    #[test]
    fn burst_drops_a_processors_out_wires_where_validity_allows() {
        let topo = generators::complete_bidi(5);
        let t = topo.apply(&mutation(MutationKind::Burst, 2)).unwrap();
        assert!(t.num_edges() < topo.num_edges(), "some out-wires dropped");
        assert_eq!(t.num_nodes(), topo.num_nodes());
        for id in t.node_ids() {
            assert!(t.out_degree(id) >= 1);
            assert!(t.in_degree(id) >= 1);
        }
        t.validate().unwrap();
        assert!(algo::is_strongly_connected(&t));
    }

    #[test]
    fn burst_on_a_ring_falls_back_to_a_swap() {
        // every ring processor has a single, bridge out-wire: nothing to
        // drop and nothing to head-exchange
        let topo = generators::ring(6);
        assert_eq!(
            topo.apply(&mutation(MutationKind::Burst, 0)),
            Err(MutationError::NoCandidate {
                kind: MutationKind::Burst
            })
        );
        let applied = topo.apply_or_fallback_rooted(&mutation(MutationKind::Burst, 0), NodeId(0));
        assert_eq!(applied.kind, MutationKind::SwapLabels);
        assert_eq!(applied.membership, MembershipChange::None);
    }

    #[test]
    fn registry_and_kind_list_stay_in_sync() {
        assert_eq!(MUTATION_REGISTRY.len(), MutationKind::ALL.len());
        for (spec, kind) in MUTATION_REGISTRY.iter().zip(MutationKind::ALL) {
            assert_eq!(spec.name, kind.name());
            let sm: ScheduledMutation = spec.example.parse().unwrap();
            assert_eq!(sm.mutation.kind, kind, "{}", spec.example);
        }
    }

    #[test]
    fn node_restart_is_structurally_the_identity() {
        let topo = generators::random_sc(12, 3, 4);
        let (t, change) = topo
            .apply_rooted(&mutation(MutationKind::NodeRestart, 5), NodeId(0))
            .unwrap();
        assert_eq!(t, topo);
        assert_eq!(change, MembershipChange::None);
    }

    #[test]
    fn restart_victim_scans_cyclically_and_skips_the_root() {
        let topo = generators::ring(4);
        assert_eq!(restart_victim(&topo, 2, NodeId(0)), NodeId(2));
        assert_eq!(restart_victim(&topo, 0, NodeId(0)), NodeId(1));
        // the scan wraps past the root
        assert_eq!(restart_victim(&topo, 1, NodeId(1)), NodeId(2));
        assert_eq!(restart_victim(&topo, 5, NodeId(1)), NodeId(2));
        // deterministic
        assert_eq!(
            restart_victim(&topo, 7, NodeId(0)),
            restart_victim(&topo, 7, NodeId(0))
        );
    }

    #[test]
    fn burst_r_selector_packs_and_unpacks() {
        let sel = burst_r_selector(5, 2);
        assert_eq!(burst_r_parts(sel), (5, 2));
        // parts is the exact inverse of the pack: raw radii survive, so
        // Display/FromStr round-trip on arbitrary selectors (radius 0 is
        // clamped to 1 only when the burst is applied)
        assert_eq!(burst_r_parts(3), (3, 0));
        assert_eq!(burst_r_parts(burst_r_selector(3, 0)), (3, 0));
    }

    #[test]
    fn burst_r_suffixes_round_trip_canonically() {
        let sm: ScheduledMutation = "burst-r=5:2@t800".parse().unwrap();
        assert_eq!(sm.to_string(), "burst-r=5:2@t800");
        assert_eq!(burst_r_parts(sm.mutation.selector), (5, 2));
        // a bare victim canonicalizes to radius 1
        let bare: ScheduledMutation = "burst-r=3@t400".parse().unwrap();
        assert_eq!(bare.to_string(), "burst-r=3:1@t400");
        // malformed pairs are structured errors
        assert!(matches!(
            ScheduledMutation::parse_suffix("burst-r=a:2@t1"),
            Err((Some(1), MutationSuffixError::BadSelector { .. }))
        ));
        assert!(matches!(
            ScheduledMutation::parse_suffix("burst-r=1:x@t1"),
            Err((Some(1), MutationSuffixError::BadSelector { .. }))
        ));
    }

    #[test]
    fn burst_r_drops_wires_across_the_whole_ball() {
        let topo = generators::complete_bidi(6);
        let r1 = topo
            .apply(&mutation(MutationKind::BurstRadius, burst_r_selector(2, 1)))
            .unwrap();
        let r2 = topo
            .apply(&mutation(MutationKind::BurstRadius, burst_r_selector(2, 2)))
            .unwrap();
        assert!(r1.num_edges() < topo.num_edges());
        // a wider ball can only lose at least as many wires
        assert!(r2.num_edges() <= r1.num_edges(), "radius widens the damage");
        for t in [&r1, &r2] {
            t.validate().unwrap();
            assert!(algo::is_strongly_connected(t));
            for id in t.node_ids() {
                assert!(t.out_degree(id) >= 1 && t.in_degree(id) >= 1);
            }
        }
    }

    #[test]
    fn burst_r_on_a_ring_falls_back_to_a_swap() {
        let topo = generators::ring(6);
        assert_eq!(
            topo.apply(&mutation(MutationKind::BurstRadius, burst_r_selector(1, 3))),
            Err(MutationError::NoCandidate {
                kind: MutationKind::BurstRadius
            })
        );
        let applied = topo.apply_or_fallback_rooted(
            &mutation(MutationKind::BurstRadius, burst_r_selector(1, 3)),
            NodeId(0),
        );
        assert_eq!(applied.kind, MutationKind::SwapLabels);
    }

    #[test]
    fn membership_relabel_shifts_ids_above_the_departed() {
        let left = MembershipChange::Left { node: NodeId(3) };
        assert_eq!(left.relabel(NodeId(2)), NodeId(2));
        assert_eq!(left.relabel(NodeId(5)), NodeId(4));
        assert_eq!(
            MembershipChange::Joined { node: NodeId(9) }.relabel(NodeId(5)),
            NodeId(5)
        );
        assert_eq!(MembershipChange::None.relabel(NodeId(5)), NodeId(5));
    }

    #[test]
    fn unknown_kind_suggests_the_nearest_registry_name() {
        for (typo, expect) in [
            ("node-leav", "node-leave"),
            ("node_join", "node-join"),
            ("brust", "burst"),
            ("dropedge", "drop-edge"),
        ] {
            assert_eq!(nearest_kind(typo), expect, "{typo}");
            let msg = MutationSuffixError::UnknownKind { kind: typo.into() }.to_string();
            assert!(msg.contains(&format!("did you mean {expect:?}?")), "{msg}");
            // the known-kind list stays in registry order
            let order: Vec<usize> = MUTATION_REGISTRY
                .iter()
                .map(|m| {
                    msg.find(m.name)
                        .unwrap_or_else(|| panic!("{} in {msg}", m.name))
                })
                .collect();
            assert!(order.windows(2).all(|w| w[0] < w[1]), "{msg}");
        }
    }

    #[test]
    fn malformed_membership_suffixes_are_structured() {
        use MutationSuffixError::*;
        let cases: [(&str, Option<u64>, MutationSuffixError); 5] = [
            ("node-leave@t5", Some(5), MissingSelector),
            ("node-join=x@t5", Some(5), BadSelector { value: "x".into() }),
            ("burst=1", None, MissingTick),
            (
                "burst=1@900",
                None,
                BadTick {
                    value: "900".into(),
                },
            ),
            (
                "node_leave=1@t5",
                Some(5),
                UnknownKind {
                    kind: "node_leave".into(),
                },
            ),
        ];
        for (text, tick, reason) in cases {
            assert_eq!(
                ScheduledMutation::parse_suffix(text),
                Err((tick, reason.clone())),
                "{text:?}"
            );
        }
    }

    #[test]
    fn membership_suffixes_round_trip() {
        for text in ["node-join=2@t300", "node-leave=3@t500", "burst=5@t800"] {
            let sm: ScheduledMutation = text.parse().unwrap();
            assert_eq!(sm.to_string(), text);
        }
    }

    #[test]
    fn final_topology_rooted_tracks_the_root_across_leaves() {
        let base = generators::random_sc(14, 3, 9);
        let schedule = MutationSchedule::new()
            .with(100, mutation(MutationKind::NodeLeave, 2))
            .with(300, mutation(MutationKind::NodeJoin, 1));
        for root in [0u32, 7, 13] {
            let end = schedule.final_topology_rooted(&base, NodeId(root));
            assert_eq!(end.num_nodes(), 14, "one leave, one join");
            end.validate().unwrap();
            assert!(algo::is_strongly_connected(&end));
        }
        // the root-free fold matches the root-0 fold
        assert_eq!(
            schedule.final_topology(&base),
            schedule.final_topology_rooted(&base, NodeId(0))
        );
    }

    #[test]
    fn final_topology_folds_the_whole_timeline() {
        let base = generators::random_sc(16, 3, 5);
        let schedule = MutationSchedule::new()
            .with(100, mutation(MutationKind::DropEdge, 1))
            .with(300, mutation(MutationKind::AddEdge, 2));
        let end = schedule.final_topology(&base);
        let step1 = base
            .apply_or_fallback(&mutation(MutationKind::DropEdge, 1))
            .0;
        let step2 = step1
            .apply_or_fallback(&mutation(MutationKind::AddEdge, 2))
            .0;
        assert_eq!(end, step2);
        end.validate().unwrap();
    }
}
